"""Setuptools shim so `pip install -e .` works on offline environments
where the PEP 517 editable path is unavailable (no `wheel` package)."""

from setuptools import setup

setup()
