"""Tests for A1 addressing, cell addresses and ranges."""

import pytest

from repro.sheet.addressing import (
    AddressError,
    CellAddress,
    RangeAddress,
    column_index_to_letters,
    column_letters_to_index,
    is_cell_reference,
    is_range_reference,
    parse_cell_address,
    parse_range_address,
)


class TestColumnConversion:
    def test_single_letters(self):
        assert column_letters_to_index("A") == 0
        assert column_letters_to_index("B") == 1
        assert column_letters_to_index("Z") == 25

    def test_double_letters(self):
        assert column_letters_to_index("AA") == 26
        assert column_letters_to_index("AZ") == 51
        assert column_letters_to_index("BA") == 52

    def test_lowercase_accepted(self):
        assert column_letters_to_index("aa") == 26

    def test_index_to_letters(self):
        assert column_index_to_letters(0) == "A"
        assert column_index_to_letters(25) == "Z"
        assert column_index_to_letters(26) == "AA"
        assert column_index_to_letters(701) == "ZZ"
        assert column_index_to_letters(702) == "AAA"

    def test_roundtrip(self):
        for index in range(0, 800, 7):
            assert column_letters_to_index(column_index_to_letters(index)) == index

    def test_invalid_letters_raise(self):
        with pytest.raises(AddressError):
            column_letters_to_index("1A")
        with pytest.raises(AddressError):
            column_letters_to_index("")

    def test_negative_index_raises(self):
        with pytest.raises(AddressError):
            column_index_to_letters(-1)


class TestCellAddress:
    def test_parse_simple(self):
        address = parse_cell_address("C41")
        assert address == CellAddress(40, 2)

    def test_parse_with_anchors(self):
        assert parse_cell_address("$C$41") == CellAddress(40, 2)

    def test_to_a1(self):
        assert CellAddress(0, 0).to_a1() == "A1"
        assert CellAddress(353, 3).to_a1() == "D354"

    def test_roundtrip(self):
        for text in ["A1", "Z99", "AA100", "D354"]:
            assert parse_cell_address(text).to_a1() == text

    def test_negative_coordinates_rejected(self):
        with pytest.raises(AddressError):
            CellAddress(-1, 0)

    def test_invalid_text_rejected(self):
        for bad in ["", "41C", "C", "41", "C0"]:
            with pytest.raises(AddressError):
                parse_cell_address(bad)

    def test_shifted(self):
        assert CellAddress(5, 2).shifted(3, 1) == CellAddress(8, 3)

    def test_offset_from(self):
        assert CellAddress(10, 5).offset_from(CellAddress(4, 2)) == (6, 3)

    def test_ordering(self):
        assert CellAddress(1, 0) < CellAddress(2, 0)
        assert CellAddress(1, 0) < CellAddress(1, 1)

    def test_is_cell_reference(self):
        assert is_cell_reference("B5")
        assert not is_cell_reference("B5:C6")
        assert not is_cell_reference("SUM")


class TestRangeAddress:
    def test_parse(self):
        cell_range = parse_range_address("C7:C37")
        assert cell_range.start == CellAddress(6, 2)
        assert cell_range.end == CellAddress(36, 2)

    def test_size_and_shape(self):
        cell_range = RangeAddress(CellAddress(0, 0), CellAddress(4, 2))
        assert cell_range.n_rows == 5
        assert cell_range.n_cols == 3
        assert cell_range.size == 15

    def test_normalization_of_reversed_corners(self):
        cell_range = RangeAddress(CellAddress(10, 5), CellAddress(2, 1))
        assert cell_range.start == CellAddress(2, 1)
        assert cell_range.end == CellAddress(10, 5)

    def test_contains(self):
        cell_range = parse_range_address("B2:D10")
        assert cell_range.contains(CellAddress(5, 2))
        assert not cell_range.contains(CellAddress(0, 0))
        assert not cell_range.contains(CellAddress(5, 4))

    def test_cells_iteration_row_major(self):
        cell_range = parse_range_address("A1:B2")
        assert [addr.to_a1() for addr in cell_range.cells()] == ["A1", "B1", "A2", "B2"]

    def test_shifted(self):
        assert parse_range_address("C7:C37").shifted(1, 1).to_a1() == "D8:D38"

    def test_roundtrip(self):
        for text in ["A1:A1", "C7:C37", "B2:Z99"]:
            assert parse_range_address(text).to_a1() == text

    def test_invalid_range_rejected(self):
        with pytest.raises(AddressError):
            parse_range_address("C7")
        with pytest.raises(AddressError):
            parse_range_address("C7:")

    def test_is_range_reference(self):
        assert is_range_reference("C7:C37")
        assert not is_range_reference("C7")
