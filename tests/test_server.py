"""Tests for the network serving front-end (real sockets, ephemeral ports).

Covers the ISSUE 7 tentpole guarantees: wire round-trip parity with
direct ``FormulaService`` calls, coalesced-batch parity with sequential
serving, admission-control status codes (429 rate limit, 503 shed/drain
with ``Retry-After``), graceful drain, and the observability surface
(``/stats`` queue depth, batch histogram, coalescing ratio, p50/p99).
"""

import threading
import time

import pytest

from repro import AutoFormulaConfig, FormulaService
from repro.core.interface import FormulaPredictor, Prediction
from repro.corpus import sample_test_cases, split_corpus
from repro.server import (
    AdmissionConfig,
    FormulaClient,
    ServerConfig,
    ServerError,
    SheetInterner,
    TokenBucket,
    run_client_swarm,
    start_server_in_background,
)
from repro.server.schemas import _json_safe
from repro.service import RecommendationRequest
from repro.sheet import Sheet, Workbook
from repro.sheet.io import sheet_to_dict
from repro.testing import WorkloadConfig, generate_workload


class _StubPredictor(FormulaPredictor):
    """Cheap deterministic predictor; optional per-batch serving delay."""

    name = "stub"

    def __init__(self, delay_seconds: float = 0.0):
        self.delay_seconds = delay_seconds
        self.cells_predicted = 0

    def fit(self, reference_workbooks):
        pass

    def predict(self, target_sheet, target_cell):
        return self.predict_batch(target_sheet, [target_cell])[0]

    def predict_batch(self, target_sheet, target_cells):
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        self.cells_predicted += len(target_cells)
        return [
            Prediction(f"=SUM(A1:A{cell.row + 1})", 0.9, {"reference_sheet": "stub"})
            for cell in target_cells
        ]


def _stub_service(delay_seconds: float = 0.0) -> FormulaService:
    service = FormulaService()
    workbook = Workbook(name="wb1")
    sheet = workbook.add_sheet("Data")
    sheet.set("A1", 1.0)
    sheet.set("A2", 2.0)
    sheet.set("A3", formula="=SUM(A1:A2)")
    service.create_workspace(
        "acme", predictor=_StubPredictor(delay_seconds), workbooks=[workbook]
    )
    return service


def _target_sheet() -> Sheet:
    sheet = Sheet("Target")
    sheet.set("A1", 3.0)
    sheet.set("A2", 4.0)
    return sheet


# ------------------------------------------------------------------ protocol


class TestProtocolBasics:
    def test_health_stats_and_error_codes(self):
        with start_server_in_background(_stub_service()) as handle:
            client = FormulaClient(handle.host, handle.port)

            health = client.health()
            assert health["status"] == "ok"
            assert health["workspaces"] == ["acme"]

            response = client.recommend("acme", _target_sheet(), "A3", request_id="r1")
            assert response["request_id"] == "r1"
            assert response["formula"] == "=SUM(A1:A3)"
            assert response["workspace"] == "acme"
            assert response["batch_size"] >= 1

            stats = client.stats()
            assert stats["counters"]["accepted"] == 1
            assert stats["counters"]["served"] == 1
            assert "1" in stats["batch_size_histogram"]
            assert "acme" in stats["queue_depths"]
            assert "p99_seconds" in stats["workspaces"]["acme"]
            assert stats["config"]["max_batch_size"] >= 1
            assert stats["config"]["scoring_mode"] == "deterministic"
            assert stats["config"]["storage_dtype"] == "float32"
            # Index memory is gauged per workspace; the stub predictor
            # reports the zero footprint, real AutoFormula byte counts are
            # covered in tests/test_two_tier.py.
            assert stats["index_memory"] == {"acme": {"total_bytes": 0}}

            # Unknown workspace and unknown routes are 404s.
            with pytest.raises(ServerError) as excinfo:
                client.recommend("nope", _target_sheet(), "A1")
            assert excinfo.value.status == 404
            status, __, body = client.request("GET", "/v1/nope")
            assert status == 404 and body["error"] == "not_found"

            # Malformed JSON and schema violations are 400s.
            connection_status, __, body = client.request(
                "POST", "/v1/workspaces/acme/recommend", {"cell": "A1"}
            )
            assert connection_status == 400 and body["error"] == "schema_error"
            status, __, body = client.request(
                "POST", "/v1/workspaces/acme/recommend", {"sheet": {}, "cell": "???"}
            )
            assert status == 400

    def test_mutation_endpoints_round_trip(self):
        service = _stub_service()
        workspace = service.workspace("acme")
        with start_server_in_background(service) as handle:
            client = FormulaClient(handle.host, handle.port)

            # Live edit: value write recalculates the dependent SUM.
            result = client.edit_cell("acme", "wb1", "Data", "A1", value=10.0)
            assert result["recalc"]["recalculated"] == 1
            assert result["recalc"]["errored"] == 0
            edited = workspace.workbooks()[0].get_sheet("Data")
            assert edited.get("A1").value == 10.0
            assert edited.get("A3").value == 12.0

            # Formula write through the same endpoint.
            result = client.edit_cell("acme", "wb1", "Data", "A4", formula="=A3*2")
            assert result["recalc"]["recalculated"] >= 1
            assert edited.get("A4").value == 24.0

            # Add then remove a workbook.
            extra = Workbook(name="wb2")
            extra.add_sheet("X").set("A1", 5.0)
            added = client.add_workbooks("acme", [extra])
            assert added["added"] == ["wb2"] and added["indexed_workbooks"] == 2
            with pytest.raises(ServerError) as excinfo:
                client.add_workbooks("acme", [extra])
            assert excinfo.value.status == 409
            removed = client.remove_workbook("acme", "wb2")
            assert removed["indexed_workbooks"] == 1
            with pytest.raises(ServerError) as excinfo:
                client.remove_workbook("acme", "wb2")
            assert excinfo.value.status == 404

            # Edit validation: both operands is a 400, unknown workbook 404.
            status, __, body = client.request(
                "POST",
                "/v1/workspaces/acme/edit-cell",
                {"workbook": "wb1", "sheet": "Data", "cell": "A1", "value": 1, "formula": "=1"},
            )
            assert status == 400
            with pytest.raises(ServerError) as excinfo:
                client.edit_cell("acme", "ghost", "Data", "A1", value=1.0)
            assert excinfo.value.status == 404


# -------------------------------------------------------------------- parity


@pytest.fixture(scope="module")
def serving_corpus(trained_encoder, pge_corpus):
    """A small real corpus + cases and a directly-served twin workspace."""
    test_workbooks, references = split_corpus(pge_corpus, 0.15, "timestamp")
    references = references[:5]
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=2, seed=0)[:8]
    direct = FormulaService(trained_encoder, AutoFormulaConfig())
    direct.create_workspace("pge", workbooks=references)
    return references, cases, direct.workspace("pge")


class TestWireParity:
    """Wire serving must be bit-identical to direct FormulaService calls."""

    def _assert_wire_matches_direct(self, wire, direct_response):
        if direct_response.formula is None:
            assert wire["formula"] is None
            assert wire["abstain_reason"] == direct_response.abstain_reason.value
        else:
            assert wire["formula"] == direct_response.formula
            assert wire["confidence"] == pytest.approx(direct_response.confidence, abs=0.0)
            assert wire["abstain_reason"] is None
            assert wire["provenance"] == _json_safe(direct_response.provenance)

    def test_round_trip_parity_with_direct_service(
        self, trained_encoder, serving_corpus
    ):
        references, cases, direct_workspace = serving_corpus
        service = FormulaService(trained_encoder, AutoFormulaConfig())
        service.create_workspace("pge", workbooks=references)
        with start_server_in_background(service) as handle:
            client = FormulaClient(handle.host, handle.port)
            for case in cases:
                wire = client.recommend(
                    "pge", sheet_to_dict(case.target_sheet), case.target_cell.to_a1()
                )
                direct_response = direct_workspace.recommend(
                    RecommendationRequest(case.target_sheet, case.target_cell)
                )
                self._assert_wire_matches_direct(wire, direct_response)

    def test_coalesced_burst_parity_and_ratio(self, trained_encoder, serving_corpus):
        references, cases, direct_workspace = serving_corpus
        service = FormulaService(trained_encoder, AutoFormulaConfig())
        service.create_workspace("pge", workbooks=references)
        # Burst: every case fired concurrently; generous window + cap equal
        # to the burst size make the coalescing outcome deterministic.
        config = ServerConfig(max_batch_size=len(cases), max_batch_wait_s=0.25)
        with start_server_in_background(service, config) as handle:
            tasks = [
                (sheet_to_dict(case.target_sheet), case.target_cell.to_a1())
                for case in cases
            ]
            result = run_client_swarm(
                handle.host, handle.port, "pge", tasks, concurrency=len(tasks)
            )
            stats = FormulaClient(handle.host, handle.port).stats()

        assert result.statuses == [200] * len(cases)
        # The burst actually coalesced: fewer batches than requests.
        assert stats["coalescing_ratio"] > 1.0
        assert max(response["batch_size"] for response in result.responses) > 1

        # Bit-parity: each wire response equals the direct sequential serve.
        by_id = {response["request_id"]: response for response in result.responses}
        direct_responses = direct_workspace.serve_batch(
            [
                RecommendationRequest(case.target_sheet, case.target_cell)
                for case in cases
            ]
        )
        for position, direct_response in enumerate(direct_responses):
            self._assert_wire_matches_direct(by_id[str(position)], direct_response)

    def test_workload_serve_burst_through_server(self, trained_encoder):
        """The workload generator's ``serve`` bursts drive wire coalescing."""
        workload = generate_workload(
            13,
            WorkloadConfig(
                n_tenants=1,
                n_steps=6,
                op_weights=(0.0, 0.0, 0.0, 0.0, 1.0, 0.0),
                initial_workbooks=2,
                serve_clusters=2,
                serve_cluster_size=4,
            ),
        )
        serve_ops = [op for op in workload.ops if op.kind == "serve"]
        assert serve_ops, "workload drew no serve bursts"
        tenant = workload.tenants[0]

        config = AutoFormulaConfig()
        service = FormulaService(trained_encoder, config)
        workbooks = [op.workbook for op in workload.ops if op.kind == "add"]
        service.create_workspace(
            tenant, workbooks=[workbook.copy() for workbook in workbooks]
        )
        direct = FormulaService(trained_encoder, config).create_workspace(
            "direct", workbooks=[workbook.copy() for workbook in workbooks]
        )

        burst = serve_ops[0]
        server_config = ServerConfig(max_batch_size=len(burst.cases), max_batch_wait_s=0.25)
        with start_server_in_background(service, server_config) as handle:
            tasks = [
                (sheet_to_dict(case.target_sheet), case.target_cell.to_a1())
                for case in burst.cases
            ]
            result = run_client_swarm(
                handle.host, handle.port, tenant, tasks, concurrency=len(tasks)
            )

        assert result.statuses == [200] * len(burst.cases)
        direct_responses = direct.serve_batch(
            [
                RecommendationRequest(case.target_sheet, case.target_cell)
                for case in burst.cases
            ]
        )
        by_id = {response["request_id"]: response for response in result.responses}
        for position, direct_response in enumerate(direct_responses):
            self._assert_wire_matches_direct(by_id[str(position)], direct_response)


class TestDuplicateCollapsing:
    def test_identical_requests_compute_once_and_fan_out(self):
        service = _stub_service()
        predictor = service.workspace("acme").predictor
        config = ServerConfig(max_batch_size=8, max_batch_wait_s=0.25)
        with start_server_in_background(service, config) as handle:
            # Eight byte-identical (sheet, cell) requests fired concurrently:
            # the interner maps them to one Sheet, the batcher collapses them
            # to one predicted cell, and each caller still gets its own echo.
            tasks = [(sheet_to_dict(_target_sheet()), "A3") for __ in range(8)]
            result = run_client_swarm(handle.host, handle.port, "acme", tasks, concurrency=8)
            stats = FormulaClient(handle.host, handle.port).stats()

        assert result.statuses == [200] * 8
        assert {response["request_id"] for response in result.responses} == {
            str(position) for position in range(8)
        }
        assert {response["formula"] for response in result.responses} == {"=SUM(A1:A3)"}
        assert predictor.cells_predicted < 8
        assert stats["counters"]["collapsed_duplicates"] >= 8 - predictor.cells_predicted
        assert stats["counters"]["served"] == 8


# ----------------------------------------------------------------- admission


class TestAdmissionControl:
    def test_rate_limit_answers_429_with_retry_after(self):
        config = ServerConfig(
            admission=AdmissionConfig(rate_limit_per_tenant=0.001, rate_limit_burst=1.0)
        )
        with start_server_in_background(_stub_service(), config) as handle:
            client = FormulaClient(handle.host, handle.port)
            first = client.recommend("acme", _target_sheet(), "A3")
            assert first["formula"] is not None
            with pytest.raises(ServerError) as excinfo:
                client.recommend("acme", _target_sheet(), "A3")
            assert excinfo.value.status == 429
            assert excinfo.value.body["error"] == "rate_limited"
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0
            assert FormulaClient(handle.host, handle.port).stats()["counters"][
                "rejected_rate_limited"
            ] == 1

    def test_full_queue_sheds_with_503(self):
        config = ServerConfig(
            max_batch_size=1,
            executor_workers=1,
            admission=AdmissionConfig(queue_limit=2),
        )
        service = _stub_service(delay_seconds=0.2)
        with start_server_in_background(service, config) as handle:
            tasks = [(sheet_to_dict(_target_sheet()), "A3") for __ in range(6)]
            result = run_client_swarm(handle.host, handle.port, "acme", tasks, concurrency=6)
            stats = FormulaClient(handle.host, handle.port).stats()

        shed = [status for status in result.statuses if status == 503]
        served = [status for status in result.statuses if status == 200]
        assert shed, "expected at least one queue-full rejection"
        assert served, "expected at least one served request"
        assert stats["counters"]["rejected_queue_full"] == len(shed)
        rejected = next(
            body for status, body in zip(result.statuses, result.responses) if status == 503
        )
        assert rejected["error"] == "queue_full"

    def test_graceful_drain_finishes_inflight_and_refuses_new(self):
        service = _stub_service(delay_seconds=0.6)
        handle = start_server_in_background(service)
        inflight_result = {}

        def inflight_request():
            client = FormulaClient(handle.host, handle.port)
            inflight_result["response"] = client.recommend("acme", _target_sheet(), "A3")

        worker = threading.Thread(target=inflight_request)
        worker.start()
        time.sleep(0.15)  # request is now executing in the server's pool

        shutdown = threading.Thread(target=handle.shutdown)
        shutdown.start()
        time.sleep(0.1)  # drain flag is set, batcher still busy

        drain_client = FormulaClient(handle.host, handle.port)
        assert drain_client.health()["status"] == "draining"
        with pytest.raises(ServerError) as excinfo:
            drain_client.recommend("acme", _target_sheet(), "A3")
        assert excinfo.value.status == 503
        assert excinfo.value.body["error"] == "draining"

        worker.join(timeout=5)
        shutdown.join(timeout=5)
        # The in-flight request was served to completion, not dropped.
        assert inflight_result["response"]["formula"] == "=SUM(A1:A3)"


# ----------------------------------------------------------------- internals


class TestInternals:
    def test_sheet_interner_shares_identical_payloads(self):
        interner = SheetInterner(max_entries=2)
        payload = sheet_to_dict(_target_sheet())
        first = interner.intern(payload)
        second = interner.intern(sheet_to_dict(_target_sheet()))
        assert first is second
        assert interner.hits == 1 and interner.misses == 1

        other = Sheet("Other")
        other.set("B2", 7.0)
        assert interner.intern(sheet_to_dict(other)) is not first
        # LRU bound: a third distinct sheet evicts the least recent.
        third = Sheet("Third")
        third.set("C3", 1.0)
        interner.intern(sheet_to_dict(third))
        assert len(interner) == 2

    def test_token_bucket_refill_and_retry_after(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(0.0) is None
        assert bucket.try_acquire(0.0) is None
        wait = bucket.try_acquire(0.0)
        assert wait == pytest.approx(0.5)
        # Half a second later one token has accrued.
        assert bucket.try_acquire(0.5) is None
        assert bucket.try_acquire(0.5) == pytest.approx(0.5)

    def test_token_bucket_clamps_backwards_clock(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire(100.0) is None
        assert bucket.try_acquire(100.0) is None
        assert bucket.try_acquire(100.0) == pytest.approx(1.0)
        # The clock rewinds: the watermark must not move backwards, or the
        # next call at t=100 would re-credit 100 seconds of tokens.
        assert bucket.try_acquire(0.0) == pytest.approx(1.0)
        assert bucket.try_acquire(100.0) == pytest.approx(1.0)
        # Only genuinely new time refills: one second past the watermark.
        assert bucket.try_acquire(101.0) is None
        assert bucket.try_acquire(101.0) == pytest.approx(1.0)

    def test_token_bucket_equal_timestamps_spend_without_refill(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_acquire(5.0) is None
        # Same timestamp again: no elapsed time, so no refill — but the
        # call must still be answered (with the retry hint), not crash or
        # hand back burst tokens.
        assert bucket.try_acquire(5.0) == pytest.approx(0.1)
        assert bucket.try_acquire(5.0) == pytest.approx(0.1)

    def test_token_bucket_defaults_to_monotonic_clock(self):
        ticks = iter([0.0, 0.0, 10.0])
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: next(ticks))
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() == pytest.approx(1.0)
        assert bucket.try_acquire() is None
        # And without an explicit clock the default is time.monotonic.
        assert TokenBucket(rate=1.0, burst=1.0).try_acquire() is None

    def test_json_safe_handles_numpy_and_objects(self):
        import numpy as np

        encoded = _json_safe(
            {"d": np.float32(0.5), "n": 3, "addr": Sheet("X"), "t": (1, "a")}
        )
        assert encoded["d"] == 0.5 and isinstance(encoded["d"], float)
        assert encoded["n"] == 3
        assert isinstance(encoded["addr"], str)
        assert encoded["t"] == [1, "a"]
