"""Property-based tests (hypothesis) on core data structures and invariants."""

import datetime
import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ann import ExactIndex, IVFIndex, LSHIndex
from repro.embedding import HashedSemanticEmbedder
from repro.formula import extract_template, formula_references, instantiate_template, parse_formula
from repro.formula.engine import FormulaEngine
from repro.formula.errors import ALL_ERROR_VALUES, ErrorValue
from repro.formula.template import normalize_formula, shift_formula
from repro.formula.tokenizer import TokenType, tokenize
from repro.nn import L2Normalize
from repro.nn.losses import pairwise_squared_distances, triplet_loss_and_grad
from repro.sheet import Cell, CellAddress, RangeAddress, Sheet, Workbook
from repro.sheet import workbook_from_dict, workbook_to_dict
from repro.sheet.addressing import column_index_to_letters, column_letters_to_index
from repro.weaksup import SheetNameStatistics

# ----------------------------------------------------------------- strategies

cell_addresses = st.builds(
    CellAddress, row=st.integers(0, 500), col=st.integers(0, 60)
)

cell_ranges = st.builds(
    lambda a, b: RangeAddress(a, b), cell_addresses, cell_addresses
)


@st.composite
def aggregation_formulas(draw):
    """Random single-aggregation formulas over a random range."""
    function = draw(st.sampled_from(["SUM", "AVERAGE", "COUNT", "MAX", "MIN", "COUNTA"]))
    cell_range = draw(cell_ranges)
    return f"={function}({cell_range.to_a1()})"


@st.composite
def countif_formulas(draw):
    cell_range = draw(cell_ranges)
    criterion = draw(cell_addresses)
    return f"=COUNTIF({cell_range.to_a1()},{criterion.to_a1()})"


formula_strategies = st.one_of(aggregation_formulas(), countif_formulas())


_FUNCTION_NAMES = ["SUM", "average", "IF", "Countif", "MAX", "CONCAT", "ROUND"]
_BINARY_OPS = ["+", "-", "*", "/", "^", "&", "=", "<", ">", "<=", ">=", "<>"]


@st.composite
def _number_literals(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return str(draw(st.integers(0, 10_000)))
    if kind == 1:
        return repr(
            draw(st.floats(0.001, 1e6, allow_nan=False, allow_infinity=False))
        )
    return f"{draw(st.integers(1, 9))}e{draw(st.integers(0, 6))}"


@st.composite
def _string_literals(draw):
    text = draw(st.text(st.characters(blacklist_categories=("Cs",)), max_size=8))
    escaped = text.replace('"', '""')
    return f'"{escaped}"'


@st.composite
def _cell_tokens(draw):
    address = draw(cell_addresses).to_a1()
    if draw(st.booleans()):
        address = address.lower()
    return address


_atoms = st.one_of(
    _number_literals(),
    _string_literals(),
    st.sampled_from(["TRUE", "FALSE", "true", "False"]),
    _cell_tokens(),
    st.builds(lambda r: r.to_a1(), cell_ranges),
)


def _compose(children):
    """Build compound expressions whose sub-terms are already parseable."""

    @st.composite
    def compound(draw):
        kind = draw(st.integers(0, 4))
        if kind == 0:  # binary op, parenthesized so precedence is explicit
            op = draw(st.sampled_from(_BINARY_OPS))
            return f"({draw(children)}{op}{draw(children)})"
        if kind == 1:  # unary prefix
            return f"(-{draw(children)})" if draw(st.booleans()) else f"(+{draw(children)})"
        if kind == 2:  # percent postfix binds to a primary
            return f"({draw(children)})%"
        if kind == 3:  # grouping
            return f"({draw(children)})"
        name = draw(st.sampled_from(_FUNCTION_NAMES))
        args = draw(st.lists(children, min_size=0, max_size=3))
        return f"{name}({','.join(args)})"

    return compound()


#: Deeply structured formulas covering every grammar production.
rich_formulas = st.recursive(_atoms, _compose, max_leaves=12)


# ------------------------------------------------------------------ addressing


class TestAddressingProperties:
    @given(st.integers(0, 20_000))
    def test_column_roundtrip(self, index):
        assert column_letters_to_index(column_index_to_letters(index)) == index

    @given(cell_addresses)
    def test_a1_roundtrip(self, address):
        assert CellAddress.from_a1(address.to_a1()) == address

    @given(cell_addresses, st.integers(0, 50), st.integers(0, 20))
    def test_shift_is_reversible(self, address, row_delta, col_delta):
        shifted = address.shifted(row_delta, col_delta)
        assert shifted.shifted(-row_delta, -col_delta) == address

    @given(cell_ranges)
    def test_range_contains_its_corners_and_all_cells(self, cell_range):
        assert cell_range.contains(cell_range.start)
        assert cell_range.contains(cell_range.end)
        assert sum(1 for __ in cell_range.cells()) == cell_range.size

    @given(cell_ranges)
    def test_range_roundtrip(self, cell_range):
        assert RangeAddress.from_a1(cell_range.to_a1()) == cell_range


# --------------------------------------------------------------------- formula


class TestFormulaProperties:
    @given(formula_strategies)
    def test_parse_render_roundtrip_is_stable(self, formula):
        rendered = normalize_formula(formula)
        assert normalize_formula(rendered) == rendered

    @given(formula_strategies)
    def test_template_instantiation_with_own_references_is_identity(self, formula):
        references = formula_references(formula)
        assert instantiate_template(formula, references) == normalize_formula(formula)

    @given(formula_strategies, st.integers(0, 30), st.integers(0, 10))
    def test_shift_preserves_template(self, formula, row_delta, col_delta):
        shifted = shift_formula(formula, row_delta, col_delta)
        assert extract_template(shifted) == extract_template(formula)

    @given(formula_strategies, st.integers(0, 30), st.integers(0, 10))
    def test_shift_is_reversible(self, formula, row_delta, col_delta):
        shifted = shift_formula(formula, row_delta, col_delta)
        assert shift_formula(shifted, -row_delta, -col_delta) == normalize_formula(formula)

    @given(formula_strategies)
    def test_reference_count_matches_template_holes(self, formula):
        template = extract_template(formula)
        assert template.n_parameters == len(formula_references(formula))


class TestParserRoundTrip:
    """parse -> render -> parse is a fixed point of the formula grammar."""

    @given(rich_formulas)
    @settings(max_examples=200)
    def test_parse_render_parse_is_fixed_point(self, formula):
        ast = parse_formula(formula)
        rendered = ast.to_formula()
        reparsed = parse_formula(rendered)
        assert reparsed == ast
        # And rendering is already canonical after one pass:
        assert reparsed.to_formula() == rendered

    @given(rich_formulas)
    @settings(max_examples=100)
    def test_normalize_is_idempotent_on_rich_formulas(self, formula):
        normalized = normalize_formula(formula)
        assert normalize_formula(normalized) == normalized

    @given(rich_formulas)
    @settings(max_examples=100)
    def test_tokenize_join_tokenize_is_fixed_point(self, formula):
        tokens = tokenize(formula)
        joined = "".join(token.text for token in tokens)
        retokenized = tokenize(joined)
        assert [(token.type, token.text) for token in tokens] == [
            (token.type, token.text) for token in retokenized
        ]
        assert tokens[-1].type is TokenType.EOF

    @given(rich_formulas)
    @settings(max_examples=100)
    def test_leading_equals_is_optional_and_stripped(self, formula):
        assert parse_formula(f"={formula}") == parse_formula(formula)

    @given(rich_formulas)
    @settings(max_examples=100)
    def test_whitespace_insensitive_between_tokens(self, formula):
        tokens = tokenize(formula)
        spaced = " ".join(token.text for token in tokens if token.text)
        assert parse_formula(spaced) == parse_formula(formula)


# -------------------------------------------------------- workbook JSON I/O

#: Scalar cell values covering every value kind the JSON codec carries.
#: Plain text is filtered away from the "#" prefix so the error-code
#: rehydration rule cannot retype a string that merely looks like one.
_scalar_cell_values = st.one_of(
    st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
    st.text(st.characters(blacklist_categories=("Cs",)), max_size=12).filter(
        lambda text: not text.startswith("#")
    ),
    st.booleans(),
    st.just(""),
    st.dates(datetime.date(1900, 1, 1), datetime.date(2199, 12, 31)),
    st.sampled_from(ALL_ERROR_VALUES),
)


def _json_round_trip(workbook):
    """Serialize through actual JSON text, not just the dict layer."""
    return workbook_from_dict(json.loads(json.dumps(workbook_to_dict(workbook))))


def _values_bit_equal(left, right):
    if isinstance(left, float) and isinstance(right, float):
        return (left == right) or (left != left and right != right)  # NaN-safe
    return left == right and type(left) is type(right)


class TestWorkbookJsonRoundTrip:
    """workbook_to_dict -> JSON text -> workbook_from_dict loses nothing."""

    @given(
        st.lists(
            st.tuples(cell_addresses, _scalar_cell_values),
            min_size=1,
            max_size=12,
            unique_by=lambda pair: (pair[0].row, pair[0].col),
        )
    )
    @settings(max_examples=150)
    def test_value_cells_survive_round_trip(self, items):
        sheet = Sheet("Values")
        for address, value in items:
            sheet.set_cell(address, Cell(value=value))
        workbook = Workbook("wb")
        workbook.add_sheet(sheet)
        restored = _json_round_trip(workbook)
        restored_sheet = restored.get_sheet("Values")
        assert restored.name == "wb"
        assert (restored_sheet.n_rows, restored_sheet.n_cols) == (
            sheet.n_rows,
            sheet.n_cols,
        )
        assert len(list(restored_sheet.cells())) == len(items)
        for address, value in items:
            restored_value = restored_sheet.get(address).value
            assert restored_value == value
            # Type identity matters: True is not 1.0, "" is not 0.0, an
            # ErrorValue is not its plain-text spelling, a date is not
            # its ISO string.
            assert isinstance(restored_value, bool) == isinstance(value, bool)
            assert isinstance(restored_value, ErrorValue) == isinstance(value, ErrorValue)
            assert isinstance(restored_value, datetime.date) == isinstance(
                value, datetime.date
            )

    @given(rich_formulas)
    @settings(max_examples=100, deadline=None)
    def test_formula_cells_round_trip_with_evaluation_parity(self, formula):
        sheet = Sheet("Calc")
        for row in range(6):
            for col in range(4):
                sheet.set_cell(CellAddress(row, col), Cell(value=float(row * 4 + col + 1)))
        sheet.set_cell(CellAddress(10, 0), Cell(formula=f"={formula}"))
        sheet.set_cell(CellAddress(11, 0), Cell(formula="=SUM(A1:D6)+A11"))
        FormulaEngine(sheet).recalculate()
        workbook = Workbook("wb")
        workbook.add_sheet(sheet)

        restored = _json_round_trip(workbook)
        restored_sheet = restored.get_sheet("Calc")
        # The formula text itself survives verbatim ...
        for address in (CellAddress(10, 0), CellAddress(11, 0)):
            assert restored_sheet.get(address).formula == sheet.get(address).formula
        # ... and a full recalculation of the restored sheet reproduces
        # every evaluated value bit-for-bit (evaluation-level parity, not
        # just textual equality of the serialized payloads).
        FormulaEngine(restored_sheet).recalculate()
        for address, cell in sheet.cells():
            assert _values_bit_equal(restored_sheet.get(address).value, cell.value), (
                f"{address.to_a1()}: {restored_sheet.get(address).value!r} "
                f"!= {cell.value!r}"
            )

    def test_blank_versus_zero_survives_round_trip(self):
        sheet = Sheet("S")
        sheet.set_cell(CellAddress(0, 0), Cell(value=""))
        sheet.set_cell(CellAddress(0, 1), Cell(value=0.0))
        sheet.set_cell(CellAddress(0, 2), Cell(value=False))
        workbook = Workbook("wb")
        workbook.add_sheet(sheet)
        restored_sheet = _json_round_trip(workbook).get_sheet("S")
        blank = restored_sheet.get(CellAddress(0, 0)).value
        zero = restored_sheet.get(CellAddress(0, 1)).value
        false = restored_sheet.get(CellAddress(0, 2)).value
        assert blank == "" and isinstance(blank, str)
        assert zero == 0.0 and not isinstance(zero, bool)
        assert false is False
        # The explicit blank is still "empty" to the model, the zero is not.
        assert restored_sheet.get(CellAddress(0, 0)).is_empty
        assert not restored_sheet.get(CellAddress(0, 1)).is_empty


# -------------------------------------------------------------------- sheet ops


class TestSheetProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 8), st.integers(-1000, 1000)),
            min_size=1,
            max_size=40,
        ),
        st.integers(0, 30),
    )
    def test_insert_then_delete_rows_is_identity(self, cells, at_row):
        sheet = Sheet()
        for row, col, value in cells:
            sheet.set((row, col), value)
        original = {addr: cell.value for addr, cell in sheet.cells()}
        sheet.insert_rows(at_row, 2)
        sheet.delete_rows(at_row, 2)
        assert {addr: cell.value for addr, cell in sheet.cells()} == original

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 8), st.text(max_size=5)),
            min_size=1,
            max_size=30,
        )
    )
    def test_copy_preserves_all_cells(self, cells):
        sheet = Sheet()
        for row, col, value in cells:
            sheet.set((row, col), value)
        clone = sheet.copy()
        assert {a: c.value for a, c in clone.cells()} == {a: c.value for a, c in sheet.cells()}


# ----------------------------------------------------------------- embeddings


class TestEmbeddingProperties:
    @given(st.text(max_size=40))
    @settings(max_examples=50)
    def test_embedding_norm_at_most_one(self, text):
        vector = HashedSemanticEmbedder(64).embed(text)
        assert np.linalg.norm(vector) <= 1.0 + 1e-5

    @given(st.text(max_size=40))
    @settings(max_examples=50)
    def test_embedding_deterministic(self, text):
        embedder = HashedSemanticEmbedder(64)
        assert np.allclose(embedder.embed(text), embedder.embed(text))


# ------------------------------------------------------------------------- nn


class TestNNProperties:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_pairwise_distances_non_negative_and_symmetric(self, n, m, seed):
        rng = np.random.default_rng(seed)
        left = rng.standard_normal((n, 4))
        right = rng.standard_normal((m, 4))
        distances = pairwise_squared_distances(left, right)
        assert np.all(distances >= 0.0)
        assert np.allclose(pairwise_squared_distances(right, left), distances.T, atol=1e-6)

    @given(st.integers(1, 10), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_l2_normalize_output_unit_norm(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 8)).astype(np.float32) * 10
        out = L2Normalize().forward(x)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-4)

    @given(st.integers(1, 8), st.floats(0.05, 2.0), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_triplet_loss_non_negative_and_bounded_grad(self, n, margin, seed):
        rng = np.random.default_rng(seed)
        anchor = rng.standard_normal((n, 6)).astype(np.float32)
        positive = rng.standard_normal((n, 6)).astype(np.float32)
        negative = rng.standard_normal((n, 6)).astype(np.float32)
        loss, da, dp, dn = triplet_loss_and_grad(anchor, positive, negative, margin=margin)
        assert loss >= 0.0
        for grad in (da, dp, dn):
            assert np.all(np.isfinite(grad))

    @given(st.floats(0.05, 2.0))
    @settings(max_examples=20)
    def test_triplet_loss_zero_for_identical_positive_and_separated_negative(self, margin):
        anchor = np.zeros((3, 4), dtype=np.float32)
        positive = np.zeros((3, 4), dtype=np.float32)
        negative = np.full((3, 4), 10.0, dtype=np.float32)
        loss, *_ = triplet_loss_and_grad(anchor, positive, negative, margin=margin)
        assert loss == 0.0


# ------------------------------------------------------------------------- ann


class TestANNProperties:
    @given(st.integers(5, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_exact_index_top1_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((n, 8)).astype(np.float32)
        index = ExactIndex(8)
        index.add_batch(list(range(n)), vectors)
        query = rng.standard_normal(8).astype(np.float32)
        hit = index.search(query, k=1)[0]
        brute = int(np.argmin(np.sum((vectors - query) ** 2, axis=1)))
        assert hit.key == brute

    @given(st.integers(10, 80), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_approximate_indexes_return_valid_keys(self, n, seed):
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((n, 16)).astype(np.float32)
        for index in (LSHIndex(16, seed=1), IVFIndex(16, n_clusters=4, seed=1)):
            index.add_batch(list(range(n)), vectors)
            hits = index.search(vectors[0], k=3)
            assert hits
            assert all(0 <= hit.key < n for hit in hits)
            assert all(hit.distance >= 0.0 for hit in hits)


# ---------------------------------------------------------------- weak superv.


class TestWeakSupervisionProperties:
    @given(st.lists(st.sampled_from(["Sheet1", "Data", "Budget", "Report"]), min_size=1, max_size=30))
    def test_name_probabilities_sum_over_observed_names(self, names):
        from repro.sheet import Workbook

        workbooks = []
        for index, name in enumerate(names):
            workbook = Workbook(f"wb{index}")
            workbook.add_sheet(name)
            workbooks.append(workbook)
        stats = SheetNameStatistics.from_workbooks(workbooks)
        total = sum(stats.probability(name) for name in set(names))
        assert total == np.float64(1.0) or abs(total - 1.0) < 1e-9

    @given(
        st.lists(st.sampled_from(["Alpha", "Beta", "Gamma"]), min_size=1, max_size=6),
        st.integers(2, 40),
    )
    def test_sequence_probability_decreases_with_length(self, names, n_noise):
        from repro.sheet import Workbook

        workbooks = []
        for index in range(n_noise):
            workbook = Workbook(f"noise{index}")
            workbook.add_sheet(f"Unique {index}")
            workbooks.append(workbook)
        family = Workbook("family")
        for name in names:
            if name not in family:
                family.add_sheet(name)
        workbooks.append(family)
        stats = SheetNameStatistics.from_workbooks(workbooks)
        probability = 1.0
        for prefix_length in range(1, len(family.sheet_names) + 1):
            new_probability = stats.sequence_probability(family.sheet_names[:prefix_length])
            assert new_probability <= probability + 1e-12
            probability = new_probability
