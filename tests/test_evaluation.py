"""Tests for metrics, PR curves, buckets, runners and latency measurement."""

import math

import pytest

from repro.core.interface import FormulaPredictor, Prediction
from repro.corpus import sample_test_cases, split_corpus
from repro.corpus.testcases import TestCase
from repro.evaluation import (
    LatencyRecorder,
    bucket_metrics,
    bucketize_results,
    evaluate_predictions,
    measure_latency,
    overall_average,
    precision_recall_curve,
    precision_recall_f1,
    predict_cases,
    prepare_corpus_evaluation,
    run_method_on_cases,
    run_method_on_corpus,
)
from repro.evaluation.metrics import QualityMetrics, formulas_match
from repro.evaluation.pr_curve import area_under_pr
from repro.sheet import CellAddress, Sheet


def _case(ground_truth: str, n_rows: int = 30) -> TestCase:
    return TestCase(
        corpus_name="unit",
        workbook_name="wb",
        sheet_name="S",
        target_sheet=Sheet("S"),
        target_cell=CellAddress(0, 0),
        ground_truth=ground_truth,
        n_rows=n_rows,
    )


class _FixedPredictor(FormulaPredictor):
    """Predicts a fixed mapping from ground truth to output (for harness tests)."""

    name = "fixed"

    def __init__(self, outputs):
        self._outputs = outputs
        self._calls = 0
        self.fitted = False

    def fit(self, reference_workbooks):
        self.fitted = True

    def predict(self, target_sheet, target_cell):
        output = self._outputs[self._calls]
        self._calls += 1
        return output


class TestMetrics:
    def test_formulas_match_normalizes(self):
        assert formulas_match("=sum(a1:a5)", "=SUM(A1:A5)")
        assert not formulas_match("=SUM(A1:A5)", "=SUM(A1:A6)")

    def test_precision_recall_definitions(self):
        cases = [_case("=SUM(A1:A2)"), _case("=SUM(A1:A3)"), _case("=SUM(A1:A4)")]
        predictions = [Prediction("=SUM(A1:A2)", 0.9), None, Prediction("=SUM(A9:A9)", 0.8)]
        results = evaluate_predictions(cases, predictions)
        metrics = precision_recall_f1(results)
        assert metrics.n_cases == 3
        assert metrics.n_predicted == 2
        assert metrics.n_hits == 1
        assert metrics.recall == pytest.approx(1 / 3)
        assert metrics.precision == pytest.approx(1 / 2)
        assert metrics.f1 == pytest.approx(2 * (1 / 3) * (1 / 2) / (1 / 3 + 1 / 2))

    def test_abstention_does_not_hurt_precision(self):
        cases = [_case("=A1"), _case("=A2")]
        predictions = [Prediction("=A1", 1.0), None]
        metrics = precision_recall_f1(evaluate_predictions(cases, predictions))
        assert metrics.precision == 1.0
        assert metrics.recall == 0.5

    def test_zero_cases(self):
        metrics = QualityMetrics(0, 0, 0)
        assert metrics.recall == 0.0 and metrics.precision == 0.0 and metrics.f1 == 0.0

    def test_confidence_threshold_filters(self):
        cases = [_case("=A1"), _case("=A2")]
        predictions = [Prediction("=A1", 0.9), Prediction("=A9", 0.1)]
        results = evaluate_predictions(cases, predictions)
        assert precision_recall_f1(results, confidence_threshold=0.5).precision == 1.0
        assert precision_recall_f1(results, confidence_threshold=0.0).precision == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions([_case("=A1")], [])

    def test_as_row_keys(self):
        row = QualityMetrics(10, 8, 6).as_row()
        assert set(row) == {"recall", "precision", "f1", "cases", "predicted", "hits"}


class TestPRCurve:
    def test_curve_monotone_threshold(self):
        cases = [_case(f"=A{i}") for i in range(1, 6)]
        predictions = [
            Prediction("=A1", 0.9),
            Prediction("=A2", 0.7),
            Prediction("=XX", 0.5),
            Prediction("=A4", 0.3),
            None,
        ]
        results = evaluate_predictions(cases, predictions)
        points = precision_recall_curve(results)
        thresholds = [point.threshold for point in points]
        assert thresholds == sorted(thresholds)
        # recall never increases as the threshold grows
        recalls = [point.recall for point in points]
        assert all(left >= right for left, right in zip(recalls, recalls[1:]))

    def test_perfect_predictor_area(self):
        cases = [_case("=A1"), _case("=A2")]
        predictions = [Prediction("=A1", 0.8), Prediction("=A2", 0.9)]
        points = precision_recall_curve(evaluate_predictions(cases, predictions))
        assert max(point.recall for point in points) == 1.0
        assert all(point.precision == 1.0 for point in points)
        assert area_under_pr(points) >= 0.0


class TestBuckets:
    def test_bucket_by_complexity_and_type(self):
        cases = [
            _case("=A1"),                      # other, l<3
            _case("=SUM(A1:A5)"),              # math
            _case("=IF(A1>1,1,0)"),            # conditional
            _case("=CONCATENATE(A1,B1)"),      # string
        ]
        predictions = [Prediction(case.ground_truth, 1.0) for case in cases]
        results = evaluate_predictions(cases, predictions)
        by_type = bucketize_results(results, by="type")
        assert set(by_type) == {"other", "math", "conditional", "string"}
        by_complexity = bucket_metrics(results, by="complexity")
        assert all(metrics.recall == 1.0 for metrics in by_complexity.values())

    def test_bucket_by_rows(self):
        cases = [_case("=A1", n_rows=10), _case("=A1", n_rows=300)]
        predictions = [None, None]
        buckets = bucketize_results(evaluate_predictions(cases, predictions), by="rows")
        assert set(buckets) == {"r<40", "250<=r"}

    def test_unknown_bucketing_rejected(self):
        with pytest.raises(ValueError):
            bucketize_results([], by="color")


class TestRunners:
    def test_run_method_on_cases_fits_and_scores(self):
        cases = [_case("=A1"), _case("=A2")]
        predictor = _FixedPredictor([Prediction("=A1", 1.0), Prediction("=A2", 1.0)])
        run = run_method_on_cases(predictor, [], cases, "unit")
        assert predictor.fitted
        assert run.metrics.recall == 1.0
        assert run.method == "fixed"
        assert run.corpus_name == "unit"

    def test_prepare_corpus_evaluation(self, pge_corpus):
        workload = prepare_corpus_evaluation(pge_corpus, "timestamp", 0.2)
        assert workload.cases
        assert workload.reference_workbooks
        test_names = {workbook.name for workbook in workload.test_workbooks}
        reference_names = {workbook.name for workbook in workload.reference_workbooks}
        assert not test_names & reference_names

    def test_run_method_on_corpus(self, pge_corpus):
        predictor = _FixedPredictor([None] * 1000)
        run = run_method_on_corpus(predictor, pge_corpus, test_fraction=0.2)
        assert run.metrics.recall == 0.0
        assert run.metrics.n_cases > 0

    def test_overall_average(self):
        cases = [_case("=A1")]
        hit_run = run_method_on_cases(_FixedPredictor([Prediction("=A1", 1.0)]), [], cases, "a")
        miss_run = run_method_on_cases(_FixedPredictor([None]), [], cases, "b")
        average = overall_average([hit_run, miss_run])
        assert average["recall"] == pytest.approx(0.5)
        assert overall_average([]) == {"recall": 0.0, "precision": 0.0, "f1": 0.0}

    def test_predict_cases_batches_per_sheet_in_order(self):
        """Consecutive same-sheet cases route through predict_batch as one
        group; predictions come back in the original case order."""
        sheet_a, sheet_b = Sheet("A"), Sheet("B")
        cases = []
        for sheet, count in ((sheet_a, 3), (sheet_b, 2), (sheet_a, 1)):
            for __ in range(count):
                case = _case("=A1")
                case.target_sheet = sheet
                cases.append(case)

        class _BatchRecorder(_FixedPredictor):
            def __init__(self, outputs):
                super().__init__(outputs)
                self.batches = []

            def predict_batch(self, target_sheet, target_cells):
                self.batches.append((target_sheet, len(list(target_cells))))
                return super().predict_batch(target_sheet, target_cells)

        outputs = [Prediction(f"=A{index}", 1.0) for index in range(len(cases))]
        predictor = _BatchRecorder(outputs)
        predictions = predict_cases(predictor, cases)
        assert [p.formula for p in predictions] == [o.formula for o in outputs]
        assert predictor.batches == [(sheet_a, 3), (sheet_b, 2), (sheet_a, 1)]


class TestLatency:
    def test_measure_latency_basic(self, pge_corpus):
        workload = prepare_corpus_evaluation(pge_corpus, "timestamp", 0.2)
        predictor = _FixedPredictor([None] * 1000)
        report = measure_latency(predictor, workload.reference_workbooks, workload.cases, max_cases=5)
        assert report.n_test_cases == 5
        assert report.offline_seconds >= 0.0
        assert report.online_seconds_per_case >= 0.0
        assert math.isfinite(report.online_seconds_total)

    def test_measure_latency_timeout(self, pge_corpus):
        class _SlowFit(_FixedPredictor):
            name = "slow"

            def fit(self, reference_workbooks):
                raise TimeoutError("too slow")

        workload = prepare_corpus_evaluation(pge_corpus, "timestamp", 0.2)
        report = measure_latency(
            _SlowFit([None]), workload.reference_workbooks, workload.cases, timeout_seconds=10.0
        )
        assert math.isinf(report.online_seconds_total)
        assert report.n_test_cases == 0


class TestLatencyRecorder:
    def test_record_and_aggregate(self):
        recorder = LatencyRecorder()
        for seconds in (0.004, 0.002, 0.001, 0.003):
            recorder.record(seconds)
        assert len(recorder) == 4
        assert recorder.total_seconds == pytest.approx(0.010)
        assert recorder.mean_seconds == pytest.approx(0.0025)
        # Interpolated percentiles: p50 of an even count sits between the
        # two middle samples instead of snapping to the nearest rank.
        assert recorder.percentile(0.5) == pytest.approx(0.0025)
        assert recorder.percentile(1.0) == pytest.approx(0.004)
        assert recorder.percentile(0.0) == pytest.approx(0.001)
        p50, p95, p99 = recorder.percentiles((0.5, 0.95, 0.99))
        assert p50 == pytest.approx(0.0025)
        assert p50 <= p95 <= p99 <= 0.004

    def test_summary(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        summary = recorder.summary()
        assert summary["count"] == 1.0
        assert summary["window_count"] == 1.0
        assert summary["p50_seconds"] == summary["p95_seconds"] == 0.5
        assert summary["p99_seconds"] == 0.5
        assert summary["max_seconds"] == 0.5

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert len(recorder) == 0
        assert recorder.mean_seconds == 0.0
        assert recorder.percentile(0.95) == 0.0
        assert recorder.summary()["count"] == 0.0

    def test_invalid_inputs(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-0.1)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)
        with pytest.raises(ValueError):
            LatencyRecorder(window_size=0)

    def test_memory_bounded_window(self):
        recorder = LatencyRecorder(window_size=4)
        for seconds in (9.0, 9.0, 9.0, 1.0, 2.0, 3.0, 4.0):
            recorder.record(seconds)
        # Running aggregates cover every sample ...
        assert len(recorder) == 7
        assert recorder.total_seconds == pytest.approx(37.0)
        summary = recorder.summary()
        assert summary["max_seconds"] == 9.0
        assert summary["count"] == 7.0
        # ... while percentiles see only the most recent window_size, and
        # summary says so via window_count.
        assert summary["window_count"] == 4.0
        assert recorder.window_count == 4
        assert recorder.percentile(1.0) == 4.0
        assert recorder.percentile(0.5) == 2.5
