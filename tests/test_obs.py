"""Tests for ``repro.obs``: the tracer, the metrics registry, and their
wiring through the serving stack.

Covers the ISSUE 10 tentpole guarantees: hierarchical span trees with
``contextvars`` propagation (and *no* leakage across threads), systematic
sampling plus the always-capture slow log, near-free disabled spans, the
unified counter/gauge/histogram registry (N-thread hammer: no lost
increments), the bounded-memory reservoir percentile estimator, the true
in-flight gauge under a stalled flush, trace-id propagation through HTTP
(headers, error bodies, ``SchemaError``), and the per-shard /
per-stage span tree of a sharded recommend.
"""

import threading
import time

import numpy as np
import pytest

from repro import AutoFormula, AutoFormulaConfig, FormulaService, ShardedWorkspace
from repro.evaluation.latency import LatencyRecorder
from repro.obs import MetricsRegistry, get_tracer, trace_tree
from repro.obs.tracing import _NOOP_SPAN, Tracer
from repro.server import (
    FormulaClient,
    ServerConfig,
    ServerError,
    SheetInterner,
    start_server_in_background,
)
from repro.server.schemas import SchemaError, decode_recommend_payload
from repro.service import RecommendationRequest

from test_server import _stub_service, _target_sheet
from test_service import _config


@pytest.fixture()
def tracer():
    """The global tracer, enabled for the test and restored after.

    The tracer is process-global state; every test that flips it on must
    leave it disabled so unrelated tests keep paying the no-op price.
    """
    instance = get_tracer()
    instance.configure(enabled=True, sample_rate=1.0, slow_threshold_s=0.25)
    instance.reset()
    try:
        yield instance
    finally:
        instance.configure(enabled=False, sample_rate=1.0, slow_threshold_s=0.25)
        instance.reset()


def _span_names(node, into=None):
    """Flatten a trace-tree node into the set of span names it contains."""
    into = set() if into is None else into
    into.add(node["name"])
    for child in node["children"]:
        _span_names(child, into)
    return into


def _find_spans(node, name, found=None):
    """All nodes named ``name`` anywhere under ``node`` (pre-order)."""
    found = [] if found is None else found
    if node["name"] == name:
        found.append(node)
    for child in node["children"]:
        _find_spans(child, name, found)
    return found


# ------------------------------------------------------------------- tracer


class TestTracer:
    def test_nested_spans_build_one_tree(self, tracer):
        with tracer.span("http.request", method="POST") as root:
            with tracer.span("wire.decode", n_requests=2):
                pass
            with tracer.span("batch.flush") as flush:
                with tracer.span("workspace.serve"):
                    pass
            root.set_attribute("status", 200)

        recent = tracer.recent_traces()
        assert len(recent) == 1
        tree = recent[0]
        assert tree["n_spans"] == 4
        assert tree["orphans"] == []
        assert tree["root"]["name"] == "http.request"
        assert tree["root"]["attributes"] == {"method": "POST", "status": 200}
        child_names = [child["name"] for child in tree["root"]["children"]]
        assert child_names == ["wire.decode", "batch.flush"]
        serve = tree["root"]["children"][1]["children"]
        assert [node["name"] for node in serve] == ["workspace.serve"]
        assert flush.duration_s >= 0.0
        assert tree["duration_ms"] >= tree["root"]["children"][1]["duration_ms"]

    def test_trace_id_seeding_and_generation(self, tracer):
        with tracer.span("http.request", trace_id="cafe1234") as span:
            assert span.trace.trace_id == "cafe1234"
            assert tracer.current_trace_id() == "cafe1234"
            # Nested spans ignore the seed and join the active trace.
            with tracer.span("inner", trace_id="ffff0000") as inner:
                assert inner.trace is span.trace
        with tracer.span("http.request") as span:
            generated = span.trace.trace_id
        assert len(generated) == 16
        int(generated, 16)  # hex

    def test_exception_stamps_error_attribute_and_still_captures(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("http.request"):
                raise RuntimeError("boom")
        tree = tracer.recent_traces()[-1]
        assert tree["root"]["attributes"]["error"] == "RuntimeError: boom"

    def test_disabled_tracer_hands_out_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("anything", foo=1)
        second = tracer.span("else")
        assert first is second is _NOOP_SPAN
        with first as span:
            span.set_attribute("ignored", True)
            assert span.trace is None
            assert tracer.current_span() is None
        assert tracer.recent_traces() == []
        assert tracer.stats()["traces_started"] == 0

    def test_systematic_sampling_admits_exact_fraction(self):
        tracer = Tracer(enabled=True, sample_rate=0.25, slow_threshold_s=0.0)
        for __ in range(16):
            with tracer.span("request"):
                pass
        stats = tracer.stats()
        assert stats["traces_started"] == 16
        assert stats["recent_captured"] == 4  # deterministic 1-in-4

    def test_slow_log_captures_even_unsampled_traces(self):
        tracer = Tracer(enabled=True, sample_rate=0.0, slow_threshold_s=1e-9)
        with tracer.span("request"):
            time.sleep(0.002)
        assert tracer.recent_traces() == []
        slow = tracer.slow_traces()
        assert len(slow) == 1
        assert slow[0]["sampled"] is False
        assert slow[0]["duration_ms"] >= 1.0

    def test_zero_threshold_disables_slow_log(self):
        tracer = Tracer(enabled=True, sample_rate=1.0, slow_threshold_s=0.0)
        with tracer.span("request"):
            pass
        assert tracer.slow_traces() == []
        assert len(tracer.recent_traces()) == 1

    def test_rings_are_bounded(self):
        tracer = Tracer(
            enabled=True, sample_rate=1.0, slow_threshold_s=1e-9, max_recent=4, max_slow=2
        )
        for index in range(9):
            with tracer.span("request", index=index):
                pass
        recent = tracer.recent_traces()
        assert len(recent) == 4
        # Oldest evicted first: the survivors are the four newest.
        assert [tree["root"]["attributes"]["index"] for tree in recent] == [5, 6, 7, 8]
        assert len(tracer.slow_traces()) == 2

    def test_tracing_does_not_perturb_the_seeded_global_rng(self):
        import random

        random.seed(1234)
        clean = [random.random() for __ in range(4)]
        random.seed(1234)
        tracer = Tracer(enabled=True, sample_rate=1.0)
        drawn = []
        for __ in range(4):
            with tracer.span("request"):
                drawn.append(random.random())
        assert drawn == clean


class TestContextPropagation:
    def test_plain_threads_do_not_inherit_the_current_span(self, tracer):
        """A worker thread starts with a clean context: its spans are new
        roots, never silently parented under another request's span."""
        seen = {}

        def worker():
            with tracer.span("worker.request") as span:
                seen["parent_id"] = span.parent_id
                seen["trace_id"] = span.trace.trace_id

        with tracer.span("http.request") as root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["parent_id"] is None
            assert seen["trace_id"] != root.trace.trace_id

    def test_attach_carries_a_span_across_the_thread_hop(self, tracer):
        with tracer.span("http.request") as root:
            def worker():
                with tracer.attach(root):
                    with tracer.span("batch.flush") as child:
                        assert child.trace is root.trace
                        assert child.parent_id == root.span_id
                # The attachment is scoped: after the with, nothing leaks.
                assert tracer.current_span() is None

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        tree = tracer.recent_traces()[-1]
        assert [node["name"] for node in tree["root"]["children"]] == ["batch.flush"]

    def test_hammer_no_cross_request_span_leakage(self, tracer):
        """N threads each run M root+child traces; every child must land
        under its own thread's root — contextvars isolation under load."""
        n_threads, n_traces = 8, 25
        barrier = threading.Barrier(n_threads)
        failures = []

        def worker(worker_id):
            barrier.wait()
            for index in range(n_traces):
                with tracer.span("request", worker=worker_id, index=index) as root:
                    with tracer.span("stage") as child:
                        if child.trace is not root.trace or child.parent_id != root.span_id:
                            failures.append((worker_id, index))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert tracer.stats()["traces_started"] == n_threads * n_traces
        for tree in tracer.recent_traces():
            assert tree["n_spans"] == 2
            assert tree["orphans"] == []
            assert [node["name"] for node in tree["root"]["children"]] == ["stage"]


# ----------------------------------------------------------------- registry


class TestMetricsRegistry:
    def test_counter_get_or_make_and_read(self):
        registry = MetricsRegistry()
        counter = registry.counter("server.accepted")
        counter.inc()
        counter.inc(4)
        assert registry.counter("server.accepted") is counter
        assert registry.counter_value("server.accepted") == 5
        assert registry.counter_value("server.never_touched") == 0
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labeled_counters_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("server.batch_size", labels={"size": "1"}).inc(3)
        registry.counter("server.batch_size", labels={"size": "8"}).inc()
        values = registry.counter_values("server.batch_size")
        assert values == {(("size", "1"),): 3, (("size", "8"),): 1}

    def test_gauge_set_and_callback_modes(self):
        registry = MetricsRegistry()
        direct = registry.gauge("server.depth")
        direct.set(7)
        assert direct.value == 7
        box = {"value": 0}
        sampled = registry.gauge("server.inflight", fn=lambda: box["value"])
        box["value"] = 3
        assert sampled.value == 3
        with pytest.raises(RuntimeError, match="callback"):
            sampled.set(1)
        broken = registry.gauge("server.broken", fn=lambda: 1 / 0)
        assert broken.value != broken.value  # NaN, never an exception

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("server.accepted")
        with pytest.raises(ValueError, match="different kind"):
            registry.gauge("server.accepted")
        with pytest.raises(ValueError, match="different kind"):
            registry.histogram("server.accepted")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="dotted identifiers"):
            registry.counter("server accepted!")

    def test_snapshot_nests_by_dotted_name(self):
        registry = MetricsRegistry()
        registry.counter("server.accepted").inc(2)
        registry.counter("server.batch_size", labels={"size": "4"}).inc()
        registry.gauge("workspace.index_bytes", labels={"workspace": "acme"}).set(128)
        registry.histogram("server.queue_wait").observe(0.25)
        tree = registry.snapshot()
        assert tree["server"]["accepted"] == 2
        assert tree["server"]["batch_size"] == {"size=4": 1}
        assert tree["workspace"]["index_bytes"] == {"workspace=acme": 128}
        assert tree["server"]["queue_wait"]["count"] == 1.0
        assert tree["server"]["queue_wait"]["p50_seconds"] == pytest.approx(0.25)

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("server.accepted").inc(3)
        registry.gauge("server.queue_depth", labels={"workspace": "acme"}).set(2)
        histogram = registry.histogram("server.endpoint", labels={"endpoint": "recommend"})
        histogram.observe(0.1)
        histogram.observe(0.3)
        text = registry.render_prometheus()
        lines = text.strip().splitlines()
        assert "# TYPE server_accepted_total counter" in lines
        assert "server_accepted_total 3" in lines
        assert 'server_queue_depth{workspace="acme"} 2' in lines
        assert any(
            line.startswith('server_endpoint_seconds{endpoint="recommend",quantile="0.5"}')
            for line in lines
        )
        assert 'server_endpoint_seconds_count{endpoint="recommend"} 2' in lines
        assert any(
            line.startswith('server_endpoint_seconds_sum{endpoint="recommend"}')
            for line in lines
        )
        assert text.endswith("\n")

    def test_counter_hammer_no_lost_increments(self):
        registry = MetricsRegistry()
        n_threads, n_incs = 8, 10_000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            # get-or-make races with other threads on purpose.
            counter = registry.counter("hammer.total")
            for __ in range(n_incs):
                counter.inc()
                registry.histogram("hammer.latency").observe(0.001)

        threads = [threading.Thread(target=worker) for __ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("hammer.total") == n_threads * n_incs
        assert len(registry.histogram("hammer.latency")) == n_threads * n_incs


# ---------------------------------------------------------------- reservoir


class TestReservoirRecorder:
    def test_memory_is_bounded_but_aggregates_are_exact(self):
        recorder = LatencyRecorder(reservoir_size=256)
        for index in range(10_000):
            recorder.record(index / 10_000)
        assert recorder.window_count == 256
        assert len(recorder) == 10_000
        summary = recorder.summary()
        assert summary["count"] == 10_000.0
        assert summary["max_seconds"] == pytest.approx(0.9999)
        assert summary["total_seconds"] == pytest.approx(sum(i / 10_000 for i in range(10_000)))

    def test_reservoir_percentiles_track_the_exact_window(self):
        rng = np.random.default_rng(42)
        samples = rng.uniform(0.0, 1.0, size=20_000)
        reservoir = LatencyRecorder(reservoir_size=2048)
        exact = LatencyRecorder(window_size=len(samples))
        for value in samples:
            reservoir.record(float(value))
            exact.record(float(value))
        for fraction, tolerance in ((0.5, 0.06), (0.95, 0.04), (0.99, 0.02)):
            assert reservoir.percentile(fraction) == pytest.approx(
                exact.percentile(fraction), abs=tolerance
            )

    def test_small_streams_are_kept_verbatim(self):
        recorder = LatencyRecorder(reservoir_size=64)
        for value in (0.1, 0.2, 0.3):
            recorder.record(value)
        assert recorder.percentile(0.5) == pytest.approx(0.2)


# ------------------------------------------------------------------- server


class TestServerObservability:
    def test_trace_header_echo_and_error_bodies(self):
        config = ServerConfig(trace_sample_rate=1.0)
        with start_server_in_background(_stub_service(), config) as handle:
            client = FormulaClient(handle.host, handle.port)
            # Caller-seeded trace id is echoed back on the response.
            status, headers, __ = client.request(
                "POST",
                "/v1/workspaces/acme/recommend",
                {"sheet": {"name": "T", "cells": {"A1": {"value": 1.0}}}, "cell": "A2"},
                trace_id="feedc0de00000001",
            )
            assert status == 200
            assert headers.get("X-Trace-Id") == "feedc0de00000001"

            # Server-generated ids ride every response too.
            status, headers, __ = client.request("GET", "/health")
            assert status == 200
            assert headers.get("X-Trace-Id")

            # 4xx/5xx bodies carry the trace id for correlation.
            with pytest.raises(ServerError) as excinfo:
                client.recommend("ghost", _target_sheet(), "A3")
            assert excinfo.value.status == 404
            assert excinfo.value.trace_id
            assert excinfo.value.body["trace_id"] == excinfo.value.trace_id

            with pytest.raises(ServerError) as excinfo:
                client._checked(
                    "POST", "/v1/workspaces/acme/recommend", {"cell": "A1"}
                )
            assert excinfo.value.status == 400
            assert excinfo.value.trace_id
            # The SchemaError detail names the trace id too.
            assert "trace_id=" in str(excinfo.value.body.get("detail", ""))

    def test_schema_error_message_carries_active_trace_id(self, tracer):
        interner = SheetInterner()
        with tracer.span("http.request", trace_id="abad1dea0000cafe"):
            with pytest.raises(SchemaError) as excinfo:
                decode_recommend_payload({"sheet": "not a dict"}, interner)
            assert "trace_id=abad1dea0000cafe" in str(excinfo.value)
            assert excinfo.value.trace_id == "abad1dea0000cafe"
        # With tracing off there is no trace, and the message stays clean.
        tracer.configure(enabled=False)
        with pytest.raises(SchemaError) as excinfo:
            decode_recommend_payload({"sheet": "not a dict"}, interner)
        assert "trace_id" not in str(excinfo.value)
        assert excinfo.value.trace_id is None

    def test_metrics_and_traces_endpoints(self):
        config = ServerConfig(trace_sample_rate=1.0)
        with start_server_in_background(_stub_service(), config) as handle:
            client = FormulaClient(handle.host, handle.port)
            client.recommend("acme", _target_sheet(), "A3")

            text = client.metrics_text()
            lines = text.strip().splitlines()
            assert "server_accepted_total 1" in lines
            assert any(line.startswith("server_inflight ") for line in lines)
            assert any(
                line.startswith('server_endpoint_seconds{endpoint="recommend",quantile="0.5"}')
                for line in lines
            )

            body = client.traces()
            assert set(body) == {"recent", "slow", "stats"}
            assert body["stats"]["enabled"] is True
            recommend_roots = [
                tree["root"]
                for tree in body["recent"]
                if tree["root"]["attributes"].get("endpoint") == "recommend"
            ]
            assert recommend_roots
            names = _span_names(recommend_roots[-1])
            assert {"http.request", "wire.decode", "batch.flush", "workspace.serve"} <= names

            stats = client.stats()
            assert stats["tracing"]["enabled"] is True
            assert stats["in_flight"] == 0

    def test_inflight_gauge_sees_stalled_flush(self):
        """Regression for the /stats queue-depth bug: while a batch is
        stuck in the (slow) flush, admitted-minus-completed must be > 0,
        and must return to 0 once the batch drains."""
        config = ServerConfig(max_batch_wait_s=0.0)
        with start_server_in_background(_stub_service(delay_seconds=0.6), config) as handle:
            client = FormulaClient(handle.host, handle.port)
            errors = []

            def fire():
                try:
                    FormulaClient(handle.host, handle.port).recommend(
                        "acme", _target_sheet(), "A3"
                    )
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            worker = threading.Thread(target=fire)
            worker.start()
            observed = 0
            deadline = time.time() + 5.0
            while time.time() < deadline:
                observed = client.stats()["in_flight"]
                if observed > 0:
                    break
                time.sleep(0.02)
            worker.join()
            assert not errors
            assert observed > 0
            assert client.stats()["in_flight"] == 0


# ------------------------------------------------------------- sharded trace


class TestShardedTraceTree:
    def test_sharded_recommend_produces_per_shard_stage_spans(
        self, tracer, trained_encoder, pge_corpus
    ):
        from repro.corpus import sample_test_cases, split_corpus

        test_workbooks, reference_workbooks = split_corpus(pge_corpus, 0.15, "timestamp")
        cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=2, seed=0)
        workspace = ShardedWorkspace(
            "traced", lambda: AutoFormula(trained_encoder, _config("exact")), 3
        )
        try:
            workspace.add_workbooks(reference_workbooks[:6])
            tracer.reset()
            case = cases[0]
            workspace.recommend(RecommendationRequest(case.target_sheet, case.target_cell))
        finally:
            workspace.close()

        recent = tracer.recent_traces()
        assert recent, "sharded serve must produce a sampled trace"
        tree = recent[-1]
        root = tree["root"]
        assert root["name"] == "sharded.serve"
        assert root["attributes"]["workspace"] == "traced"
        assert root["attributes"]["n_shards"] == 3
        assert tree["orphans"] == []

        # Phase 1: one s1.shard child per populated shard, distinct ids.
        (s1,) = _find_spans(root, "shard.s1")
        s1_children = [node for node in s1["children"] if node["name"] == "s1.shard"]
        assert len(s1_children) == s1["attributes"]["n_shards"] >= 1
        shard_ids = [node["attributes"]["shard"] for node in s1_children]
        assert len(set(shard_ids)) == len(shard_ids)
        # Each shard's S1 work nests the stage span, which nests the
        # index scan.
        for node in s1_children:
            names = _span_names(node)
            assert "s1.sheet_hits" in names
            assert "index.search" in names

        # Phase 2: scoring spans nest under their shard spans.
        (s2,) = _find_spans(root, "shard.s2")
        s2_children = [node for node in s2["children"] if node["name"] == "s2.shard"]
        assert len(s2_children) == s2["attributes"]["n_shards"] >= 1
        assert any("s2.score" in _span_names(node) for node in s2_children)

        # Spans carry usable timings: every child fits inside the root.
        def check_bounds(node):
            for child in node["children"]:
                assert child["start_ms"] >= node["start_ms"] - 1e-6
                assert child["duration_ms"] >= 0.0
                check_bounds(child)

        check_bounds(root)
