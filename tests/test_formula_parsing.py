"""Tests for the formula tokenizer and parser."""

import pytest

from repro.formula import (
    BinaryOp,
    CellReference,
    FormulaSyntaxError,
    FunctionCall,
    NumberLiteral,
    RangeReference,
    StringLiteral,
    BooleanLiteral,
    UnaryOp,
    node_count,
    parse_formula,
    tokenize,
)
from repro.formula.tokenizer import TokenType


class TestTokenizer:
    def test_simple_function(self):
        tokens = tokenize("=SUM(A1:A5)")
        types = [token.type for token in tokens]
        assert types == [
            TokenType.IDENT,
            TokenType.LPAREN,
            TokenType.RANGE,
            TokenType.RPAREN,
            TokenType.EOF,
        ]

    def test_leading_equals_optional(self):
        assert len(tokenize("SUM(A1)")) == len(tokenize("=SUM(A1)"))

    def test_numbers_and_operators(self):
        tokens = tokenize("=1.5e2+A1*3")
        texts = [token.text for token in tokens if token.type is not TokenType.EOF]
        assert texts == ["1.5e2", "+", "A1", "*", "3"]

    def test_string_with_escaped_quotes(self):
        tokens = tokenize('="he said ""hi"""')
        assert tokens[0].type is TokenType.STRING

    def test_comparison_operators(self):
        tokens = tokenize("=A1>=10")
        assert tokens[1].type is TokenType.COMPARE
        assert tokens[1].text == ">="

    def test_booleans(self):
        tokens = tokenize("=TRUE")
        assert tokens[0].type is TokenType.BOOLEAN

    def test_semicolon_separator(self):
        tokens = tokenize("=SUM(A1;A2)")
        assert any(token.type is TokenType.COMMA for token in tokens)

    def test_whitespace_ignored(self):
        assert len(tokenize("= SUM( A1 , B2 )")) == len(tokenize("=SUM(A1,B2)"))

    def test_invalid_character_raises(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize("=A1 @ B2")


class TestParser:
    def test_countif_structure(self):
        ast = parse_formula("=COUNTIF(C7:C37,C41)")
        assert isinstance(ast, FunctionCall)
        assert ast.name == "COUNTIF"
        assert isinstance(ast.args[0], RangeReference)
        assert isinstance(ast.args[1], CellReference)

    def test_function_name_uppercased(self):
        ast = parse_formula("=sum(A1)")
        assert isinstance(ast, FunctionCall)
        assert ast.name == "SUM"

    def test_nested_functions(self):
        ast = parse_formula("=ROUND(SUM(A1:A5)/COUNT(A1:A5),2)")
        assert isinstance(ast, FunctionCall)
        assert ast.name == "ROUND"
        inner = ast.args[0]
        assert isinstance(inner, BinaryOp)
        assert inner.op == "/"

    def test_operator_precedence(self):
        ast = parse_formula("=1+2*3")
        assert isinstance(ast, BinaryOp)
        assert ast.op == "+"
        assert isinstance(ast.right, BinaryOp)
        assert ast.right.op == "*"

    def test_comparison_lowest_precedence(self):
        ast = parse_formula("=A1+1>B1*2")
        assert isinstance(ast, BinaryOp)
        assert ast.op == ">"

    def test_concatenation(self):
        ast = parse_formula('=A1&" units"')
        assert isinstance(ast, BinaryOp)
        assert ast.op == "&"
        assert isinstance(ast.right, StringLiteral)

    def test_unary_minus_and_percent(self):
        ast = parse_formula("=-A1%")
        assert isinstance(ast, UnaryOp)
        assert ast.op == "-"
        assert isinstance(ast.operand, UnaryOp)
        assert ast.operand.op == "%"

    def test_parentheses_grouping(self):
        ast = parse_formula("=(1+2)*3")
        assert isinstance(ast, BinaryOp)
        assert ast.op == "*"

    def test_boolean_literal(self):
        ast = parse_formula("=IF(TRUE,1,0)")
        assert isinstance(ast.args[0], BooleanLiteral)

    def test_empty_argument_list(self):
        ast = parse_formula("=TODAY()")
        assert isinstance(ast, FunctionCall)
        assert ast.args == ()

    def test_dollar_anchors_stripped(self):
        ast = parse_formula("=SUM($A$1:$B$2)")
        assert ast.to_formula() == "SUM(A1:B2)"

    def test_node_count(self):
        assert node_count(parse_formula("=COUNTIF(C7:C37,C41)")) == 3
        assert node_count(parse_formula("=A1")) == 1
        assert node_count(parse_formula("=A1+B1")) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=SUM(A1) B2")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=SUM(A1")

    def test_missing_operand_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=A1+")


class TestRendering:
    @pytest.mark.parametrize(
        "formula",
        [
            "COUNTIF(C7:C37,C41)",
            "SUM(A1:A10)",
            "IF(B2>100,\"high\",\"low\")",
            "ROUND(C3/D3,2)",
            "A1+B1*C1",
            "CONCATENATE(A1,\" \",B1)",
            "-A5",
            "VLOOKUP(A2,B1:D20,3,FALSE)",
        ],
    )
    def test_roundtrip_canonical_formulas(self, formula):
        assert parse_formula("=" + formula).to_formula() == formula

    def test_number_rendering(self):
        assert NumberLiteral(5.0).to_formula() == "5"
        assert NumberLiteral(2.5).to_formula() == "2.5"

    def test_string_escaping(self):
        assert StringLiteral('say "hi"').to_formula() == '"say ""hi"""'
