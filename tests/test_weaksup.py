"""Tests for weak supervision: name statistics, hypothesis test, pairs, augmentation."""

import numpy as np
import pytest

from repro.sheet import Sheet, Workbook
from repro.weaksup import (
    AugmentationConfig,
    HypothesisTest,
    SheetNameStatistics,
    augment_region_sheet,
    augment_sheet,
    generate_training_pairs,
)


def _workbook(name: str, sheet_names, formulas=None) -> Workbook:
    workbook = Workbook(name)
    for sheet_name in sheet_names:
        sheet = workbook.add_sheet(sheet_name)
        sheet.set("A1", "data")
        for address, formula in (formulas or {}).get(sheet_name, {}).items():
            sheet.set(address, formula=formula)
    return workbook


@pytest.fixture()
def universe():
    """A universe with two related file pairs and noise workbooks."""
    workbooks = []
    # family with rare sheet names: similar pair
    formulas = {"WorkshopDetails": {"B5": "=SUM(A1:A4)", "C9": "=COUNTA(A1:A8)"}}
    workbooks.append(_workbook("wb_a1.xlsx", ["Instructions", "WorkshopDetails"], formulas))
    workbooks.append(_workbook("wb_a2.xlsx", ["Instructions", "WorkshopDetails"], formulas))
    # many unrelated workbooks with the common default name
    for index in range(30):
        workbooks.append(_workbook(f"common_{index}.xlsx", ["Sheet1"]))
    # workbooks with unique names (negative pool)
    workbooks.append(_workbook("other_1.xlsx", ["Budget FY22"]))
    workbooks.append(_workbook("other_2.xlsx", ["Inventory List"]))
    return workbooks


class TestSheetNameStatistics:
    def test_counts(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        assert stats.total_sheets == sum(len(workbook) for workbook in universe)
        assert stats.frequency("Sheet1") == 30
        assert stats.frequency("Instructions") == 2

    def test_probability_normalization(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        assert stats.probability("Sheet1") == pytest.approx(30 / stats.total_sheets)

    def test_case_insensitive(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        assert stats.frequency("sheet1") == stats.frequency("Sheet1")

    def test_unseen_name_small_probability(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        assert 0.0 < stats.probability("never seen before") < 0.05

    def test_empty_statistics(self):
        assert SheetNameStatistics().probability("anything") == 1.0

    def test_sequence_probability_product(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        sequence = ["Instructions", "WorkshopDetails"]
        expected = stats.probability("Instructions") * stats.probability("WorkshopDetails")
        assert stats.sequence_probability(sequence) == pytest.approx(expected)

    def test_most_common(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        assert stats.most_common(1)[0][0] == "sheet1"


class TestHypothesisTest:
    def test_rare_matching_names_accepted(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        test = HypothesisTest(stats)
        result = test.test(universe[0], universe[1])
        assert result.names_match
        assert result.similar
        assert result.p_value < 0.05

    def test_common_name_rejected(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        test = HypothesisTest(stats)
        result = test.test(universe[2], universe[3])  # two "Sheet1" workbooks
        assert result.names_match
        assert not result.similar

    def test_different_names_not_similar(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        test = HypothesisTest(stats)
        result = test.test(universe[0], universe[-1])
        assert not result.names_match
        assert not result.similar

    def test_shares_any_name(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        test = HypothesisTest(stats)
        assert test.shares_any_name(universe[0], universe[1])
        assert not test.shares_any_name(universe[0], universe[-1])

    def test_invalid_alpha(self, universe):
        stats = SheetNameStatistics.from_workbooks(universe)
        with pytest.raises(ValueError):
            HypothesisTest(stats, alpha=0.0)


class TestPairGeneration:
    def test_pair_counts(self, universe):
        pairs = generate_training_pairs(universe, seed=1)
        assert len(pairs.positive_sheet_pairs) == 2  # both sheets of the matched file pair
        assert len(pairs.positive_region_pairs) == 2  # the two identical formulas
        assert len(pairs.negative_region_pairs) >= 1
        assert len(pairs.negative_sheet_pairs) > 0

    def test_positive_region_pairs_identical_location_and_formula(self, universe):
        pairs = generate_training_pairs(universe, seed=1)
        for pair in pairs.positive_region_pairs:
            assert pair.left_center == pair.right_center
            left = pair.left_sheet.get(pair.left_center).formula
            right = pair.right_sheet.get(pair.right_center).formula
            assert left == right

    def test_negative_region_pairs_have_different_formula(self, universe):
        pairs = generate_training_pairs(universe, seed=1)
        for pair in pairs.negative_region_pairs:
            left = pair.left_sheet.get(pair.left_center).formula
            right = pair.right_sheet.get(pair.right_center).formula
            assert left != right

    def test_negative_sheet_pairs_share_no_name(self, universe):
        pairs = generate_training_pairs(universe, seed=1)
        for pair in pairs.negative_sheet_pairs:
            assert pair.left.name.lower() != pair.right.name.lower()

    def test_summary_keys(self, universe):
        summary = generate_training_pairs(universe, seed=1).summary()
        assert set(summary) == {
            "positive_sheet_pairs",
            "negative_sheet_pairs",
            "positive_region_pairs",
            "negative_region_pairs",
        }

    def test_real_universe_produces_pairs(self, training_pairs):
        assert len(training_pairs.positive_sheet_pairs) > 5
        assert len(training_pairs.positive_region_pairs) > 5
        assert len(training_pairs.negative_sheet_pairs) > 5


class TestAugmentation:
    def _sheet(self, rows=20, cols=4) -> Sheet:
        sheet = Sheet()
        for row in range(rows):
            for col in range(cols):
                sheet.set((row, col), row * 100 + col)
        return sheet

    def test_sheet_augmentation_removes_rows_or_keeps(self, rng):
        sheet = self._sheet()
        augmented = augment_sheet(sheet, rng, max_fraction=0.3)
        assert augmented.n_rows <= sheet.n_rows
        assert augmented.n_cols <= sheet.n_cols
        assert augmented is not sheet

    def test_sheet_augmentation_preserves_original(self, rng):
        sheet = self._sheet()
        original_cells = sheet.n_cells
        augment_sheet(sheet, rng, max_fraction=0.5)
        assert sheet.n_cells == original_cells

    def test_region_augmentation_only_trims_bottom_and_right(self, rng):
        sheet = self._sheet(rows=30, cols=6)
        augmented = augment_region_sheet(sheet, rng, max_fraction=0.4, protect_rows=10, protect_cols=3)
        # protected prefix is untouched
        for row in range(10):
            for col in range(3):
                assert augmented.get((row, col)).value == sheet.get((row, col)).value
        assert augmented.n_rows >= 10
        assert augmented.n_cols >= 3

    def test_tiny_sheet_not_augmented(self, rng):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.set("A2", 2)
        augmented = augment_sheet(sheet, rng, max_fraction=0.9)
        assert augmented.n_rows == sheet.n_rows

    def test_augmentation_config_defaults(self):
        config = AugmentationConfig()
        assert config.enabled
        assert 0.0 < config.max_removal_fraction < 1.0
        assert 0.0 < config.region_fraction <= 1.0
