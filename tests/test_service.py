"""Tests for the service layer: workspaces, mutation parity, typed serving."""

import dataclasses

import pytest

from repro import (
    AbstainReason,
    AutoFormula,
    AutoFormulaConfig,
    FormulaService,
    RecommendationRequest,
    RecommendationResponse,
    ShardedWorkspace,
    Workspace,
)
from repro.baselines import WeakSupervisionBaseline
from repro.corpus import sample_test_cases, split_corpus
from repro.evaluation import run_method_on_cases
from repro.sheet import CellAddress


@pytest.fixture(scope="module")
def workload(pge_corpus):
    """A small serving workload: reference workbooks plus test cases."""
    test_workbooks, reference_workbooks = split_corpus(pge_corpus, 0.15, "timestamp")
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=2, seed=0)
    return reference_workbooks[:6], cases[:10]


def _config(kind: str) -> AutoFormulaConfig:
    return AutoFormulaConfig(sheet_index_kind=kind, formula_index_kind=kind)


def _assert_matches_prediction(response, prediction):
    """A served response must carry exactly the predictor's output."""
    if prediction is None:
        assert response.formula is None
        assert not response.accepted
        assert response.abstain_reason == AbstainReason.NO_CONFIDENT_MATCH
    else:
        assert response.accepted
        assert response.abstain_reason is None
        assert response.formula == prediction.formula
        assert response.confidence == prediction.confidence
        assert response.provenance == prediction.details


@pytest.mark.parametrize("kind", ["exact", "lsh", "ivf"])
class TestIncrementalParity:
    """Mutated workspaces must predict bit-identically to a fresh fit."""

    def test_workspace_built_by_adds_matches_fresh_fit(
        self, trained_encoder, workload, kind
    ):
        references, cases = workload
        fresh = AutoFormula(trained_encoder, _config(kind))
        fresh.fit(references)

        service = FormulaService(trained_encoder, _config(kind))
        workspace = service.create_workspace("incremental")
        for workbook in references:
            workspace.add_workbook(workbook)
        assert workspace.predictor.n_reference_sheets == fresh.n_reference_sheets
        assert workspace.predictor.n_reference_formulas == fresh.n_reference_formulas

        for case in cases:
            expected = fresh.predict(case.target_sheet, case.target_cell)
            response = workspace.recommend(
                RecommendationRequest(case.target_sheet, case.target_cell)
            )
            _assert_matches_prediction(response, expected)

    def test_remove_then_re_add_matches_fresh_fit(self, trained_encoder, workload, kind):
        references, cases = workload
        service = FormulaService(trained_encoder, _config(kind))
        workspace = service.create_workspace("churn", workbooks=references)
        # Warm the online path so lazily-trained index state exists before
        # the mutation, the hardest case for parity.
        workspace.serve_batch(
            [RecommendationRequest(case.target_sheet, case.target_cell) for case in cases]
        )

        churned = workspace.remove_workbook(references[0].name)
        workspace.add_workbook(churned)

        # The equivalent corpus: re-added workbooks go to the end.
        fresh = AutoFormula(trained_encoder, _config(kind))
        fresh.fit(references[1:] + [references[0]])

        for case in cases:
            expected = fresh.predict(case.target_sheet, case.target_cell)
            response = workspace.recommend(
                RecommendationRequest(case.target_sheet, case.target_cell)
            )
            _assert_matches_prediction(response, expected)

    def test_removal_until_empty_then_rebuild(self, trained_encoder, workload, kind):
        references, cases = workload
        service = FormulaService(trained_encoder, _config(kind))
        workspace = service.create_workspace("drain", workbooks=references)
        for workbook in list(references):
            workspace.remove_workbook(workbook.name)
        assert len(workspace) == 0
        assert workspace.predictor.n_reference_sheets == 0
        response = workspace.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        assert response.abstain_reason == AbstainReason.EMPTY_CORPUS

        workspace.add_workbooks(references)
        fresh = AutoFormula(trained_encoder, _config(kind))
        fresh.fit(references)
        for case in cases[:4]:
            expected = fresh.predict(case.target_sheet, case.target_cell)
            response = workspace.recommend(
                RecommendationRequest(case.target_sheet, case.target_cell)
            )
            _assert_matches_prediction(response, expected)


class TestServeBatch:
    def test_batch_matches_sequential_serving(self, trained_encoder, workload):
        references, cases = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("batch", workbooks=references)

        # Interleave sheets so grouping and reassembly are both exercised.
        interleaved = sorted(range(len(cases)), key=lambda position: position % 3)
        requests = [
            RecommendationRequest(
                cases[position].target_sheet,
                cases[position].target_cell,
                request_id=str(position),
            )
            for position in interleaved
        ]
        batched = workspace.serve_batch(requests)
        assert [response.request.request_id for response in batched] == [
            str(position) for position in interleaved
        ]
        for request, from_batch in zip(requests, batched):
            single = workspace.recommend(request)
            assert from_batch.formula == single.formula
            assert from_batch.confidence == single.confidence
            assert from_batch.provenance == single.provenance
            assert from_batch.abstain_reason == single.abstain_reason

    def test_latency_recorded_per_request(self, trained_encoder, workload):
        references, cases = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("timed", workbooks=references)
        requests = [
            RecommendationRequest(case.target_sheet, case.target_cell) for case in cases
        ]
        responses = workspace.serve_batch(requests)
        assert len(workspace.latency) == len(requests)
        assert all(response.latency_seconds >= 0.0 for response in responses)
        summary = workspace.latency.summary()
        assert summary["count"] == float(len(requests))
        assert summary["p95_seconds"] >= summary["p50_seconds"] >= 0.0

    def test_empty_request_list(self, trained_encoder, workload):
        references, __ = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("empty-batch", workbooks=references)
        assert workspace.serve_batch([]) == []


class TestAbstention:
    def test_empty_corpus_reason(self, trained_encoder, workload):
        __, cases = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("empty")
        response = workspace.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        assert not response.accepted
        assert response.formula is None
        assert response.confidence == 0.0
        assert response.abstain_reason == AbstainReason.EMPTY_CORPUS

    def test_no_confident_match_reason(self, trained_encoder, workload):
        references, cases = workload
        config = AutoFormulaConfig(acceptance_threshold=1e-9)
        service = FormulaService(trained_encoder, config)
        workspace = service.create_workspace("strict", workbooks=references)
        responses = workspace.serve_batch(
            [RecommendationRequest(case.target_sheet, case.target_cell) for case in cases]
        )
        assert all(not response.accepted for response in responses)
        assert all(
            response.abstain_reason == AbstainReason.NO_CONFIDENT_MATCH
            for response in responses
        )


class TestTypes:
    def test_request_normalizes_a1_strings(self, workload):
        __, cases = workload
        request = RecommendationRequest(cases[0].target_sheet, "D41")
        assert request.cell == CellAddress.from_a1("D41")

    def test_request_and_response_are_frozen(self, workload):
        __, cases = workload
        request = RecommendationRequest(cases[0].target_sheet, CellAddress(1, 1))
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.cell = CellAddress(0, 0)
        response = RecommendationResponse(
            request=request, workspace="w", method="m", formula=None, confidence=0.0
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            response.formula = "=SUM(A1:A2)"

    def test_accepted_property(self, workload):
        __, cases = workload
        request = RecommendationRequest(cases[0].target_sheet, CellAddress(1, 1))
        accepted = RecommendationResponse(
            request=request, workspace="w", method="m", formula="=A1", confidence=0.5
        )
        rejected = RecommendationResponse(
            request=request, workspace="w", method="m", formula=None, confidence=0.0,
            abstain_reason=AbstainReason.NO_CONFIDENT_MATCH,
        )
        assert accepted.accepted and not rejected.accepted


class TestFacade:
    def test_workspace_registry(self, trained_encoder):
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("alpha")
        assert service.workspace("alpha") is workspace
        assert service["alpha"] is workspace
        assert "alpha" in service
        assert service.workspace_names() == ["alpha"]
        assert len(service) == 1
        with pytest.raises(ValueError):
            service.create_workspace("alpha")
        dropped = service.drop_workspace("alpha")
        assert dropped is workspace
        assert "alpha" not in service
        with pytest.raises(KeyError):
            service.workspace("alpha")

    def test_default_predictor_is_autoformula(self, trained_encoder):
        config = AutoFormulaConfig(top_k_sheets=2)
        service = FormulaService(trained_encoder, config)
        workspace = service.create_workspace("default")
        assert isinstance(workspace.predictor, AutoFormula)
        assert workspace.predictor.config is config

    def test_predictor_required_without_encoder(self):
        service = FormulaService()
        with pytest.raises(ValueError):
            service.create_workspace("no-encoder")
        workspace = service.create_workspace("baseline", predictor=WeakSupervisionBaseline())
        assert isinstance(workspace.predictor, WeakSupervisionBaseline)

    def test_duplicate_workbook_rejected(self, trained_encoder, workload):
        references, __ = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("dup", workbooks=references[:1])
        with pytest.raises(ValueError):
            workspace.add_workbook(references[0])
        with pytest.raises(KeyError):
            workspace.remove_workbook("no-such-workbook")

    def test_bare_sheets_rejected(self, trained_encoder, workload):
        # The predictor API accepts bare sheets, but the workspace corpus is
        # workbook-keyed: a bare sheet would be indexed under "<sheet>" and
        # registered under its own name, making it irremovable.
        references, __ = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("sheets")
        with pytest.raises(TypeError):
            workspace.add_workbook(references[0].sheets[0])
        assert len(workspace) == 0

    def test_zero_sheet_workbook_round_trip(self, trained_encoder, workload):
        from repro.sheet import Workbook as _Workbook

        references, __ = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("hollow", workbooks=references[:1])
        workspace.add_workbook(_Workbook(name="empty.xlsx"))
        assert "empty.xlsx" in workspace
        removed = workspace.remove_workbook("empty.xlsx")
        assert removed.name == "empty.xlsx"
        assert "empty.xlsx" not in workspace

    def test_failed_mutation_leaves_registry_consistent(self, workload):
        references, __ = workload

        class _ExplodingFit(WeakSupervisionBaseline):
            def fit(self, reference_workbooks):
                raise RuntimeError("boom")

        workspace = Workspace("failing", _ExplodingFit())
        with pytest.raises(RuntimeError):
            workspace.add_workbook(references[0])
        assert len(workspace) == 0
        assert references[0].name not in workspace


class TestEditCell:
    """The live-edit surface: contracts shared by plain and sharded."""

    @pytest.fixture()
    def edit_target(self, workload):
        reference_workbooks, __ = workload
        workbook = reference_workbooks[0]
        sheet = next(s for s in workbook if s.n_formulas())
        address = next(
            addr
            for addr, cell in sheet.cells()
            if not cell.has_formula
            and isinstance(cell.value, (int, float))
            and not isinstance(cell.value, bool)
        )
        return workbook, sheet, address

    def _workspaces(self, trained_encoder, workbooks):
        plain = Workspace("t", AutoFormula(trained_encoder, _config("exact")))
        plain.add_workbooks([wb.copy() for wb in workbooks])
        sharded = ShardedWorkspace(
            "t", lambda: AutoFormula(trained_encoder, _config("exact")), 3
        )
        sharded.add_workbooks([wb.copy() for wb in workbooks])
        return plain, sharded

    def test_requires_exactly_one_operand(self, trained_encoder, workload, edit_target):
        reference_workbooks, __ = workload
        workbook, sheet, address = edit_target
        for workspace in self._workspaces(trained_encoder, reference_workbooks[:2]):
            with pytest.raises(ValueError, match="value=.*formula="):
                workspace.edit_cell(workbook.name, sheet.name, address)
            with pytest.raises(ValueError, match="not both"):
                workspace.edit_cell(
                    workbook.name, sheet.name, address, value=1.0, formula="=1"
                )
            with pytest.raises(KeyError):
                workspace.edit_cell("ghost.xlsx", sheet.name, address, value=1.0)
            with pytest.raises(KeyError):
                workspace.edit_cell(workbook.name, "ghost sheet", address, value=1.0)

    def test_edit_applies_and_moves_workbook_to_corpus_end(
        self, trained_encoder, workload, edit_target
    ):
        reference_workbooks, __ = workload
        workbook, sheet, address = edit_target
        plain, sharded = self._workspaces(trained_encoder, reference_workbooks[:3])
        for workspace in (plain, sharded):
            report = workspace.edit_cell(workbook.name, sheet.name, address, value=77.25)
            assert report.total >= 0
            edited = next(wb for wb in workspace.workbooks() if wb.name == workbook.name)
            assert edited.get_sheet(sheet.name).get(address).value == 77.25
            assert workspace.workbook_names[-1] == workbook.name
        sharded.close()


class _FaultInjectingAutoFormula(AutoFormula):
    """AutoFormula whose next add/remove can be made to explode."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_next_add = False
        self.fail_next_remove = False

    def add_workbooks(self, workbooks):
        if self.fail_next_add:
            self.fail_next_add = False
            raise RuntimeError("injected add failure")
        return super().add_workbooks(workbooks)

    def remove_workbook(self, workbook_name):
        if self.fail_next_remove:
            self.fail_next_remove = False
            raise RuntimeError("injected remove failure")
        return super().remove_workbook(workbook_name)


class TestShardedMutationFailure:
    """Shard mutation failures must leave a consistent, retryable corpus."""

    def _sharded(self, trained_encoder):
        return ShardedWorkspace(
            "faulty",
            lambda: _FaultInjectingAutoFormula(trained_encoder, AutoFormulaConfig()),
            2,
        )

    def test_failed_add_leaves_corpus_unchanged(self, trained_encoder, workload):
        from repro.testing import assert_sharded_consistent

        references, cases = workload
        workspace = self._sharded(trained_encoder)
        workspace.add_workbooks(references[:2])
        before_names = workspace.workbook_names
        before_sizes = workspace.shard_sizes()
        baseline = workspace.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )

        shard = next(
            index
            for index, size in enumerate(workspace.shard_sizes())
            if size or index == 0
        )
        workspace.predictors[shard].fail_next_add = True
        with pytest.raises(RuntimeError, match="injected add failure"):
            workspace.add_workbooks(references[2:4])

        assert workspace.workbook_names == before_names
        assert workspace.shard_sizes() == before_sizes
        assert_sharded_consistent(workspace)
        after = workspace.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        assert after.formula == baseline.formula
        # And the add is retryable once the fault clears.
        workspace.add_workbooks(references[2:4])
        assert references[2].name in workspace and references[3].name in workspace
        assert_sharded_consistent(workspace)
        workspace.close()

    def test_failed_remove_keeps_workbook_registered_and_is_retryable(
        self, trained_encoder, workload
    ):
        from repro.sheet import Sheet, Workbook
        from repro.testing import assert_sharded_consistent

        references, __ = workload
        workspace = self._sharded(trained_encoder)
        workspace.add_workbooks(references[:2])
        # A workbook guaranteed to span both shards, so one shard can
        # succeed before the other one fails.
        spanning = Workbook(name="spanning.xlsx")
        for index in range(8):
            sheet = spanning.add_sheet(Sheet(f"S{index}"))
            sheet.set("A1", float(index))
        workspace.add_workbook(spanning)
        placement_shards = {
            shard for shard, __ in workspace._placements["spanning.xlsx"]
        }
        assert placement_shards == {0, 1}, "placement did not span both shards"

        workspace.predictors[max(placement_shards)].fail_next_remove = True
        with pytest.raises(RuntimeError, match="injected remove failure"):
            workspace.remove_workbook("spanning.xlsx")
        assert "spanning.xlsx" in workspace  # still registered

        removed = workspace.remove_workbook("spanning.xlsx")  # retry succeeds
        assert removed is spanning
        assert "spanning.xlsx" not in workspace
        assert_sharded_consistent(workspace)
        workspace.close()


class TestBaselineWorkspace:
    """Non-incremental predictors are refit on every corpus mutation."""

    def test_mutation_refits_baseline(self, workload):
        references, cases = workload
        service = FormulaService()
        workspace = service.create_workspace(
            "weak", predictor=WeakSupervisionBaseline(), workbooks=references[:3]
        )
        workspace.add_workbook(references[3])
        workspace.remove_workbook(references[0].name)
        assert workspace.workbook_names == [
            workbook.name for workbook in references[1:4]
        ]
        response = workspace.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        assert isinstance(response, RecommendationResponse)
        assert response.method == workspace.predictor.name


class TestAdapters:
    def test_evaluate_matches_runner(self, trained_encoder, workload):
        references, cases = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("eval", workbooks=references)
        run = workspace.evaluate(cases, corpus_name="PGE")

        fresh = AutoFormula(trained_encoder, AutoFormulaConfig())
        expected = run_method_on_cases(fresh, references, cases, corpus_name="PGE")
        assert run.metrics == expected.metrics
        assert run.corpus_name == "PGE"

    def test_autofill_and_error_detection_adapters(self, trained_encoder, workload):
        references, cases = workload
        service = FormulaService(trained_encoder)
        workspace = service.create_workspace("ext", workbooks=references)

        suggestion = workspace.suggest_value(cases[0].target_sheet, cases[0].target_cell)
        assert suggestion is None or suggestion.confidence >= 0.0
        anomalies = workspace.audit_sheet(references[0][references[0].sheet_names[0]])
        assert isinstance(anomalies, list)

        # Extensions are refit lazily after corpus mutation.
        autofill_before = workspace.autofill()
        assert autofill_before.n_reference_sheets == sum(
            len(workbook) for workbook in workspace.workbooks()
        )
        workspace.remove_workbook(references[-1].name)
        autofill_after = workspace.autofill()
        assert autofill_after is autofill_before  # same instance, refitted
        assert autofill_after.n_reference_sheets == sum(
            len(workbook) for workbook in workspace.workbooks()
        )

    def test_extensions_need_encoder(self, workload):
        references, cases = workload
        workspace = Workspace("bare", WeakSupervisionBaseline())
        workspace.add_workbooks(references[:2])
        with pytest.raises(RuntimeError):
            workspace.autofill()
        with pytest.raises(RuntimeError):
            workspace.audit_sheet(cases[0].target_sheet)
