"""Tests for the ANN index substrate."""

import numpy as np
import pytest

from repro.ann import ExactIndex, IVFIndex, LSHIndex, create_index


def _random_vectors(n: int, dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


@pytest.fixture(params=["exact", "lsh", "ivf"])
def index_factory(request):
    kind = request.param

    def factory(dimension: int):
        return create_index(kind, dimension)

    factory.kind = kind
    return factory


class TestIndexContract:
    def test_empty_index_returns_nothing(self, index_factory):
        index = index_factory(8)
        assert index.search(np.zeros(8, dtype=np.float32), k=3) == []

    def test_self_query_returns_self(self, index_factory):
        index = index_factory(16)
        vectors = _random_vectors(50, 16)
        index.add_batch(list(range(50)), vectors)
        for position in [0, 10, 49]:
            hits = index.search(vectors[position], k=1)
            assert hits[0].key == position
            assert hits[0].distance == pytest.approx(0.0, abs=1e-5)

    def test_k_limits_results(self, index_factory):
        index = index_factory(8)
        vectors = _random_vectors(20, 8)
        index.add_batch(list(range(20)), vectors)
        assert len(index.search(vectors[0], k=5)) == 5
        assert len(index.search(vectors[0], k=100)) <= 20

    def test_results_sorted_by_distance(self, index_factory):
        index = index_factory(8)
        vectors = _random_vectors(30, 8)
        index.add_batch(list(range(30)), vectors)
        hits = index.search(vectors[3], k=10)
        distances = [hit.distance for hit in hits]
        assert distances == sorted(distances)

    def test_dimension_mismatch_rejected(self, index_factory):
        index = index_factory(8)
        with pytest.raises(ValueError):
            index.add("x", np.zeros(9, dtype=np.float32))
        index.add("x", np.zeros(8, dtype=np.float32))
        with pytest.raises(ValueError):
            index.search(np.zeros(9, dtype=np.float32), k=1)

    def test_arbitrary_keys(self, index_factory):
        index = index_factory(4)
        index.add(("sheet", 3), np.ones(4, dtype=np.float32))
        hits = index.search(np.ones(4, dtype=np.float32), k=1)
        assert hits[0].key == ("sheet", 3)

    def test_len(self, index_factory):
        index = index_factory(4)
        index.add_batch(["a", "b"], _random_vectors(2, 4))
        assert len(index) == 2


class TestApproximateRecall:
    @staticmethod
    def _clustered_vectors(n: int, dim: int, n_clusters: int = 12, seed: int = 1) -> np.ndarray:
        """Clustered vectors, the regime embedding corpora actually live in."""
        rng = np.random.default_rng(seed)
        centroids = rng.standard_normal((n_clusters, dim)).astype(np.float32)
        assignment = rng.integers(0, n_clusters, size=n)
        vectors = centroids[assignment] + 0.15 * rng.standard_normal((n, dim)).astype(np.float32)
        return (vectors / np.linalg.norm(vectors, axis=1, keepdims=True)).astype(np.float32)

    def _recall_at_5(self, approximate_index, vectors: np.ndarray, n_queries: int = 30) -> float:
        exact = ExactIndex(vectors.shape[1])
        exact.add_batch(list(range(len(vectors))), vectors)
        approximate_index.add_batch(list(range(len(vectors))), vectors)
        hits = 0
        for query in vectors[:n_queries]:
            truth = {hit.key for hit in exact.search(query, k=5)}
            approx = {hit.key for hit in approximate_index.search(query, k=5)}
            hits += len(truth & approx)
        return hits / (n_queries * 5)

    def test_lsh_recall_against_exact(self):
        vectors = self._clustered_vectors(400, 32)
        assert self._recall_at_5(LSHIndex(32, n_tables=12, n_bits=8, seed=0), vectors) > 0.6

    def test_ivf_recall_against_exact(self):
        vectors = self._clustered_vectors(400, 32)
        assert self._recall_at_5(IVFIndex(32, n_clusters=16, n_probe=4, seed=0), vectors) > 0.6

    def test_small_indexes_fall_back_to_exact(self):
        dim = 16
        vectors = _random_vectors(5, dim)
        for index in (LSHIndex(dim), IVFIndex(dim)):
            index.add_batch(list(range(5)), vectors)
            hits = index.search(vectors[2], k=1)
            assert hits[0].key == 2

    def test_ivf_rebuilds_after_additions(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=4, n_probe=2)
        first = _random_vectors(40, dim, seed=3)
        index.add_batch(list(range(40)), first)
        index.search(first[0], k=1)  # trains the index
        extra = _random_vectors(10, dim, seed=4)
        index.add_batch(list(range(40, 50)), extra)
        hits = index.search(extra[5], k=1)
        assert hits[0].key == 45


class TestRandomCorpusRecall:
    """Recall-vs-exact parity on *uniform random* corpora (no cluster
    structure to help the coarse quantizer or the hash tables)."""

    def _recall_at_5(self, approximate_index, vectors: np.ndarray, n_queries: int = 40) -> float:
        exact = ExactIndex(vectors.shape[1])
        exact.add_batch(list(range(len(vectors))), vectors)
        approximate_index.add_batch(list(range(len(vectors))), vectors)
        hits = 0
        for query in vectors[:n_queries]:
            truth = {hit.key for hit in exact.search(query, k=5)}
            approx = {hit.key for hit in approximate_index.search(query, k=5)}
            hits += len(truth & approx)
        return hits / (n_queries * 5)

    def test_lsh_recall_on_random_corpus(self):
        vectors = _random_vectors(300, 24, seed=11)
        assert self._recall_at_5(LSHIndex(24, n_tables=12, n_bits=6, seed=1), vectors) > 0.5

    def test_ivf_recall_on_random_corpus(self):
        vectors = _random_vectors(300, 24, seed=11)
        assert self._recall_at_5(IVFIndex(24, n_clusters=12, n_probe=5, seed=1), vectors) > 0.6


class TestExactScanFallback:
    """Approximate indexes must fall back to a full scan when their
    candidate pools cannot satisfy ``k``."""

    @pytest.mark.parametrize("kind", ["lsh", "ivf"])
    def test_k_larger_than_candidate_pool_matches_exact(self, kind):
        dim = 16
        vectors = _random_vectors(30, dim, seed=2)
        exact = ExactIndex(dim)
        exact.add_batch(list(range(30)), vectors)
        index = create_index(kind, dim)
        index.add_batch(list(range(30)), vectors)
        for query in vectors[:5]:
            truth = [hit.key for hit in exact.search(query, k=25)]
            approx = [hit.key for hit in index.search(query, k=25)]
            assert approx == truth

    def test_ivf_below_training_threshold_is_exact(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=8, n_probe=1)
        vectors = _random_vectors(10, dim, seed=5)  # < 2 * n_clusters
        index.add_batch(list(range(10)), vectors)
        exact = ExactIndex(dim)
        exact.add_batch(list(range(10)), vectors)
        for query in vectors:
            assert [h.key for h in index.search(query, k=3)] == [
                h.key for h in exact.search(query, k=3)
            ]


class TestLSHDeterminism:
    def test_tied_candidates_rank_deterministically(self):
        """Duplicate vectors produce exact distance ties; the winner must be
        the same on every run and every rebuild (lowest position first)."""
        dim = 16
        base = _random_vectors(20, dim, seed=7)
        vectors = np.concatenate([base, base, base])  # every vector x3
        keys = list(range(len(vectors)))

        def build():
            index = LSHIndex(dim, n_tables=6, n_bits=4, seed=3)
            index.add_batch(keys, vectors)
            return index

        first = build()
        second = build()
        for query in base[:10]:
            hits_first = [(h.key, round(h.distance, 6)) for h in first.search(query, k=4)]
            hits_second = [(h.key, round(h.distance, 6)) for h in second.search(query, k=4)]
            assert hits_first == hits_second
        # among exact ties the lowest stored position wins
        hits = first.search(base[0], k=3)
        tied = [hit.key for hit in hits if hit.distance == hits[0].distance]
        assert tied == sorted(tied)

    def test_candidate_positions_sorted(self):
        index = LSHIndex(8, n_tables=4, n_bits=2, seed=0)
        vectors = _random_vectors(60, 8, seed=9)
        index.add_batch(list(range(60)), vectors)
        candidates = index._candidates(vectors[0], k=1)
        if candidates is not None:
            assert np.all(np.diff(candidates) > 0)


class TestIVFIncrementalAdd:
    def test_adds_assign_to_existing_centroids_without_retraining(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=4, n_probe=2)
        first = _random_vectors(40, dim, seed=3)
        index.add_batch(list(range(40)), first)
        index.search(first[0], k=1)  # trains the quantizer
        trained_size = index._trained_size
        centroids = index._centroids.copy()

        extra = _random_vectors(10, dim, seed=4)
        index.add_batch(list(range(40, 50)), extra)
        hits = index.search(extra[5], k=1)
        assert hits[0].key == 45
        # still the same quantizer: additions were incremental
        assert index._trained_size == trained_size
        assert np.array_equal(index._centroids, centroids)

    def test_retrains_after_doubling(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=4, n_probe=2, retrain_growth_factor=2.0)
        first = _random_vectors(40, dim, seed=3)
        index.add_batch(list(range(40)), first)
        index.search(first[0], k=1)
        extra = _random_vectors(40, dim, seed=4)
        index.add_batch(list(range(40, 80)), extra)
        index.search(extra[0], k=1)
        assert index._trained_size == 80

    def test_incremental_index_still_finds_new_vectors(self):
        dim = 16
        index = IVFIndex(dim, n_clusters=4, n_probe=2)
        vectors = _random_vectors(60, dim, seed=6)
        index.add_batch(list(range(40)), vectors[:40])
        index.search(vectors[0], k=1)  # train
        for step, position in enumerate(range(40, 60)):
            index.add(position, vectors[position])
            assert index.search(vectors[position], k=1)[0].key == position


class TestBatchedSearch:
    @pytest.fixture(params=["exact", "lsh", "ivf"])
    def filled_index(self, request):
        vectors = _random_vectors(80, 16, seed=8)
        index = create_index(request.param, 16)
        index.add_batch(list(range(80)), vectors)
        return index, vectors

    def test_search_batch_matches_sequential_search(self, filled_index):
        index, vectors = filled_index
        queries = vectors[:10]
        batched = index.search_batch(queries, k=3)
        for query, hits in zip(queries, batched):
            assert [(h.key, pytest.approx(h.distance, abs=1e-5)) for h in hits] == [
                (h.key, pytest.approx(h.distance, abs=1e-5)) for h in index.search(query, k=3)
            ]

    def test_search_batch_on_empty_index(self):
        index = ExactIndex(4)
        assert index.search_batch(np.zeros((3, 4), dtype=np.float32), k=2) == [[], [], []]

    def test_positions_restrict_the_candidate_pool(self):
        vectors = _random_vectors(50, 8, seed=10)
        index = ExactIndex(8)
        index.add_batch(list(range(50)), vectors)
        pool = np.array([3, 7, 11, 19], dtype=np.int64)
        hits = index.search_batch(vectors[:5], k=2, positions=pool)
        for per_query in hits:
            assert all(hit.key in {3, 7, 11, 19} for hit in per_query)
        # the nearest pool member wins, even though closer vectors exist
        exact_in_pool = min(
            ((int(p), float(np.sum((vectors[p] - vectors[0]) ** 2))) for p in pool),
            key=lambda item: item[1],
        )
        assert hits[0][0].key == exact_in_pool[0]

    def test_contiguous_store_grows(self):
        index = ExactIndex(4)
        for position in range(100):
            index.add(position, np.full(4, position, dtype=np.float32))
        assert len(index) == 100
        assert index.vectors.shape == (100, 4)
        assert np.array_equal(index.vectors[42], np.full(4, 42, dtype=np.float32))

    def test_vectors_view_is_read_only(self):
        index = ExactIndex(4)
        index.add("a", np.ones(4, dtype=np.float32))
        with pytest.raises(ValueError):
            index.vectors[0, 0] = 5.0

    def test_key_count_mismatch_rejected(self):
        index = ExactIndex(4)
        with pytest.raises(ValueError):
            index.add_batch(["a", "b"], np.ones((3, 4), dtype=np.float32))


class TestRemoveBatch:
    """Tombstone-based removal: excluded from every search path, compacted
    once the dead fraction grows, bit-identical to a freshly built index."""

    @pytest.fixture(params=["exact", "lsh", "ivf"])
    def kind(self, request):
        return request.param

    def test_removed_vectors_never_returned(self, kind):
        vectors = _random_vectors(40, 16, seed=0)
        index = create_index(kind, 16)
        index.add_batch(list(range(40)), vectors)
        index.search(vectors[0], k=1)  # trains IVF, if applicable
        index.remove_batch([3, 7])
        assert len(index) == 38
        assert index.n_tombstones == 2
        for removed in (3, 7):
            hits = index.search(vectors[removed], k=40)
            assert removed not in {hit.key for hit in hits}

    def test_matches_fresh_index_over_survivors(self, kind):
        """After removal (and the IVF retrain it forces), results must be
        identical to an index freshly built from the surviving vectors."""
        vectors = _random_vectors(60, 16, seed=1)
        index = create_index(kind, 16)
        index.add_batch(list(range(60)), vectors)
        index.search(vectors[0], k=1)
        index.remove_batch(list(range(0, 60, 2)))  # evens out, 50% (no compaction)
        assert index.n_tombstones == 30

        fresh = create_index(kind, 16)
        fresh.add_batch(list(range(1, 60, 2)), vectors[1::2])
        for query in vectors[:10]:
            got = [(hit.key, round(hit.distance, 6)) for hit in index.search(query, k=5)]
            expected = [
                (hit.key, round(hit.distance, 6)) for hit in fresh.search(query, k=5)
            ]
            assert got == expected

    def test_compaction_returns_remap(self, kind):
        vectors = _random_vectors(30, 8, seed=2)
        index = create_index(kind, 8)
        index.add_batch(list(range(30)), vectors)
        removed = list(range(20))
        remap = index.remove_batch(removed)  # 20/30 > 0.5 -> compaction
        assert remap is not None
        assert index.n_tombstones == 0
        assert len(index) == 10
        assert np.all(remap[:20] == -1)
        assert np.array_equal(remap[20:], np.arange(10))
        # searches keep working against the renumbered store
        for position in range(20, 30):
            assert index.search(vectors[position], k=1)[0].key == position
        # and the remapped positions address the same vectors
        hits = index.search_batch(
            vectors[25:26], k=1, positions=remap[np.arange(20, 30)]
        )
        assert hits[0][0].key == 25

    def test_add_after_remove(self, kind):
        vectors = _random_vectors(50, 8, seed=3)
        index = create_index(kind, 8)
        index.add_batch(list(range(40)), vectors[:40])
        index.remove_batch([0, 1, 2])
        index.add_batch(list(range(40, 50)), vectors[40:])
        assert len(index) == 47
        for position in range(40, 50):
            assert index.search(vectors[position], k=1)[0].key == position

    def test_positions_pool_excludes_tombstones(self, kind):
        vectors = _random_vectors(20, 8, seed=4)
        index = create_index(kind, 8)
        index.add_batch(list(range(20)), vectors)
        index.remove_batch([5])
        hits = index.search_batch(
            vectors[5:6], k=3, positions=np.array([4, 5, 6], dtype=np.int64)
        )
        assert {hit.key for hit in hits[0]} == {4, 6}

    def test_invalid_removals_rejected(self, kind):
        vectors = _random_vectors(10, 8, seed=5)
        index = create_index(kind, 8)
        index.add_batch(list(range(10)), vectors)
        with pytest.raises(IndexError):
            index.remove_batch([10])
        with pytest.raises(ValueError):
            index.remove_batch([2, 2])
        index.remove_batch([2])
        with pytest.raises(ValueError):
            index.remove_batch([2])
        assert index.remove_batch([]) is None

    def test_remove_everything(self, kind):
        vectors = _random_vectors(10, 8, seed=6)
        index = create_index(kind, 8)
        index.add_batch(list(range(10)), vectors)
        index.remove_batch(list(range(10)))
        assert len(index) == 0
        assert index.search(vectors[0], k=3) == []

    def test_ivf_retrains_on_surviving_corpus_after_removal(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=4, n_probe=2)
        vectors = _random_vectors(40, dim, seed=7)
        index.add_batch(list(range(40)), vectors)
        index.search(vectors[0], k=1)  # train
        assert index._centroids is not None
        index.remove_batch([0])
        assert index._centroids is None  # quantizer invalidated
        assert index.search(vectors[1], k=1)[0].key == 1  # retrains lazily


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(create_index("exact", 4), ExactIndex)
        assert isinstance(create_index("lsh", 4), LSHIndex)
        assert isinstance(create_index("ivf", 4), IVFIndex)

    def test_known_kinds_exported(self):
        from repro.ann import KNOWN_INDEX_KINDS

        assert {"exact", "lsh", "ivf"} <= KNOWN_INDEX_KINDS
        for kind in KNOWN_INDEX_KINDS:
            assert create_index(kind, 4) is not None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            create_index("hnsw", 4)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            ExactIndex(0)
