"""Tests for the ANN index substrate."""

import numpy as np
import pytest

from repro.ann import ExactIndex, IVFIndex, LSHIndex, create_index


def _random_vectors(n: int, dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


@pytest.fixture(params=["exact", "lsh", "ivf"])
def index_factory(request):
    kind = request.param

    def factory(dimension: int):
        return create_index(kind, dimension)

    factory.kind = kind
    return factory


class TestIndexContract:
    def test_empty_index_returns_nothing(self, index_factory):
        index = index_factory(8)
        assert index.search(np.zeros(8, dtype=np.float32), k=3) == []

    def test_self_query_returns_self(self, index_factory):
        index = index_factory(16)
        vectors = _random_vectors(50, 16)
        index.add_batch(list(range(50)), vectors)
        for position in [0, 10, 49]:
            hits = index.search(vectors[position], k=1)
            assert hits[0].key == position
            assert hits[0].distance == pytest.approx(0.0, abs=1e-5)

    def test_k_limits_results(self, index_factory):
        index = index_factory(8)
        vectors = _random_vectors(20, 8)
        index.add_batch(list(range(20)), vectors)
        assert len(index.search(vectors[0], k=5)) == 5
        assert len(index.search(vectors[0], k=100)) <= 20

    def test_results_sorted_by_distance(self, index_factory):
        index = index_factory(8)
        vectors = _random_vectors(30, 8)
        index.add_batch(list(range(30)), vectors)
        hits = index.search(vectors[3], k=10)
        distances = [hit.distance for hit in hits]
        assert distances == sorted(distances)

    def test_dimension_mismatch_rejected(self, index_factory):
        index = index_factory(8)
        with pytest.raises(ValueError):
            index.add("x", np.zeros(9, dtype=np.float32))
        index.add("x", np.zeros(8, dtype=np.float32))
        with pytest.raises(ValueError):
            index.search(np.zeros(9, dtype=np.float32), k=1)

    def test_arbitrary_keys(self, index_factory):
        index = index_factory(4)
        index.add(("sheet", 3), np.ones(4, dtype=np.float32))
        hits = index.search(np.ones(4, dtype=np.float32), k=1)
        assert hits[0].key == ("sheet", 3)

    def test_len(self, index_factory):
        index = index_factory(4)
        index.add_batch(["a", "b"], _random_vectors(2, 4))
        assert len(index) == 2


class TestApproximateRecall:
    @staticmethod
    def _clustered_vectors(n: int, dim: int, n_clusters: int = 12, seed: int = 1) -> np.ndarray:
        """Clustered vectors, the regime embedding corpora actually live in."""
        rng = np.random.default_rng(seed)
        centroids = rng.standard_normal((n_clusters, dim)).astype(np.float32)
        assignment = rng.integers(0, n_clusters, size=n)
        vectors = centroids[assignment] + 0.15 * rng.standard_normal((n, dim)).astype(np.float32)
        return (vectors / np.linalg.norm(vectors, axis=1, keepdims=True)).astype(np.float32)

    def _recall_at_5(self, approximate_index, vectors: np.ndarray, n_queries: int = 30) -> float:
        exact = ExactIndex(vectors.shape[1])
        exact.add_batch(list(range(len(vectors))), vectors)
        approximate_index.add_batch(list(range(len(vectors))), vectors)
        hits = 0
        for query in vectors[:n_queries]:
            truth = {hit.key for hit in exact.search(query, k=5)}
            approx = {hit.key for hit in approximate_index.search(query, k=5)}
            hits += len(truth & approx)
        return hits / (n_queries * 5)

    def test_lsh_recall_against_exact(self):
        vectors = self._clustered_vectors(400, 32)
        assert self._recall_at_5(LSHIndex(32, n_tables=12, n_bits=8, seed=0), vectors) > 0.6

    def test_ivf_recall_against_exact(self):
        vectors = self._clustered_vectors(400, 32)
        assert self._recall_at_5(IVFIndex(32, n_clusters=16, n_probe=4, seed=0), vectors) > 0.6

    def test_small_indexes_fall_back_to_exact(self):
        dim = 16
        vectors = _random_vectors(5, dim)
        for index in (LSHIndex(dim), IVFIndex(dim)):
            index.add_batch(list(range(5)), vectors)
            hits = index.search(vectors[2], k=1)
            assert hits[0].key == 2

    def test_ivf_rebuilds_after_additions(self):
        dim = 8
        index = IVFIndex(dim, n_clusters=4, n_probe=2)
        first = _random_vectors(40, dim, seed=3)
        index.add_batch(list(range(40)), first)
        index.search(first[0], k=1)  # trains the index
        extra = _random_vectors(10, dim, seed=4)
        index.add_batch(list(range(40, 50)), extra)
        hits = index.search(extra[5], k=1)
        assert hits[0].key == 45


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(create_index("exact", 4), ExactIndex)
        assert isinstance(create_index("lsh", 4), LSHIndex)
        assert isinstance(create_index("ivf", 4), IVFIndex)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            create_index("hnsw", 4)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            ExactIndex(0)
