"""Tests for the formula evaluator and the built-in function library."""

import datetime

import pytest

from repro.formula import EvaluationError, FormulaEvaluator
from repro.formula.functions import FunctionError, criterion_matcher
from repro.sheet import Sheet


@pytest.fixture()
def data_sheet() -> Sheet:
    sheet = Sheet("Data")
    values = [10, 20, 30, 40, 50]
    for index, value in enumerate(values):
        sheet.set((index, 0), value)            # A1:A5 numbers
        sheet.set((index, 1), f"item{index}")   # B1:B5 text
    sheet.set("C1", "North")
    sheet.set("C2", "South")
    sheet.set("C3", "North")
    sheet.set("C4", "East")
    sheet.set("C5", "North")
    sheet.set("D1", "2023-05-15")
    return sheet


@pytest.fixture()
def evaluator(data_sheet) -> FormulaEvaluator:
    return FormulaEvaluator(data_sheet)


class TestAggregation:
    def test_sum(self, evaluator):
        assert evaluator.evaluate_formula("=SUM(A1:A5)") == 150

    def test_sum_ignores_text(self, evaluator):
        assert evaluator.evaluate_formula("=SUM(A1:B5)") == 150

    def test_average(self, evaluator):
        assert evaluator.evaluate_formula("=AVERAGE(A1:A5)") == 30

    def test_count_vs_counta(self, evaluator):
        assert evaluator.evaluate_formula("=COUNT(A1:B5)") == 5
        assert evaluator.evaluate_formula("=COUNTA(A1:B5)") == 10

    def test_countblank(self, evaluator):
        assert evaluator.evaluate_formula("=COUNTBLANK(A1:A6)") == 1

    def test_max_min_median(self, evaluator):
        assert evaluator.evaluate_formula("=MAX(A1:A5)") == 50
        assert evaluator.evaluate_formula("=MIN(A1:A5)") == 10
        assert evaluator.evaluate_formula("=MEDIAN(A1:A5)") == 30

    def test_product(self, evaluator):
        assert evaluator.evaluate_formula("=PRODUCT(A1:A2)") == 200

    def test_stdev_requires_two_values(self, evaluator):
        with pytest.raises((FunctionError, EvaluationError)):
            evaluator.evaluate_formula("=STDEV(A1:A1)")


class TestConditionalAggregation:
    def test_countif_value(self, evaluator):
        assert evaluator.evaluate_formula('=COUNTIF(C1:C5,"North")') == 3

    def test_countif_with_comparison(self, evaluator):
        assert evaluator.evaluate_formula('=COUNTIF(A1:A5,">25")') == 3

    def test_countif_cell_criterion(self, evaluator):
        assert evaluator.evaluate_formula("=COUNTIF(C1:C5,C1)") == 3

    def test_sumif_same_range(self, evaluator):
        assert evaluator.evaluate_formula('=SUMIF(A1:A5,">25")') == 120

    def test_sumif_separate_sum_range(self, evaluator):
        assert evaluator.evaluate_formula('=SUMIF(C1:C5,"North",A1:A5)') == 10 + 30 + 50

    def test_averageif(self, evaluator):
        assert evaluator.evaluate_formula('=AVERAGEIF(C1:C5,"North",A1:A5)') == 30

    def test_countifs(self, evaluator):
        assert evaluator.evaluate_formula('=COUNTIFS(C1:C5,"North",A1:A5,">15")') == 2

    def test_sumifs(self, evaluator):
        assert evaluator.evaluate_formula('=SUMIFS(A1:A5,C1:C5,"North",A1:A5,">15")') == 80

    def test_criterion_matcher_text_case_insensitive(self):
        matcher = criterion_matcher("north")
        assert matcher("North")
        assert not matcher("South")

    def test_criterion_matcher_not_equal(self):
        matcher = criterion_matcher("<>North")
        assert matcher("South")
        assert not matcher("North")


class TestLogicAndLookup:
    def test_if(self, evaluator):
        assert evaluator.evaluate_formula('=IF(A5>40,"big","small")') == "big"
        assert evaluator.evaluate_formula('=IF(A1>40,"big","small")') == "small"

    def test_and_or_not(self, evaluator):
        assert evaluator.evaluate_formula("=AND(A1>5,A2>5)") is True
        assert evaluator.evaluate_formula("=OR(A1>15,A2>15)") is True
        assert evaluator.evaluate_formula("=NOT(A1>15)") is True

    def test_iferror_catches_division_by_zero(self, evaluator):
        assert evaluator.evaluate_formula('=IFERROR(A1/0,"fallback")') == "fallback"

    def test_iferror_passthrough(self, evaluator):
        assert evaluator.evaluate_formula("=IFERROR(A1/2,0)") == 5

    def test_isblank_isnumber(self, evaluator):
        assert evaluator.evaluate_formula("=ISBLANK(Z99)") is True
        assert evaluator.evaluate_formula("=ISNUMBER(A1)") is True
        assert evaluator.evaluate_formula("=ISNUMBER(B1)") is False

    def test_vlookup(self, evaluator):
        assert evaluator.evaluate_formula('=VLOOKUP("item2",B1:C5,2)') == "North"

    def test_vlookup_missing_raises(self, evaluator):
        with pytest.raises((FunctionError, EvaluationError)):
            evaluator.evaluate_formula('=VLOOKUP("missing",B1:C5,2)')

    def test_index_and_match(self, evaluator):
        assert evaluator.evaluate_formula("=INDEX(A1:C5,2,3)") == "South"
        assert evaluator.evaluate_formula('=MATCH("East",C1:C5,0)') == 4


class TestMathTextDate:
    def test_round_family(self, evaluator):
        assert evaluator.evaluate_formula("=ROUND(A1/3,2)") == 3.33
        assert evaluator.evaluate_formula("=ROUNDUP(A1/3,0)") == 4
        assert evaluator.evaluate_formula("=ROUNDDOWN(A1/3,0)") == 3

    def test_abs_sqrt_power_mod_int(self, evaluator):
        assert evaluator.evaluate_formula("=ABS(0-A1)") == 10
        assert evaluator.evaluate_formula("=SQRT(A2*A1/8)") == 5
        assert evaluator.evaluate_formula("=POWER(2,5)") == 32
        assert evaluator.evaluate_formula("=MOD(A3,7)") == 2
        assert evaluator.evaluate_formula("=INT(7.9)") == 7

    def test_string_functions(self, evaluator):
        assert evaluator.evaluate_formula('=CONCATENATE(B1," / ",C1)') == "item0 / North"
        assert evaluator.evaluate_formula("=LEFT(C1,2)") == "No"
        assert evaluator.evaluate_formula("=RIGHT(C1,3)") == "rth"
        assert evaluator.evaluate_formula("=MID(C1,2,3)") == "ort"
        assert evaluator.evaluate_formula("=LEN(C1)") == 5
        assert evaluator.evaluate_formula("=UPPER(B1)") == "ITEM0"
        assert evaluator.evaluate_formula("=LOWER(C1)") == "north"
        assert evaluator.evaluate_formula('=TRIM("  a  b  ")') == "a b"
        assert evaluator.evaluate_formula('=SUBSTITUTE(C1,"North","N")') == "N"

    def test_text_concatenation_operator(self, evaluator):
        assert evaluator.evaluate_formula('=C1&"-"&A1') == "North-10"

    def test_date_functions(self, evaluator):
        assert evaluator.evaluate_formula("=YEAR(D1)") == 2023
        assert evaluator.evaluate_formula("=MONTH(D1)") == 5
        assert evaluator.evaluate_formula("=DAY(D1)") == 15
        assert evaluator.evaluate_formula("=DATE(2024,2,29)") == datetime.date(2024, 2, 29)


class TestEvaluatorMechanics:
    def test_arithmetic_and_comparison(self, evaluator):
        assert evaluator.evaluate_formula("=A1+A2*2") == 50
        assert evaluator.evaluate_formula("=(A1+A2)*2") == 60
        assert evaluator.evaluate_formula("=A1^2") == 100
        assert evaluator.evaluate_formula("=A1<A2") is True
        assert evaluator.evaluate_formula("=50%") == 0.5

    def test_division_by_zero_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate_formula("=A1/0")

    def test_unknown_function_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate_formula("=NOTAFUNCTION(A1)")

    def test_transitive_formula_evaluation(self):
        sheet = Sheet()
        sheet.set("A1", 2)
        sheet.set("A2", formula="=A1*10")
        sheet.set("A3", formula="=A2+5")
        assert FormulaEvaluator(sheet).evaluate_cell("A3") == 25

    def test_circular_reference_detected(self):
        sheet = Sheet()
        sheet.set("A1", formula="=A2")
        sheet.set("A2", formula="=A1")
        with pytest.raises(EvaluationError):
            FormulaEvaluator(sheet).evaluate_cell("A1")

    def test_recalculate_writes_values(self):
        sheet = Sheet()
        sheet.set("A1", 3)
        sheet.set("A2", 4)
        sheet.set("A3", formula="=SUM(A1:A2)")
        report = FormulaEvaluator(sheet).recalculate()
        assert (report.recalculated, report.errored) == (1, 0)
        assert report.total == 1
        assert sheet.get("A3").value == 7

    def test_evaluate_cell_plain_value(self, data_sheet):
        assert FormulaEvaluator(data_sheet).evaluate_cell("A1") == 10


class TestSeedRegressions:
    """Regression tests for the seed evaluator's bugs (each fails there)."""

    def test_evaluate_formula_sees_sheet_mutation(self, data_sheet):
        # Seed bug: the per-instance value cache was never invalidated, so
        # the second evaluation returned the pre-edit sum (150).
        evaluator = FormulaEvaluator(data_sheet)
        assert evaluator.evaluate_formula("=SUM(A1:A5)") == 150
        data_sheet.set("A1", 1000)
        assert evaluator.evaluate_formula("=SUM(A1:A5)") == 1140

    def test_recalculate_sees_sheet_mutation(self):
        # Seed bug: recalculate() after an edit recomputed from the stale
        # cache and left A2 at its pre-edit value.
        sheet = Sheet()
        sheet.set("A1", 2)
        sheet.set("A2", formula="=A1*10")
        evaluator = FormulaEvaluator(sheet)
        evaluator.recalculate()
        assert sheet.get("A2").value == 20
        sheet.set("A1", 5)
        evaluator.recalculate()
        assert sheet.get("A2").value == 50

    def test_string_number_equality_is_false(self, evaluator):
        # Seed bug: mixed operands were coerced to lowercased strings, so
        # ="1"=1 evaluated TRUE.  Excel: numbers and text never compare
        # equal, and text sorts above numbers for ordering operators.
        assert evaluator.evaluate_formula('="1"=1') is False
        assert evaluator.evaluate_formula('="1"<>1') is True
        assert evaluator.evaluate_formula('=1<"a"') is True
        assert evaluator.evaluate_formula('="a">999') is True
        assert evaluator.evaluate_formula('="Apple"="APPLE"') is True

    def test_concatenation_renders_booleans_uppercase(self, evaluator):
        # Seed bug: _as_text used str(), producing "True"/"False".
        assert evaluator.evaluate_formula('=TRUE&""') == "TRUE"
        assert evaluator.evaluate_formula('="is "&FALSE') == "is FALSE"
        assert evaluator.evaluate_formula("=(A1>5)&(A1>15)") == "TRUEFALSE"

    def test_recalculate_reports_and_commits_errors(self):
        # Seed bug: failures were silently swallowed, keeping stale values
        # with no signal.  Now the error value is committed and counted.
        sheet = Sheet()
        sheet.set("A1", 10)
        sheet.set("B1", formula="=A1/0")
        sheet.set("B2", formula="=B1+1")
        sheet.set("C1", formula="=A1*2")
        report = FormulaEvaluator(sheet).recalculate()
        assert (report.recalculated, report.errored) == (1, 2)
        assert sheet.get("B1").value == "#DIV/0!"
        assert sheet.get("B2").value == "#DIV/0!"
        assert sheet.get("C1").value == 20
