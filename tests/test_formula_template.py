"""Tests for formula templates, instantiation and reference shifting."""

import pytest

from repro.formula import extract_template, formula_references, instantiate_template
from repro.formula.template import normalize_formula, shift_formula
from repro.sheet.addressing import CellAddress, RangeAddress, parse_cell_address, parse_range_address


class TestTemplateExtraction:
    def test_countif_template(self):
        template = extract_template("=COUNTIF(C7:C37,C41)")
        assert template.signature == "COUNTIF(_:_,_)"
        assert template.slots == ("range", "cell")
        assert template.n_parameters == 2

    def test_sum_template(self):
        assert extract_template("=SUM(A1:A10)").signature == "SUM(_:_)"

    def test_arithmetic_template(self):
        template = extract_template("=B2-C2")
        assert template.signature == "_-_"
        assert template.slots == ("cell", "cell")

    def test_constants_are_kept(self):
        template = extract_template("=ROUND(A1/B1,2)")
        assert template.signature == "ROUND(_/_,2)"

    def test_same_logic_same_template(self):
        left = extract_template("=COUNTIF(C7:C37,C41)")
        right = extract_template("=COUNTIF(C6:C350,C354)")
        assert left == right

    def test_different_logic_different_template(self):
        assert extract_template("=SUM(A1:A5)") != extract_template("=AVERAGE(A1:A5)")


class TestReferences:
    def test_reference_order(self):
        references = formula_references("=COUNTIF(C7:C37,C41)")
        assert references == [parse_range_address("C7:C37"), parse_cell_address("C41")]

    def test_no_references(self):
        assert formula_references("=1+2") == []

    def test_nested_references(self):
        references = formula_references("=IF(A1>B1,SUM(C1:C5),0)")
        assert len(references) == 3


class TestInstantiation:
    def test_adapt_countif_to_new_context(self):
        new_parameters = [parse_range_address("C7:C37"), parse_cell_address("C41")]
        result = instantiate_template("=COUNTIF(C6:C350,C354)", new_parameters)
        assert result == "=COUNTIF(C7:C37,C41)"

    def test_parameter_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            instantiate_template("=SUM(A1:A5)", [])

    def test_identity_instantiation(self):
        references = formula_references("=SUMIF(A1:A9,B1,C1:C9)")
        assert instantiate_template("=SUMIF(A1:A9,B1,C1:C9)", references) == "=SUMIF(A1:A9,B1,C1:C9)"


class TestShiftAndNormalize:
    def test_shift_down(self):
        assert shift_formula("=SUM(A1:A5)", 3, 0) == "=SUM(A4:A8)"

    def test_shift_right(self):
        assert shift_formula("=B2*C2", 0, 2) == "=D2*E2"

    def test_shift_matches_paper_example(self):
        shifted = shift_formula("=COUNTIF(C7:C37,C41)", 313, 0)
        assert shifted == "=COUNTIF(C320:C350,C354)"

    def test_shift_off_sheet_raises(self):
        with pytest.raises(Exception):
            shift_formula("=SUM(A1:A5)", -1, 0)

    def test_normalize_removes_formatting_differences(self):
        assert normalize_formula("= sum( a1:a5 )") == normalize_formula("=SUM(A1:A5)")
        assert normalize_formula("=SUM($A$1:$A$5)") == "=SUM(A1:A5)"

    def test_normalize_preserves_semantics(self):
        assert normalize_formula("=COUNTIF(C7:C37,C41)") == "=COUNTIF(C7:C37,C41)"
