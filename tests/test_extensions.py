"""Tests for the auto-fill and error-detection extensions."""

import pytest

from repro.corpus import SurveyTemplate, split_corpus
from repro.extensions import FormulaErrorDetector, ValueAutoFill
from repro.sheet import CellAddress, Sheet, Workbook


@pytest.fixture(scope="module")
def pge_reference(pge_corpus):
    __, reference = split_corpus(pge_corpus, 0.15, "timestamp")
    return reference


def _survey_pair(rng):
    """Two survey workbooks from the same family (reference + audited copy)."""
    template = SurveyTemplate(7, rng)
    reference = template.instantiate(rng, 0)
    audited = template.instantiate(rng, 1)
    return reference, audited


class TestValueAutoFill:
    def test_requires_fit(self, trained_encoder):
        autofill = ValueAutoFill(trained_encoder)
        assert autofill.suggest(Sheet(), CellAddress(0, 0)) is None

    def test_fills_header_cell_from_family_sheet(self, trained_encoder, rng):
        reference, audited = _survey_pair(rng)
        autofill = ValueAutoFill(trained_encoder, acceptance_threshold=2.0)
        autofill.fit([reference])

        target_sheet = audited.sheets[1].copy()
        header_cell = CellAddress(5, 2)  # the "Answer" column header
        expected = target_sheet.get(header_cell).value
        target_sheet.set(header_cell, value=None)

        suggestion = autofill.suggest(target_sheet, header_cell)
        assert suggestion is not None
        assert suggestion.value == expected
        assert 0.0 <= suggestion.confidence <= 1.0
        assert suggestion.reference_cell == header_cell.to_a1()

    def test_returns_none_when_reference_cell_empty(self, trained_encoder, rng):
        reference, audited = _survey_pair(rng)
        autofill = ValueAutoFill(trained_encoder, acceptance_threshold=2.0)
        autofill.fit([reference])
        far_away = CellAddress(200, 7)
        assert autofill.suggest(audited.sheets[1], far_away) is None

    def test_threshold_controls_abstention(self, trained_encoder, rng, pge_reference):
        reference, audited = _survey_pair(rng)
        strict = ValueAutoFill(trained_encoder, acceptance_threshold=1e-6)
        strict.fit(pge_reference)
        target_sheet = audited.sheets[1].copy()
        header_cell = CellAddress(5, 2)
        target_sheet.set(header_cell, value=None)
        assert strict.suggest(target_sheet, header_cell) is None


class TestFormulaErrorDetector:
    def test_requires_fit(self, trained_encoder):
        detector = FormulaErrorDetector(trained_encoder)
        assert detector.audit(Sheet()) == []

    def test_consistent_sheet_has_no_anomalies(self, trained_encoder, rng):
        reference, audited = _survey_pair(rng)
        detector = FormulaErrorDetector(trained_encoder)
        detector.fit([reference])
        anomalies = detector.audit(audited.sheets[1])
        assert anomalies == []

    def test_detects_template_mismatch(self, trained_encoder, rng):
        reference, audited = _survey_pair(rng)
        audited_sheet = audited.sheets[1].copy()
        # Corrupt one COUNTIF summary formula into a plain constant-SUM, the
        # kind of copy/paste slip the detector is meant to catch.
        corrupted_cell = None
        for address, cell in audited_sheet.formula_cells():
            if "COUNTIF" in (cell.formula or ""):
                audited_sheet.set(address, formula="=SUM(A1:A2)", style=cell.style)
                corrupted_cell = address
                break
        assert corrupted_cell is not None

        detector = FormulaErrorDetector(trained_encoder)
        detector.fit([reference])
        anomalies = detector.audit(audited_sheet)
        assert anomalies, "the corrupted formula should be flagged"
        flagged_cells = {anomaly.cell for anomaly in anomalies}
        assert corrupted_cell in flagged_cells
        top = anomalies[0]
        assert top.observed_template != top.expected_template
        assert 0.0 <= top.severity <= 1.0

    def test_audit_against_unrelated_corpus_is_quiet(self, trained_encoder, rng, pge_reference):
        """Auditing a sheet against sheets that are not similar produces few flags."""
        __, audited = _survey_pair(rng)
        detector = FormulaErrorDetector(trained_encoder, max_region_distance=0.05)
        detector.fit(pge_reference)
        anomalies = detector.audit(audited.sheets[0])  # the Instructions sheet (no formulas)
        assert anomalies == []
