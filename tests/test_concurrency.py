"""Concurrency smoke tests: serving under concurrent corpus mutation.

N threads hammer one workspace (plain and sharded) with mixed
recommend/mutate operations.  The suite asserts the serving layer's
concurrency contract: no operation ever raises, responses are always
well-formed, and once a removal has completed, no later-started serve
returns a recommendation grounded in the removed (tombstoned) workbook.
"""

import threading

import pytest

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    RecommendationRequest,
    ShardedWorkspace,
    Workspace,
)
from repro.evaluation.latency import LatencyRecorder
from repro.service import ReadWriteLock
from repro.testing import WorkloadConfig, generate_workload

N_THREADS = 4
ROUNDS_PER_THREAD = 6

WORKLOAD = WorkloadConfig(
    n_tenants=1,
    n_steps=0,
    n_families=2,
    min_copies=2,
    max_copies=3,
    n_singletons=1,
    initial_workbooks=0,
    max_cases=4,
)


@pytest.fixture(scope="module")
def assets(trained_encoder):
    """A small corpus pool, its cases, and a predictor factory."""
    workload = generate_workload(17, WORKLOAD)
    tenant = workload.tenants[0]
    pool = list(workload.pools[tenant])
    cases = list(workload.cases[tenant])
    assert len(pool) >= 3 and cases
    config = AutoFormulaConfig()
    return pool, cases, (lambda: AutoFormula(trained_encoder, config))


def _hammer(workspace, pool, cases, churn_name):
    """Run serve threads against one mutator thread; return observations."""
    errors = []
    removed_event = threading.Event()
    post_removal_responses = []

    def server():
        try:
            for __ in range(ROUNDS_PER_THREAD):
                was_removed = removed_event.is_set()
                requests = [
                    RecommendationRequest(case.target_sheet, case.target_cell)
                    for case in cases
                ]
                responses = workspace.serve_batch(requests)
                for response in responses:
                    assert 0.0 <= response.confidence <= 1.0
                    assert (response.formula is None) == (
                        response.abstain_reason is not None
                    )
                if was_removed:
                    # Serve started strictly after the removal completed.
                    post_removal_responses.extend(responses)
        except BaseException as error:  # noqa: BLE001 - surfaced by the test
            errors.append(error)

    def mutator():
        try:
            # Churn a different workbook a few times, then permanently
            # remove `churn_name` and announce it.
            victim = pool[1]
            for __ in range(2):
                workspace.remove_workbook(victim.name)
                workspace.add_workbook(victim)
            workspace.remove_workbook(churn_name)
            removed_event.set()
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=server) for __ in range(N_THREADS)]
    threads.append(threading.Thread(target=mutator))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "deadlocked thread"
    return errors, removed_event, post_removal_responses


def _assert_no_stale(post_removal_responses, churn_name, workspace):
    for response in post_removal_responses:
        if response.accepted:
            assert response.provenance.get("reference_workbook") != churn_name, (
                "serve started after removal still cites the tombstoned workbook"
            )
    # And a final, definitely-sequenced serve:
    assert churn_name not in workspace.workbook_names


class TestWorkspaceUnderConcurrency:
    def test_mixed_recommend_and_mutate_never_raises_or_goes_stale(self, assets):
        pool, cases, factory = assets
        workspace = Workspace("hammer", factory())
        workspace.add_workbooks(pool)
        churn_name = pool[0].name

        errors, removed_event, post = _hammer(workspace, pool, cases, churn_name)
        assert not errors, f"concurrent ops raised: {errors[:3]}"
        assert removed_event.is_set()
        _assert_no_stale(post, churn_name, workspace)

    def test_serving_still_consistent_after_concurrency(self, assets):
        pool, cases, factory = assets
        workspace = Workspace("after", factory())
        workspace.add_workbooks(pool)
        errors, __, ___ = _hammer(workspace, pool, cases, pool[0].name)
        assert not errors
        # The surviving corpus serves exactly like a fresh fit on it.
        from repro.testing import assert_matches_fresh_fit

        assert_matches_fresh_fit(workspace, factory, cases, context="post-hammer")


class TestShardedWorkspaceUnderConcurrency:
    def test_mixed_recommend_and_mutate_never_raises_or_goes_stale(self, assets):
        pool, cases, factory = assets
        with ShardedWorkspace("hammer-sharded", factory, 3) as workspace:
            workspace.add_workbooks(pool)
            churn_name = pool[0].name
            errors, removed_event, post = _hammer(workspace, pool, cases, churn_name)
            assert not errors, f"concurrent ops raised: {errors[:3]}"
            assert removed_event.is_set()
            _assert_no_stale(post, churn_name, workspace)
            from repro.testing import assert_sharded_consistent

            assert_sharded_consistent(workspace)

    def test_concurrent_serves_pipeline_across_shards(self, assets):
        pool, cases, factory = assets
        with ShardedWorkspace("parallel", factory, 2) as workspace:
            workspace.add_workbooks(pool)
            requests = [
                RecommendationRequest(case.target_sheet, case.target_cell)
                for case in cases
            ]
            reference = workspace.serve_batch(requests)
            collected = [None] * N_THREADS
            errors = []

            def serve(slot):
                try:
                    collected[slot] = workspace.serve_batch(requests)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=serve, args=(slot,))
                for slot in range(N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            from repro.testing import assert_responses_match

            for responses in collected:
                assert responses is not None
                assert_responses_match(reference, responses, context="concurrent serve")


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "max_readers": 0, "writer_overlap": False}
        gate = threading.Barrier(3)

        def reader():
            gate.wait(timeout=30)
            with lock.read_lock():
                state["readers"] += 1
                state["max_readers"] = max(state["max_readers"], state["readers"])
                threading.Event().wait(0.05)
                state["readers"] -= 1

        def writer():
            gate.wait(timeout=30)
            with lock.write_lock():
                if state["readers"]:
                    state["writer_overlap"] = True

        threads = [threading.Thread(target=reader) for __ in range(2)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not state["writer_overlap"]

    def test_release_without_acquire_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_write_lock_context_manager_releases_on_error(self):
        lock = ReadWriteLock()
        with pytest.raises(ValueError):
            with lock.write_lock():
                raise ValueError("boom")
        # Lock must be free again:
        with lock.write_lock():
            pass


class TestLatencyRecorderThreadSafety:
    def test_concurrent_records_all_counted(self):
        recorder = LatencyRecorder()
        per_thread = 500

        def record():
            for index in range(per_thread):
                recorder.record(index * 1e-6)

        threads = [threading.Thread(target=record) for __ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(recorder) == N_THREADS * per_thread
        summary = recorder.summary()
        assert summary["count"] == float(N_THREADS * per_thread)
        assert summary["max_seconds"] == pytest.approx((per_thread - 1) * 1e-6)
