"""Two-tier scoring acceptance suite.

The contract under test: ``scoring_mode="two_tier"`` (BLAS tier-1 scan
over a float32/float16/int8 scan store + exact einsum re-rank of a
guaranteed slice) returns **bit-identical** final rankings and distances
to the historical one-tier deterministic scorer, across index kinds,
pool sizes, storage dtypes, and tombstone patterns — including the
automatic per-row fallback when the guaranteed slice overflows the
over-fetch budget.  Alongside: quantized store persistence/restore
parity, index memory accounting, serve-loop duplicate collapsing, and
cross-request query-embedding reuse.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AutoFormula, AutoFormulaConfig, Workspace
from repro.ann import create_index
from repro.ann.base import VALID_STORAGE_DTYPES
from repro.server.metrics import ServerMetrics
from repro.server.schemas import SheetInterner
from repro.sheet.io import sheet_to_dict
from repro.service import RecommendationRequest
from repro.sheet import CellAddress, Sheet, Workbook

INDEX_KINDS = ("exact", "ivf", "lsh")


def _make_pool(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """A duplicate-heavy, tie-provoking vector pool.

    Rows are drawn from a small base set with noise that is often zero or
    tiny, so exact duplicates, near-duplicates (ULP-scale distances that
    can clamp to 0.0), and a zero vector all occur — the patterns that
    stress stable-sort tie-breaking and the clamped-tie slice rule.
    """
    base = rng.standard_normal((max(n // 4, 1), d)).astype(np.float32)
    rows = base[rng.integers(0, base.shape[0], size=n)]
    noise = rng.standard_normal((n, d)).astype(np.float32) * rng.choice(
        [0.0, 1e-7, 0.1], size=(n, 1)
    )
    pool = (rows + noise).astype(np.float32)
    if n >= 6:
        pool[:3] = pool[3:6]
    if n >= 8:
        pool[7] = 0.0
    return pool


def _build_pair(kind, dtype, n, d, seed, remove_fraction, overfetch):
    """A (deterministic, two-tier) index pair fed identical mutations."""
    rng = np.random.default_rng(seed)
    data = _make_pool(rng, n, d)
    keys = [f"v{i}" for i in range(n)]
    reference = create_index(kind, d)
    two_tier = create_index(
        kind,
        d,
        scoring_mode="two_tier",
        storage_dtype=dtype,
        tier1_overfetch=overfetch,
    )
    # Force tier-1 engagement on the tiny pools hypothesis generates.
    two_tier.tier1_min_pool = 2
    reference.add_batch(keys, data)
    two_tier.add_batch(keys, data)
    n_remove = int(n * remove_fraction)
    if n_remove:
        dead = rng.choice(n, size=n_remove, replace=False)
        reference.remove_batch(dead)
        two_tier.remove_batch(dead)
    queries = _make_pool(rng, 5, d)
    return reference, two_tier, queries, rng


@st.composite
def parity_cases(draw):
    return dict(
        kind=draw(st.sampled_from(INDEX_KINDS)),
        dtype=draw(st.sampled_from(VALID_STORAGE_DTYPES)),
        n=draw(st.integers(min_value=1, max_value=160)),
        d=draw(st.integers(min_value=2, max_value=24)),
        k=draw(st.integers(min_value=1, max_value=12)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        remove_fraction=draw(st.sampled_from((0.0, 0.25, 0.6))),
        overfetch=draw(st.sampled_from((1.0, 2.0, 4.0))),
    )


class TestTwoTierParity:
    """Final rankings must be bit-identical to the one-tier scorer."""

    @settings(max_examples=80, deadline=None)
    @given(case=parity_cases())
    def test_search_batch_bit_identical(self, case):
        k = case.pop("k")
        reference, two_tier, queries, rng = _build_pair(**case)
        assert reference.search_batch(queries, k) == two_tier.search_batch(queries, k)

    @settings(max_examples=40, deadline=None)
    @given(case=parity_cases())
    def test_positions_pool_bit_identical(self, case):
        """The S2-style caller-provided candidate-pool path."""
        k = case.pop("k")
        reference, two_tier, queries, rng = _build_pair(**case)
        alive = np.flatnonzero(reference._alive[: reference._size])
        if alive.size < 2:
            return
        pool = np.sort(rng.choice(alive, size=max(alive.size // 2, 2), replace=False))
        assert reference.search_batch(queries, k, positions=pool) == two_tier.search_batch(
            queries, k, positions=pool
        )

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    @pytest.mark.parametrize("dtype", VALID_STORAGE_DTYPES)
    def test_overflow_falls_back_bit_identical(self, kind, dtype):
        """A pool of near-identical vectors overflows any slice budget:
        every row must fall back to one-tier scoring, still bit-equal."""
        rng = np.random.default_rng(3)
        d, n = 8, 120
        data = np.tile(rng.standard_normal((1, d)).astype(np.float32), (n, 1))
        data += rng.standard_normal((n, d)).astype(np.float32) * 1e-7
        keys = list(range(n))
        reference = create_index(kind, d)
        two_tier = create_index(
            kind, d, scoring_mode="two_tier", storage_dtype=dtype, tier1_overfetch=1.0
        )
        two_tier.tier1_min_pool = 2
        reference.add_batch(keys, data)
        two_tier.add_batch(keys, data)
        queries = data[:4] + rng.standard_normal((4, d)).astype(np.float32) * 1e-7
        assert reference.search_batch(queries, 3) == two_tier.search_batch(queries, 3)

    def test_search_single_matches_batch_row(self):
        index = create_index("exact", 6, scoring_mode="two_tier", storage_dtype="int8")
        index.tier1_min_pool = 2
        rng = np.random.default_rng(5)
        index.add_batch(list(range(100)), _make_pool(rng, 100, 6))
        query = rng.standard_normal(6).astype(np.float32)
        assert index.search(query, 4) == index.search_batch(query[None, :], 4)[0]


class TestStorageBackends:
    """Quantization mechanics of the pluggable scan store."""

    def test_int8_codes_and_scales(self):
        index = create_index("exact", 4, scoring_mode="two_tier", storage_dtype="int8")
        vectors = np.array(
            [[1.0, -2.0, 0.5, 0.0], [0.0, 0.0, 0.0, 0.0]], dtype=np.float32
        )
        index.add_batch(["a", "b"], vectors)
        assert index._codes.dtype == np.int8
        # Peak magnitude maps to +/-127; the zero vector stays all-zero
        # codes with a benign scale of 1.0 and zero reconstruction error.
        assert int(np.abs(index._codes[0]).max()) == 127
        assert not index._codes[1].any()
        assert float(index._scales[1]) == 1.0
        assert float(index._recon_errs[1]) == 0.0
        recon = index._codes[:2].astype(np.float32) * index._scales[:2, None]
        errors = np.linalg.norm(vectors - recon, axis=1)
        assert np.allclose(errors, index._recon_errs[:2], rtol=1e-5, atol=1e-7)

    def test_float16_codes_stay_finite(self):
        index = create_index("exact", 2, scoring_mode="two_tier", storage_dtype="float16")
        index.add_batch(["big"], np.array([[1e9, -1e9]], dtype=np.float32))
        assert np.isfinite(index._codes[: index._size].astype(np.float32)).all()
        assert np.isfinite(index._recon_errs[: index._size]).all()

    def test_quantized_store_survives_compaction(self):
        index = create_index("exact", 3, scoring_mode="two_tier", storage_dtype="int8")
        index.tier1_min_pool = 2
        rng = np.random.default_rng(7)
        data = _make_pool(rng, 40, 3)
        index.add_batch(list(range(40)), data)
        dead = list(range(24))  # 60% dead: exceeds compaction_fraction
        remap = index.remove_batch(dead)
        assert remap is not None and index.n_tombstones == 0
        fresh = create_index("exact", 3, scoring_mode="two_tier", storage_dtype="int8")
        fresh.tier1_min_pool = 2
        kept = list(range(24, 40))
        fresh.add_batch(kept, data[kept])
        np.testing.assert_array_equal(index._codes[: index._size], fresh._codes[: fresh._size])
        np.testing.assert_array_equal(index._scales[: index._size], fresh._scales[: fresh._size])
        queries = _make_pool(rng, 3, 3)
        assert index.search_batch(queries, 4) == fresh.search_batch(queries, 4)

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            create_index("exact", 4, scoring_mode="fast")
        with pytest.raises(ValueError):
            create_index("exact", 4, scoring_mode="two_tier", storage_dtype="int4")
        # Quantized storage without the re-ranking tier would silently
        # never read the codes; constructing it is an error.
        with pytest.raises(ValueError):
            create_index("exact", 4, scoring_mode="deterministic", storage_dtype="int8")
        with pytest.raises(ValueError):
            create_index("exact", 4, scoring_mode="two_tier", tier1_overfetch=0.5)
        with pytest.raises(ValueError):
            AutoFormulaConfig(scoring_mode="deterministic", storage_dtype="float16")
        with pytest.raises(ValueError):
            AutoFormulaConfig(scoring_mode="warp")

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_factory_forwards_scoring_kwargs(self, kind):
        index = create_index(
            kind, 8, scoring_mode="two_tier", storage_dtype="float16", tier1_overfetch=2.0
        )
        assert index.scoring_mode == "two_tier"
        assert index.storage_dtype == "float16"
        assert index.tier1_overfetch == 2.0


class TestQuantizedRestore:
    """store_state/restore_store round trips of the quantized store."""

    @pytest.mark.parametrize("dtype", ("float16", "int8"))
    def test_restore_adopts_persisted_codes(self, dtype):
        rng = np.random.default_rng(11)
        source = create_index("exact", 5, scoring_mode="two_tier", storage_dtype=dtype)
        source.tier1_min_pool = 2
        source.add_batch(list(range(60)), _make_pool(rng, 60, 5))
        source.remove_batch([2, 9])
        state = source.store_state()
        assert state["codes"].dtype == np.dtype(dtype)
        restored = create_index("exact", 5, scoring_mode="two_tier", storage_dtype=dtype)
        restored.tier1_min_pool = 2
        restored.restore_store(
            list(source._keys),
            state["matrix"],
            state["sq_norms"],
            state["alive"],
            codes=state["codes"],
            scales=state.get("scales"),
            recon_errors=state["recon_errors"],
        )
        queries = _make_pool(rng, 4, 5)
        assert restored.search_batch(queries, 5) == source.search_batch(queries, 5)

    def test_restore_requantizes_when_codes_missing(self):
        """Old snapshots (no quantized blocks) restore by re-deriving the
        codes from the exact matrix — bit-identical, since quantization is
        a pure function of the float32 values."""
        rng = np.random.default_rng(13)
        source = create_index("exact", 5, scoring_mode="two_tier", storage_dtype="int8")
        source.tier1_min_pool = 2
        source.add_batch(list(range(50)), _make_pool(rng, 50, 5))
        state = source.store_state()
        restored = create_index("exact", 5, scoring_mode="two_tier", storage_dtype="int8")
        restored.tier1_min_pool = 2
        restored.restore_store(
            list(source._keys), state["matrix"], state["sq_norms"], state["alive"]
        )
        np.testing.assert_array_equal(
            restored._codes[: restored._size], source._codes[: source._size]
        )
        np.testing.assert_array_equal(
            restored._scales[: restored._size], source._scales[: source._size]
        )
        queries = _make_pool(rng, 4, 5)
        assert restored.search_batch(queries, 5) == source.search_batch(queries, 5)


class TestMemoryStats:
    """The /stats index-memory surface."""

    def test_index_memory_accounting(self):
        index = create_index("exact", 16, scoring_mode="two_tier", storage_dtype="int8")
        rng = np.random.default_rng(17)
        index.add_batch(list(range(100)), _make_pool(rng, 100, 16))
        index.remove_batch([0, 1, 2])
        stats = index.memory_stats()
        assert stats["vectors"] == 97
        assert stats["tombstones"] == 3
        assert stats["storage_dtype"] == "int8"
        assert stats["bytes"]["float32_matrix"] == 100 * 16 * 4
        assert stats["bytes"]["codes"] == 100 * 16  # one byte per component
        assert stats["bytes"]["total"] == sum(
            value for key, value in stats["bytes"].items() if key != "total"
        )
        # The int8 scan store is ~4x smaller than a float32 scan.
        assert stats["scan_bytes"] < stats["bytes"]["float32_matrix"] // 2
        assert stats["quantization_savings_bytes"] > 0
        assert stats["tombstone_bytes"] > 0

    def test_float32_store_reports_no_savings(self):
        index = create_index("exact", 8)
        index.add_batch(["a"], np.ones((1, 8), dtype=np.float32))
        stats = index.memory_stats()
        assert stats["quantization_savings_bytes"] == 0
        assert stats["scan_bytes"] == stats["bytes"]["float32_matrix"]

    def test_workspace_memory_stats(self, trained_encoder):
        config = AutoFormulaConfig(scoring_mode="two_tier", storage_dtype="int8")
        workspace = Workspace("w", AutoFormula(trained_encoder, config))
        workspace.add_workbook(_survey_workbook())
        stats = workspace.memory_stats()
        assert stats["total_bytes"] > 0
        assert stats["sheet_index"]["storage_dtype"] == "int8"
        assert stats["formula_index"]["quantization_savings_bytes"] > 0

    def test_server_metrics_memory_gauges(self):
        metrics = ServerMetrics()
        metrics.register_memory_gauge("main", lambda: {"total_bytes": 123})
        snapshot = metrics.snapshot()
        assert snapshot["index_memory"] == {"main": {"total_bytes": 123}}
        metrics.prune_memory_gauges([])
        assert metrics.snapshot()["index_memory"] == {}


def _survey_workbook(n_rows: int = 12) -> Workbook:
    sheet = Sheet("Data")
    for row in range(n_rows):
        sheet.set((row, 0), float(row + 1))
        sheet.set((row, 1), float((row + 1) * 2))
        sheet.set((row, 2), formula=f"=A{row + 1}+B{row + 1}")
    workbook = Workbook("Survey")
    workbook.add_sheet(sheet)
    return workbook


def _target_sheet(n_rows: int = 12) -> Sheet:
    sheet = Sheet("Target")
    for row in range(n_rows):
        sheet.set((row, 0), float(row + 3))
        sheet.set((row, 1), float((row + 3) * 2))
    return sheet


def _response_key(response):
    return (
        response.formula,
        response.confidence,
        response.abstain_reason,
        response.provenance,
    )


class TestServeLoopSatellites:
    """Duplicate collapsing and cross-request query-embedding reuse."""

    def test_collapse_duplicates_bit_identical(self, trained_encoder):
        target = _target_sheet()
        requests = [
            RecommendationRequest(sheet=target, cell=CellAddress(row, 2), request_id=str(i))
            for i, row in enumerate([4, 4, 7, 4, 7, 9])
        ]
        outputs = {}
        for collapse in (False, True):
            config = AutoFormulaConfig(
                collapse_duplicate_cells=collapse, reuse_query_embeddings=False
            )
            workspace = Workspace("w", AutoFormula(trained_encoder, config))
            workspace.add_workbook(_survey_workbook())
            outputs[collapse] = workspace.serve_batch(requests)
        assert [_response_key(r) for r in outputs[True]] == [
            _response_key(r) for r in outputs[False]
        ]
        # The request echo is per-caller even for collapsed duplicates.
        assert [r.request.request_id for r in outputs[True]] == [
            str(i) for i in range(len(requests))
        ]

    def test_query_embedding_reused_across_batches(self, trained_encoder):
        config = AutoFormulaConfig(reuse_query_embeddings=True)
        predictor = AutoFormula(trained_encoder, config)
        workspace = Workspace("w", predictor)
        workspace.add_workbook(_survey_workbook())
        encodes = []
        original = predictor._encode_sheet_vector
        predictor._encode_sheet_vector = lambda sheet: (
            encodes.append(id(sheet)),
            original(sheet),
        )[1]
        target = _target_sheet()
        requests = [
            RecommendationRequest(sheet=target, cell=CellAddress(row, 2)) for row in (4, 6)
        ]
        first = workspace.serve_batch(requests)
        second = workspace.serve_batch(requests)
        assert encodes == [id(target)]  # one encode across both batches
        assert [_response_key(r) for r in first] == [_response_key(r) for r in second]

    def test_content_key_shares_embeddings_across_objects(self, trained_encoder):
        config = AutoFormulaConfig(reuse_query_embeddings=True)
        predictor = AutoFormula(trained_encoder, config)
        workspace = Workspace("w", predictor)
        workspace.add_workbook(_survey_workbook())
        encodes = []
        original = predictor._encode_sheet_vector
        predictor._encode_sheet_vector = lambda sheet: (
            encodes.append(id(sheet)),
            original(sheet),
        )[1]
        # Two *distinct* sheet objects carrying the interner's content key,
        # as produced by byte-identical wire payloads after cache eviction.
        interner = SheetInterner(max_entries=1)
        payload = sheet_to_dict(_target_sheet())
        sheet_a = interner.intern(payload)
        interner.intern(sheet_to_dict(Sheet("evict")))  # evict sheet_a
        sheet_b = interner.intern(payload)
        assert sheet_a is not sheet_b
        assert sheet_a.content_key == sheet_b.content_key is not None
        workspace.serve_batch([RecommendationRequest(sheet=sheet_a, cell=CellAddress(4, 2))])
        workspace.serve_batch([RecommendationRequest(sheet=sheet_b, cell=CellAddress(4, 2))])
        assert encodes == [id(sheet_a)]  # content hit: sheet_b never encoded

    def test_edited_sheet_reencodes(self, trained_encoder):
        config = AutoFormulaConfig(reuse_query_embeddings=True)
        predictor = AutoFormula(trained_encoder, config)
        workspace = Workspace("w", predictor)
        workspace.add_workbook(_survey_workbook())
        encodes = []
        original = predictor._encode_sheet_vector
        predictor._encode_sheet_vector = lambda sheet: (
            encodes.append(sheet.version),
            original(sheet),
        )[1]
        target = _target_sheet()
        workspace.serve_batch([RecommendationRequest(sheet=target, cell=CellAddress(4, 2))])
        target.set((0, 0), 99.0)  # bumps the sheet's mutation version
        workspace.serve_batch([RecommendationRequest(sheet=target, cell=CellAddress(4, 2))])
        assert len(encodes) == 2 and encodes[0] != encodes[1]
