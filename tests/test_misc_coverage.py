"""Additional coverage: value pools, predictor interface, configs and edge cases."""

import numpy as np
import pytest

from repro.baselines.mondrian import extract_regions, sheet_similarity
from repro.core.interface import Prediction
from repro.corpus import value_pools as pools
from repro.evaluation.pr_curve import PRPoint, area_under_pr
from repro.features import FeatureConfig
from repro.models import ModelConfig
from repro.sheet import Sheet
from repro.sheet.io import sheet_from_dict, sheet_to_dict


class TestValuePools:
    def test_pick_returns_member(self, rng):
        for pool in (pools.COLORS, pools.REGIONS, pools.PRODUCTS, pools.MONTHS):
            assert pools.pick(rng, pool) in pool

    def test_pick_many_distinct(self, rng):
        chosen = pools.pick_many(rng, pools.PRODUCTS, 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_pick_many_caps_at_pool_size(self, rng):
        chosen = pools.pick_many(rng, pools.QUARTERS, 10)
        assert sorted(chosen) == sorted(pools.QUARTERS)

    def test_full_name_format(self, rng):
        name = pools.full_name(rng)
        first, last = name.split(" ", 1)
        assert first in pools.FIRST_NAMES
        assert last in pools.LAST_NAMES

    def test_money_bounds_and_rounding(self, rng):
        for __ in range(20):
            value = pools.money(rng, 10, 20)
            assert 10 <= value <= 20
            assert round(value, 2) == value

    def test_iso_date_format(self, rng):
        date = pools.iso_date(rng, year=2022)
        year, month, day = date.split("-")
        assert year == "2022"
        assert 1 <= int(month) <= 12
        assert 1 <= int(day) <= 28


class TestPredictionInterface:
    def test_defaults(self):
        prediction = Prediction(formula="=SUM(A1:A2)")
        assert prediction.confidence == 1.0
        assert prediction.details == {}

    def test_details_are_not_shared_between_instances(self):
        first = Prediction(formula="=A1")
        second = Prediction(formula="=A2")
        first.details["key"] = "value"
        assert second.details == {}


class TestConfigs:
    def test_feature_config_paper_constants(self):
        assert FeatureConfig.PAPER_WINDOW_ROWS == 100
        assert FeatureConfig.PAPER_WINDOW_COLS == 10
        config = FeatureConfig(window_rows=10, window_cols=4)
        assert config.window_cells == 40

    def test_model_config_paper_constants(self):
        assert ModelConfig.PAPER_COARSE_EMBEDDING_DIM == 896
        assert ModelConfig.PAPER_FINE_PER_CELL_DIM == 16

    def test_fine_embedding_dim_formula(self):
        config = ModelConfig(features=FeatureConfig(window_rows=10, window_cols=4), fine_per_cell_dim=6)
        assert config.fine_embedding_dim == 10 * 4 * 6

    def test_paper_scale_fine_dimension_matches_paper(self):
        """At paper-scale settings the fine embedding is 16,000-d as reported."""
        config = ModelConfig(
            features=FeatureConfig(
                window_rows=FeatureConfig.PAPER_WINDOW_ROWS,
                window_cols=FeatureConfig.PAPER_WINDOW_COLS,
            ),
            fine_per_cell_dim=ModelConfig.PAPER_FINE_PER_CELL_DIM,
        )
        assert config.fine_embedding_dim == 16_000


class TestSheetIOEdgeCases:
    def test_sheet_dict_roundtrip_preserves_name(self):
        sheet = Sheet("My Report")
        sheet.set("B3", 1.5)
        restored = sheet_from_dict(sheet_to_dict(sheet))
        assert restored.name == "My Report"
        assert restored.get("B3").value == 1.5

    def test_sheet_from_minimal_dict(self):
        restored = sheet_from_dict({})
        assert restored.name == "Sheet1"
        assert restored.n_cells == 0


class TestMondrianRegionEdgeCases:
    def test_empty_sheet_has_no_regions(self):
        assert extract_regions(Sheet()) == []

    def test_similarity_with_empty_side_is_zero(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        regions = extract_regions(sheet)
        assert sheet_similarity(regions, []) == 0.0
        assert sheet_similarity([], regions) == 0.0

    def test_region_covers_contiguous_numeric_block(self):
        sheet = Sheet()
        for row in range(4):
            for col in range(3):
                sheet.set((row, col), row * col + 1.0)
        regions = extract_regions(sheet)
        numeric_regions = [region for region in regions if region.cell_type == "numeric"]
        assert sum(region.n_cells for region in numeric_regions) == 12


class TestPRCurveGeometry:
    def test_area_under_single_point_is_zero(self):
        assert area_under_pr([PRPoint(0.0, 1.0, 0.5)]) == 0.0

    def test_area_of_rectangle(self):
        points = [PRPoint(0.0, 0.8, 0.0), PRPoint(0.5, 0.8, 1.0)]
        assert area_under_pr(points) == pytest.approx(0.8)
