"""Tests for the end-to-end Auto-Formula pipeline (S1/S2/S3)."""

import numpy as np
import pytest

from repro.core import AutoFormula, AutoFormulaConfig
from repro.corpus import sample_test_cases, split_corpus
from repro.evaluation import run_method_on_cases
from repro.formula.template import extract_template
from repro.sheet import CellAddress, Sheet, Workbook


@pytest.fixture(scope="module")
def pge_workload(pge_corpus):
    test, reference = split_corpus(pge_corpus, 0.15, "timestamp")
    return sample_test_cases("PGE", test, seed=0), reference


@pytest.fixture(scope="module")
def fitted_system(trained_encoder, pge_workload):
    __, reference = pge_workload
    system = AutoFormula(trained_encoder, AutoFormulaConfig())
    system.fit(reference)
    return system


class TestConfigValidation:
    def test_defaults_valid(self):
        AutoFormulaConfig()

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            AutoFormulaConfig(top_k_sheets=0)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            AutoFormulaConfig(granularity="medium")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AutoFormulaConfig(acceptance_threshold=0.0)

    @pytest.mark.parametrize("field", ["sheet_index_kind", "formula_index_kind"])
    def test_unknown_index_kind_rejected_at_construction(self, field):
        with pytest.raises(ValueError, match="index_kind"):
            AutoFormulaConfig(**{field: "lshh"})

    def test_index_kind_spellings_normalized(self):
        # create_index is case-insensitive and whitespace-tolerant, so the
        # config validation must accept the same spellings.
        AutoFormulaConfig(sheet_index_kind=" LSH ", formula_index_kind="Flat")

    @pytest.mark.parametrize(
        "rows, cols", [(0, 2), (-1, 2), (8, 0), (8, -3)]
    )
    def test_non_positive_neighborhood_rejected(self, rows, cols):
        with pytest.raises(ValueError, match="neighborhood"):
            AutoFormulaConfig(neighborhood_rows=rows, neighborhood_cols=cols)


class TestCorpusMutation:
    """add_workbooks / remove_workbook keep the predictor's bookkeeping
    consistent (prediction parity itself is asserted in test_service.py)."""

    def test_add_then_remove_restores_counts(self, trained_encoder, pge_workload):
        __, reference = pge_workload
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        system.fit(reference[:3])
        sheets_before = system.n_reference_sheets
        formulas_before = system.n_reference_formulas

        system.add_workbook(reference[3])
        assert system.n_reference_sheets == sheets_before + len(reference[3])
        removed = system.remove_workbook(reference[3].name)
        assert removed == len(reference[3])
        assert system.n_reference_sheets == sheets_before
        assert system.n_reference_formulas == formulas_before

    def test_add_workbooks_on_unfitted_predictor_fits(self, trained_encoder, pge_workload):
        __, reference = pge_workload
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        system.add_workbooks(reference[:2])
        assert system.n_reference_sheets == sum(len(workbook) for workbook in reference[:2])

    def test_remove_unknown_workbook_raises(self, trained_encoder, pge_workload):
        __, reference = pge_workload
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        system.fit(reference[:2])
        with pytest.raises(KeyError):
            system.remove_workbook("no-such-workbook")

    def test_supports_incremental_corpus_flag(self, trained_encoder):
        assert AutoFormula(trained_encoder).supports_incremental_corpus


class TestOfflinePhase:
    def test_fit_indexes_sheets_and_formulas(self, fitted_system, pge_workload):
        __, reference = pge_workload
        n_sheets = sum(len(workbook) for workbook in reference)
        n_formulas = sum(workbook.n_formulas() for workbook in reference)
        assert fitted_system.n_reference_sheets == n_sheets
        assert fitted_system.n_reference_formulas == n_formulas

    def test_fit_accepts_bare_sheets(self, trained_encoder):
        sheet = Sheet("solo")
        sheet.set("A1", 1)
        sheet.set("A2", formula="=A1*2")
        system = AutoFormula(trained_encoder)
        system.fit([sheet])
        assert system.n_reference_sheets == 1

    def test_predict_before_fit_abstains(self, trained_encoder):
        system = AutoFormula(trained_encoder)
        assert system.predict(Sheet(), CellAddress(0, 0)) is None


class TestOnlinePrediction:
    def test_predictions_have_provenance(self, fitted_system, pge_workload):
        cases, __ = pge_workload
        prediction = None
        for case in cases:
            prediction = fitted_system.predict(case.target_sheet, case.target_cell)
            if prediction is not None:
                break
        assert prediction is not None
        assert prediction.formula.startswith("=")
        assert 0.0 <= prediction.confidence <= 1.0
        for key in ("reference_workbook", "reference_sheet", "reference_cell", "reference_formula"):
            assert key in prediction.details

    def test_quality_on_templated_corpus(self, fitted_system, pge_workload):
        """On the highly-templated PGE corpus the system should do very well."""
        cases, reference = pge_workload
        run = run_method_on_cases(fitted_system, reference, cases, "PGE", fit=False)
        assert run.metrics.recall > 0.7
        assert run.metrics.precision > 0.85

    def test_predicted_template_matches_reference_template(self, fitted_system, pge_workload):
        cases, __ = pge_workload
        for case in cases[:10]:
            prediction = fitted_system.predict(case.target_sheet, case.target_cell)
            if prediction is None:
                continue
            predicted_template = extract_template(prediction.formula).signature
            reference_template = extract_template(prediction.details["reference_formula"]).signature
            assert predicted_template == reference_template

    def test_abstains_on_unrelated_sheet(self, fitted_system):
        """A sheet with content unlike anything in the corpus yields no prediction."""
        weird = Sheet("totally unrelated")
        for row in range(15):
            weird.set((row, 0), f"zzz{row}qqq")
        prediction = fitted_system.predict(weird, CellAddress(20, 5))
        if prediction is not None:  # if it does predict, confidence must be low
            assert prediction.confidence < 0.99

    def test_tight_threshold_increases_abstention(self, trained_encoder, pge_workload):
        cases, reference = pge_workload
        loose = AutoFormula(trained_encoder, AutoFormulaConfig(acceptance_threshold=3.9))
        tight = AutoFormula(trained_encoder, AutoFormulaConfig(acceptance_threshold=0.01))
        loose.fit(reference)
        tight.fit(reference)
        loose_predictions = sum(
            1 for case in cases[:20] if loose.predict(case.target_sheet, case.target_cell) is not None
        )
        tight_predictions = sum(
            1 for case in cases[:20] if tight.predict(case.target_sheet, case.target_cell) is not None
        )
        assert tight_predictions <= loose_predictions

    def test_paper_example_adaptation(self, trained_encoder):
        """A Figure-1-style pair: the COUNTIF formula is adapted across sheet sizes."""
        def build_survey(n_rows: int, name: str, with_formula: bool) -> Sheet:
            sheet = Sheet(name)
            sheet.set("A1", "Color survey")
            sheet.set("B6", "Respondent")
            sheet.set("C6", "Answer")
            sheet.set("D6", "Count")
            colors = ["Brown", "Green", "Blue"]
            for offset in range(n_rows):
                sheet.set((6 + offset, 1), f"person {offset}")
                sheet.set((6 + offset, 2), colors[offset % 3])
            summary_row = 6 + n_rows + 2
            sheet.set((summary_row, 2), "Brown")
            if with_formula:
                sheet.set(
                    (summary_row, 3),
                    formula=f"=COUNTIF(C7:C{6 + n_rows},C{summary_row + 1})",
                )
            return sheet, CellAddress(summary_row, 3)

        reference_sheet, __ = build_survey(40, "Responses", with_formula=True)
        target_sheet, target_cell = build_survey(31, "Responses", with_formula=False)
        reference_workbook = Workbook("ref.xlsx")
        reference_workbook.add_sheet(reference_sheet)

        system = AutoFormula(trained_encoder, AutoFormulaConfig(acceptance_threshold=2.0))
        system.fit([reference_workbook])
        prediction = system.predict(target_sheet, target_cell)
        assert prediction is not None
        assert extract_template(prediction.formula).signature == "COUNTIF(_:_,_)"
        assert prediction.formula == f"=COUNTIF(C7:C37,C{target_cell.row + 1})"


class TestBatchPrediction:
    def test_predict_batch_matches_sequential_predict(self, fitted_system, pge_workload):
        """The vectorized batch path must return exactly the predictions the
        sequential path does, abstentions included."""
        cases, __ = pge_workload
        by_sheet = {}
        for case in cases:
            by_sheet.setdefault(id(case.target_sheet), (case.target_sheet, []))[1].append(
                case.target_cell
            )
        for sheet, cells in by_sheet.values():
            sequential = [fitted_system.predict(sheet, cell) for cell in cells]
            batched = fitted_system.predict_batch(sheet, cells)
            assert len(batched) == len(sequential)
            for one, many in zip(sequential, batched):
                if one is None:
                    assert many is None
                    continue
                assert many is not None
                assert many.formula == one.formula
                assert many.confidence == pytest.approx(one.confidence, abs=1e-6)
                assert many.details["reference_cell"] == one.details["reference_cell"]

    def test_predict_batch_empty(self, fitted_system):
        assert fitted_system.predict_batch(Sheet(), []) == []

    def test_predict_batch_before_fit_abstains(self, trained_encoder):
        system = AutoFormula(trained_encoder)
        sheet = Sheet()
        assert system.predict_batch(sheet, [CellAddress(0, 0), CellAddress(1, 1)]) == [None, None]

    def test_target_cache_is_bounded_lru(self, trained_encoder, pge_workload):
        """Predicting across many target sheets must not grow memory without
        bound: the per-sheet embedding cache evicts least-recently-used."""
        __, reference = pge_workload
        config = AutoFormulaConfig(max_cached_target_sheets=2)
        system = AutoFormula(trained_encoder, config)
        system.fit(reference)
        sheets = []
        for index in range(5):
            sheet = Sheet(f"target-{index}")
            for row in range(12):
                sheet.set((row, 0), f"label {row}")
                sheet.set((row, 1), float(row * index))
            sheets.append(sheet)
            system._target_region_vectors(sheet, [CellAddress(6, 1)])
            assert len(system._target_cache) <= 2
        # deterministic LRU order: the two most recent sheets survive
        assert system._target_cache.sheets() == sheets[-2:]
        # cached vectors are reused and eviction does not change values
        vector = system._target_region_vectors(sheets[-1], [CellAddress(6, 1)])
        fresh = system._region_vectors(sheets[-1], [CellAddress(6, 1)])
        assert np.allclose(vector, fresh)

    def test_invalid_cache_bound_rejected(self):
        with pytest.raises(ValueError):
            AutoFormulaConfig(max_cached_target_sheets=0)


class TestGranularityModes:
    @pytest.mark.parametrize("granularity", ["both", "coarse_only", "fine_only"])
    def test_all_modes_run(self, trained_encoder, pge_workload, granularity):
        cases, reference = pge_workload
        system = AutoFormula(
            trained_encoder,
            AutoFormulaConfig(granularity=granularity, acceptance_threshold=2.0),
        )
        system.fit(reference)
        prediction = system.predict(cases[0].target_sheet, cases[0].target_cell)
        assert prediction is None or prediction.formula.startswith("=")

    def test_full_model_not_worse_than_coarse_only(self, trained_encoder, pge_workload):
        cases, reference = pge_workload
        full = AutoFormula(trained_encoder, AutoFormulaConfig())
        coarse = AutoFormula(trained_encoder, AutoFormulaConfig(granularity="coarse_only"))
        full_run = run_method_on_cases(full, reference, cases, "PGE")
        coarse_run = run_method_on_cases(coarse, reference, cases, "PGE")
        assert full_run.metrics.f1 >= coarse_run.metrics.f1


class TestIndexChoices:
    @pytest.mark.parametrize("kind", ["exact", "lsh", "ivf"])
    def test_sheet_index_kinds(self, trained_encoder, pge_workload, kind):
        cases, reference = pge_workload
        system = AutoFormula(trained_encoder, AutoFormulaConfig(sheet_index_kind=kind))
        run = run_method_on_cases(system, reference, cases[:15], "PGE")
        assert run.metrics.recall > 0.4
