"""Tests for cell values, data-type inference and styles."""

import datetime

import pytest

from repro.sheet.cell import Cell, CellType, infer_cell_type, syntactic_pattern
from repro.sheet.style import CellStyle, DEFAULT_STYLE, HEADER_STYLE


class TestCellTypeInference:
    def test_empty(self):
        assert infer_cell_type(None) is CellType.EMPTY
        assert infer_cell_type("") is CellType.EMPTY

    def test_numeric(self):
        assert infer_cell_type(3) is CellType.NUMERIC
        assert infer_cell_type(3.14) is CellType.NUMERIC
        assert infer_cell_type("42") is CellType.NUMERIC
        assert infer_cell_type("-1.5e3") is CellType.NUMERIC

    def test_boolean(self):
        assert infer_cell_type(True) is CellType.BOOLEAN
        assert infer_cell_type(False) is CellType.BOOLEAN

    def test_text(self):
        assert infer_cell_type("hello") is CellType.TEXT
        assert infer_cell_type("Total Sales") is CellType.TEXT

    def test_date(self):
        assert infer_cell_type(datetime.date(2024, 1, 1)) is CellType.DATE
        assert infer_cell_type("2024-01-01") is CellType.DATE
        assert infer_cell_type("2024/1/5") is CellType.DATE

    def test_formula_overrides_value(self):
        assert infer_cell_type(10.0, formula="=SUM(A1:A2)") is CellType.FORMULA


class TestSyntacticPattern:
    def test_date_pattern(self):
        assert syntactic_pattern("2020-01-01") == "DDDD-DD-DD"

    def test_mixed_pattern(self):
        assert syntactic_pattern("SKU-42 x") == "LLL-DDSL"

    def test_none_is_empty(self):
        assert syntactic_pattern(None) == ""


class TestCell:
    def test_defaults(self):
        cell = Cell()
        assert cell.is_empty
        assert not cell.has_formula
        assert cell.cell_type is CellType.EMPTY

    def test_display_text_integers(self):
        assert Cell(value=5.0).display_text() == "5"
        assert Cell(value=5.5).display_text() == "5.5"
        assert Cell(value="abc").display_text() == "abc"
        assert Cell().display_text() == ""

    def test_roundtrip_plain_value(self):
        cell = Cell(value=12.5)
        assert Cell.from_dict(cell.to_dict()).value == 12.5

    def test_roundtrip_formula_and_style(self):
        cell = Cell(value=3.0, formula="=SUM(A1:A2)", style=HEADER_STYLE)
        restored = Cell.from_dict(cell.to_dict())
        assert restored.formula == "=SUM(A1:A2)"
        assert restored.style == HEADER_STYLE

    def test_roundtrip_date_value(self):
        cell = Cell(value=datetime.date(2023, 6, 1))
        restored = Cell.from_dict(cell.to_dict())
        assert restored.value == datetime.date(2023, 6, 1)


class TestCellStyle:
    def test_default_colors(self):
        assert DEFAULT_STYLE.background_rgb() == (1.0, 1.0, 1.0)
        assert DEFAULT_STYLE.font_rgb() == (0.0, 0.0, 0.0)

    def test_hex_parsing(self):
        style = CellStyle(background_color="#FF0000", font_color="#00FF00")
        assert style.background_rgb() == (1.0, 0.0, 0.0)
        assert style.font_rgb() == (0.0, 1.0, 0.0)

    def test_invalid_hex_raises(self):
        with pytest.raises(ValueError):
            CellStyle(background_color="#FFF").background_rgb()

    def test_roundtrip(self):
        style = CellStyle(bold=True, italic=True, font_size=14.0, border_top=True)
        assert CellStyle.from_dict(style.to_dict()) == style

    def test_equality_and_hash(self):
        assert CellStyle(bold=True) == CellStyle(bold=True)
        assert CellStyle(bold=True) != CellStyle(bold=False)
