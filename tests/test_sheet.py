"""Tests for the sparse Sheet grid."""

import pytest

from repro.sheet import Cell, CellAddress, CellStyle, Sheet
from repro.sheet.addressing import RangeAddress, parse_range_address
from repro.sheet.cell import CellType


class TestSheetBasics:
    def test_empty_sheet(self):
        sheet = Sheet("Empty")
        assert sheet.n_rows == 0
        assert sheet.n_cols == 0
        assert sheet.n_cells == 0
        assert sheet.used_range() is None
        assert sheet.get("A1").is_empty

    def test_set_and_get_by_a1(self):
        sheet = Sheet()
        sheet.set("B2", 42)
        assert sheet.get("B2").value == 42
        assert sheet["B2"].value == 42

    def test_set_and_get_by_tuple(self):
        sheet = Sheet()
        sheet.set((1, 1), "x")
        assert sheet.get(CellAddress(1, 1)).value == "x"

    def test_extent_grows(self):
        sheet = Sheet()
        sheet.set("C10", 1)
        assert sheet.n_rows == 10
        assert sheet.n_cols == 3

    def test_contains(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        assert "A1" in sheet
        assert "B2" not in sheet

    def test_delete(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.delete("A1")
        assert sheet.get("A1").is_empty

    def test_set_cell_object(self):
        sheet = Sheet()
        sheet.set_cell("A1", Cell(value=7, style=CellStyle(bold=True)))
        assert sheet.get("A1").style.bold

    def test_used_range(self):
        sheet = Sheet()
        sheet.set("B2", 1)
        sheet.set("D5", 2)
        assert sheet.used_range() == parse_range_address("B2:D5")


class TestSheetIteration:
    def test_cells_sorted(self):
        sheet = Sheet()
        sheet.set("B1", 2)
        sheet.set("A1", 1)
        addresses = [addr.to_a1() for addr, __ in sheet.cells()]
        assert addresses == ["A1", "B1"]

    def test_formula_cells(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.set("A2", formula="=A1*2")
        formulas = sheet.formula_cells()
        assert len(formulas) == 1
        assert formulas[0][0].to_a1() == "A2"

    def test_cells_in_range_includes_empty(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        cells = list(sheet.cells_in_range(parse_range_address("A1:A3")))
        assert len(cells) == 3
        assert cells[1][1].is_empty

    def test_values_in_range(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.set("A2", 2)
        assert sheet.values_in_range(parse_range_address("A1:A3")) == [1, 2, None]

    def test_row_and_column_values(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.set("B1", 2)
        sheet.set("A2", 3)
        assert sheet.row_values(0) == [1, 2]
        assert sheet.column_values(0) == [1, 3]


class TestSheetStructuralEdits:
    def _make(self) -> Sheet:
        sheet = Sheet()
        sheet.set("A1", "header")
        sheet.set("A2", 1)
        sheet.set("A3", 2)
        sheet.set("B2", "x")
        return sheet

    def test_insert_rows_shifts_down(self):
        sheet = self._make()
        sheet.insert_rows(1, 2)
        assert sheet.get("A1").value == "header"
        assert sheet.get("A4").value == 1
        assert sheet.get("A2").is_empty

    def test_delete_rows_shifts_up(self):
        sheet = self._make()
        sheet.delete_rows(1, 1)
        assert sheet.get("A2").value == 2
        assert sheet.get("B2").is_empty

    def test_insert_cols(self):
        sheet = self._make()
        sheet.insert_cols(0, 1)
        assert sheet.get("B1").value == "header"
        assert sheet.get("A1").is_empty

    def test_delete_cols(self):
        sheet = self._make()
        sheet.delete_cols(0, 1)
        assert sheet.get("A2").value == "x"

    def test_noop_on_zero_count(self):
        sheet = self._make()
        sheet.insert_rows(0, 0)
        sheet.delete_cols(0, 0)
        assert sheet.get("A1").value == "header"

    def test_copy_is_independent(self):
        sheet = self._make()
        clone = sheet.copy("clone")
        clone.set("A1", "changed")
        assert sheet.get("A1").value == "header"
        assert clone.name == "clone"
        assert clone.n_rows == sheet.n_rows


class TestSheetCounts:
    def test_count_by_type(self, survey_sheet):
        counts = survey_sheet.count_by_type()
        assert counts[CellType.FORMULA] == 1
        assert counts[CellType.TEXT] > 10

    def test_n_formulas(self, survey_sheet):
        assert survey_sheet.n_formulas() == 1
