"""Shared fixtures: small corpora and a session-scoped trained encoder."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.corpus import build_enterprise_corpus, build_training_universe
from repro.features import FeatureConfig
from repro.models import ModelConfig, TrainingConfig, train_models
from repro.sheet import Sheet, Workbook
from repro.weaksup import generate_training_pairs


@pytest.fixture(autouse=True)
def _seed_global_rngs(request):
    """Reset the *global* RNGs before every test.

    Library code is written against explicit ``np.random.default_rng``
    generators, but anything that touches ``random`` or the legacy
    ``np.random`` global state would otherwise make test outcomes depend
    on execution order.  Run with ``--repro-seed N`` (registered in the
    repository-root ``conftest.py``) to reproduce a failure under a
    specific seed.
    """
    seed = request.config.getoption("--repro-seed", 20240521)
    random.seed(seed)
    np.random.seed(seed % (2**32))


@pytest.fixture(scope="session")
def training_universe():
    """A small training universe of workbook families plus singletons."""
    return build_training_universe(n_families=6, copies_per_family=3, n_singletons=4, seed=7)


@pytest.fixture(scope="session")
def training_pairs(training_universe):
    """Weak-supervision pairs harvested from the training universe."""
    return generate_training_pairs(training_universe, seed=0)


@pytest.fixture(scope="session")
def trained_encoder(training_pairs):
    """A trained SheetEncoder, shared across the whole test session.

    Training is intentionally small (few epochs, small window) so the full
    suite stays fast; individual tests that need an untrained encoder build
    their own.
    """
    model_config = ModelConfig(features=FeatureConfig(window_rows=20, window_cols=8))
    training_config = TrainingConfig(epochs=6, seed=0)
    encoder, __ = train_models(training_pairs, model_config, training_config)
    return encoder


@pytest.fixture(scope="session")
def pge_corpus():
    """The synthetic PGE enterprise corpus (highly templated)."""
    return build_enterprise_corpus("PGE")


@pytest.fixture(scope="session")
def cisco_corpus():
    """The synthetic Cisco enterprise corpus (many singletons)."""
    return build_enterprise_corpus("Cisco")


@pytest.fixture()
def survey_sheet() -> Sheet:
    """A small hand-built sheet mirroring the paper's Figure 1 example."""
    sheet = Sheet("Responses")
    sheet.set("A1", "Color survey")
    sheet.set("C6", "Answer")
    colors = ["Brown", "Green", "Blue"]
    for offset in range(30):
        sheet.set((6 + offset, 2), colors[offset % 3])
    sheet.set("C41", "Brown")
    sheet.set("D41", formula="=COUNTIF(C7:C37,C41)")
    return sheet


@pytest.fixture()
def simple_workbook() -> Workbook:
    """A two-sheet workbook with values, formulas and styles."""
    workbook = Workbook(name="simple.xlsx", last_modified=123.0)
    first = workbook.add_sheet("Data")
    for row in range(5):
        first.set((row + 1, 0), f"item {row}")
        first.set((row + 1, 1), float(row + 1))
    first.set("B7", formula="=SUM(B2:B6)")
    second = workbook.add_sheet("Notes")
    second.set("A1", "notes go here")
    return workbook


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator for tests that need randomness."""
    return np.random.default_rng(42)
