"""Tests for the NumPy neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dropout,
    Flatten,
    L2Normalize,
    Linear,
    PerCellLinear,
    ReLU,
    Sequential,
    Tanh,
)


def numeric_gradient_check(model: Sequential, x: np.ndarray, n_samples: int = 4) -> float:
    """Max relative error between analytic and numeric parameter gradients."""
    rng = np.random.default_rng(0)
    target = rng.standard_normal(model.forward(x).shape).astype(np.float32)

    def loss() -> float:
        out = model.forward(x)
        return 0.5 * float(np.sum((out - target) ** 2))

    model.zero_grad()
    out = model.forward(x)
    model.backward(out - target)
    analytic = {name: grad.copy() for name, __, grad in model.parameter_gradients()}

    eps = 1e-3
    max_error = 0.0
    for name, param, __ in model.parameter_gradients():
        flat = param.reshape(-1)
        indices = rng.choice(flat.size, size=min(n_samples, flat.size), replace=False)
        for index in indices:
            original = flat[index]
            flat[index] = original + eps
            loss_plus = loss()
            flat[index] = original - eps
            loss_minus = loss()
            flat[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            reference = analytic[name].reshape(-1)[index]
            error = abs(numeric - reference) / (abs(numeric) + abs(reference) + 1e-4)
            max_error = max(max_error, error)
    return max_error


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3)
        out = layer.forward(np.ones((5, 4), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_broadcasts_over_leading_dims(self):
        layer = PerCellLinear(4, 2)
        out = layer.forward(np.ones((2, 3, 5, 4), dtype=np.float32))
        assert out.shape == (2, 3, 5, 2)

    def test_gradient_check(self):
        model = Sequential([Linear(6, 4), ReLU(), Linear(4, 2)])
        x = np.random.default_rng(1).standard_normal((3, 6)).astype(np.float32)
        assert numeric_gradient_check(model, x) < 0.03

    def test_gradients_accumulate(self):
        layer = Linear(3, 2)
        x = np.ones((1, 3), dtype=np.float32)
        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((1, 2), dtype=np.float32))
        first = layer.grads["W"].copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2), dtype=np.float32))
        assert np.allclose(layer.grads["W"], 2 * first)


class TestActivations:
    def test_relu_forward_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        assert np.allclose(layer.forward(x), [[0.0, 2.0]])
        grad = layer.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        assert np.allclose(grad, [[0.0, 5.0]])

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-10.0, 0.0, 10.0]], dtype=np.float32))
        assert np.all(np.abs(out) <= 1.0)

    def test_dropout_identity_at_inference(self):
        layer = Dropout(0.5)
        x = np.ones((4, 8), dtype=np.float32)
        assert np.allclose(layer.forward(x, training=False), x)

    def test_dropout_masks_in_training(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((4, 100), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert np.any(out == 0.0)
        assert out.mean() == pytest.approx(1.0, abs=0.25)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConvAndPool:
    def test_conv_shape_same_padding(self):
        layer = Conv2D(3, 5, kernel_size=3)
        out = layer.forward(np.ones((2, 8, 6, 3), dtype=np.float32))
        assert out.shape == (2, 8, 6, 5)

    def test_conv_translation_equivariance(self):
        rng = np.random.default_rng(0)
        layer = Conv2D(1, 2, kernel_size=3, rng=rng)
        image = np.zeros((1, 10, 10, 1), dtype=np.float32)
        image[0, 4, 4, 0] = 1.0
        shifted = np.roll(image, 2, axis=1)
        out = layer.forward(image)
        out_shifted = layer.forward(shifted)
        assert np.allclose(np.roll(out, 2, axis=1)[:, 3:9], out_shifted[:, 3:9], atol=1e-5)

    def test_conv_gradient_check(self):
        model = Sequential([Conv2D(2, 3, kernel_size=3), ReLU(), Flatten(), Linear(4 * 4 * 3, 2)])
        x = np.random.default_rng(2).standard_normal((2, 4, 4, 2)).astype(np.float32)
        assert numeric_gradient_check(model, x) < 0.03

    def test_avgpool_values(self):
        layer = AvgPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avgpool_backward_distributes_evenly(self):
        layer = AvgPool2D(2)
        x = np.ones((1, 4, 4, 1), dtype=np.float32)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2, 2, 1), dtype=np.float32))
        assert np.allclose(grad, 0.25)

    def test_avgpool_truncates_odd_sizes(self):
        out = AvgPool2D(2).forward(np.ones((1, 5, 5, 2), dtype=np.float32))
        assert out.shape == (1, 2, 2, 2)


class TestFlattenAndNormalize:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).standard_normal((3, 4, 5)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (3, 20)
        assert layer.backward(out).shape == x.shape

    def test_l2_normalize_unit_norm(self):
        layer = L2Normalize()
        x = np.random.default_rng(0).standard_normal((4, 16)).astype(np.float32) * 10
        out = layer.forward(x)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-5)

    def test_l2_normalize_gradient_orthogonal_to_output(self):
        layer = L2Normalize()
        x = np.random.default_rng(0).standard_normal((2, 8)).astype(np.float32)
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        # The Jacobian of x -> x/||x|| projects out the output direction, so
        # the input gradient has no component along the normalized output.
        assert np.allclose(np.sum(grad_in * out, axis=1), 0.0, atol=1e-5)


class TestSequentialPersistence:
    def test_state_dict_roundtrip(self):
        model = Sequential([Linear(4, 3), ReLU(), Linear(3, 2)])
        clone = Sequential([Linear(4, 3), ReLU(), Linear(3, 2, rng=np.random.default_rng(99))])
        clone.load_state_dict(model.state_dict())
        x = np.random.default_rng(0).standard_normal((2, 4)).astype(np.float32)
        assert np.allclose(model.forward(x), clone.forward(x))

    def test_save_load_file(self, tmp_path):
        model = Sequential([Linear(4, 3), ReLU(), Linear(3, 2)])
        path = tmp_path / "model.npz"
        model.save(path)
        clone = Sequential([Linear(4, 3), ReLU(), Linear(3, 2, rng=np.random.default_rng(5))])
        clone.load(path)
        x = np.ones((1, 4), dtype=np.float32)
        assert np.allclose(model.forward(x), clone.forward(x))

    def test_load_shape_mismatch_raises(self):
        model = Sequential([Linear(4, 3)])
        other = Sequential([Linear(4, 2)])
        with pytest.raises(ValueError):
            other.load_state_dict(model.state_dict())

    def test_missing_key_raises(self):
        model = Sequential([Linear(4, 3)])
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_n_parameters(self):
        model = Sequential([Linear(4, 3), Linear(3, 2)])
        assert model.n_parameters() == (4 * 3 + 3) + (3 * 2 + 2)
