"""Tests for cell featurization and view-window extraction."""

import numpy as np
import pytest

from repro.features import CellFeaturizer, FeatureConfig, WindowFeaturizer, region_window_bounds
from repro.sheet import Cell, CellAddress, CellStyle, Sheet


@pytest.fixture()
def config() -> FeatureConfig:
    return FeatureConfig(window_rows=10, window_cols=6, content_embedding_dim=16)


@pytest.fixture()
def featurizer(config) -> CellFeaturizer:
    return CellFeaturizer(config)


class TestCellFeaturizer:
    def test_dimension_consistency(self, featurizer):
        vector = featurizer.featurize(Cell(value="hello"))
        assert vector.shape == (featurizer.dimension,)

    def test_empty_cell_mostly_zero(self, featurizer):
        vector = featurizer.featurize(Cell())
        # only the type one-hot (EMPTY), default style features and validity flag are set
        assert np.count_nonzero(vector) < 10

    def test_invalid_cell_flag(self, featurizer):
        valid = featurizer.featurize(Cell(value=1), valid=True)
        invalid = featurizer.featurize(Cell(value=1), valid=False)
        assert valid[-1] == 1.0
        assert invalid[-1] == 0.0

    def test_distinct_types_have_distinct_type_features(self, featurizer):
        text = featurizer.featurize(Cell(value="abc"))
        number = featurizer.featurize(Cell(value=3.0))
        content_slice = featurizer.content_feature_slice()
        assert not np.allclose(text[content_slice], number[content_slice])

    def test_style_features_reflect_style(self, featurizer):
        plain = featurizer.featurize(Cell(value="x"))
        styled = featurizer.featurize(Cell(value="x", style=CellStyle(bold=True, background_color="#FF0000")))
        style_slice = featurizer.style_feature_slice()
        assert not np.allclose(plain[style_slice], styled[style_slice])

    def test_content_ablation_zeroes_content_block(self):
        config = FeatureConfig(content_embedding_dim=16, use_content_features=False)
        featurizer = CellFeaturizer(config)
        vector = featurizer.featurize(Cell(value="Total"))
        assert np.allclose(vector[featurizer.content_feature_slice()], 0.0)
        assert vector.shape == (featurizer.dimension,)

    def test_style_ablation_zeroes_style_block(self):
        config = FeatureConfig(content_embedding_dim=16, use_style_features=False)
        featurizer = CellFeaturizer(config)
        vector = featurizer.featurize(Cell(value="Total", style=CellStyle(bold=True)))
        assert np.allclose(vector[featurizer.style_feature_slice()], 0.0)

    def test_similar_text_similar_embeddings(self, featurizer):
        left = featurizer.featurize(Cell(value="Total Sales"))
        right = featurizer.featurize(Cell(value="Total Revenue"))
        other = featurizer.featurize(Cell(value="zzz unrelated qqq"))
        content = featurizer.content_feature_slice()
        sim_related = float(np.dot(left[content], right[content]))
        sim_unrelated = float(np.dot(left[content], other[content]))
        assert sim_related > sim_unrelated


class TestWindowBounds:
    def test_center_in_middle(self):
        assert region_window_bounds(CellAddress(50, 5), 20, 8) == (40, 1)

    def test_center_near_origin_is_not_clamped(self):
        top, left = region_window_bounds(CellAddress(1, 0), 20, 8)
        assert top == -9
        assert left == -4


class TestWindowFeaturizer:
    def test_window_shape(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        sheet.set("A1", 1)
        window = featurizer.featurize_sheet(sheet)
        assert window.shape == featurizer.window_shape

    def test_sheet_window_anchored_top_left(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        sheet.set("A1", "corner")
        window = featurizer.featurize_sheet(sheet)
        corner = featurizer.cell_featurizer.featurize(sheet.get("A1"), valid=True)
        assert np.allclose(window[0, 0], corner)

    def test_out_of_bounds_cells_marked_invalid(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        sheet.set("A1", 1)  # 1x1 sheet
        window = featurizer.featurize_sheet(sheet)
        assert window[0, 0, -1] == 1.0
        assert window[5, 5, -1] == 0.0

    def test_region_window_centered(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        for row in range(30):
            sheet.set((row, 0), row)
        center = CellAddress(15, 0)
        window = featurizer.featurize_region(sheet, center)
        center_features = featurizer.cell_featurizer.featurize(sheet.get(center), valid=True)
        assert np.allclose(window[config.window_rows // 2, config.window_cols // 2], center_features)

    def test_one_cell_shift_changes_window(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        for row in range(40):
            sheet.set((row, 2), f"value {row}")
        left = featurizer.featurize_region(sheet, CellAddress(20, 2))
        right = featurizer.featurize_region(sheet, CellAddress(21, 2))
        assert not np.allclose(left, right)

    def test_blank_center_masks_center_cell(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        for row in range(20):
            sheet.set((row, 2), row)
        center = CellAddress(10, 2)
        plain = featurizer.featurize_region(sheet, center)
        blanked = featurizer.featurize_region(sheet, center, blank_center=True)
        row_offset, col_offset = config.window_rows // 2, config.window_cols // 2
        assert not np.allclose(plain[row_offset, col_offset], blanked[row_offset, col_offset])
        assert blanked[row_offset, col_offset, -1] == 0.0
        # all other cells unchanged
        mask = np.ones(plain.shape[:2], dtype=bool)
        mask[row_offset, col_offset] = False
        assert np.allclose(plain[mask], blanked[mask])

    def test_featurize_regions_batch(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        sheet.set("C5", 1)
        centers = [CellAddress(4, 2), CellAddress(5, 2)]
        batch = featurizer.featurize_regions(sheet, centers)
        assert batch.shape == (2,) + featurizer.window_shape

    def test_empty_centers(self, config):
        featurizer = WindowFeaturizer(config)
        assert featurizer.featurize_regions(Sheet(), []).shape[0] == 0

    def test_cache_returns_consistent_results(self, config):
        featurizer = WindowFeaturizer(config)
        sheet = Sheet()
        sheet.set("B2", "cached")
        first = featurizer.featurize_sheet(sheet)
        second = featurizer.featurize_sheet(sheet)
        assert np.allclose(first, second)
        featurizer.clear_cache()
        third = featurizer.featurize_sheet(sheet)
        assert np.allclose(first, third)
