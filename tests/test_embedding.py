"""Tests for the text-embedding substrate."""

import numpy as np
import pytest

from repro.embedding import (
    CachingEmbedder,
    HashedSemanticEmbedder,
    WordAveragingEmbedder,
    create_embedder,
)


@pytest.fixture(params=["sbert", "glove"])
def embedder(request):
    return create_embedder(request.param)


class TestEmbedderContract:
    def test_dimension_and_dtype(self, embedder):
        vector = embedder.embed("Total Sales")
        assert vector.shape == (embedder.dimension,)
        assert vector.dtype == np.float32

    def test_deterministic(self, embedder):
        left = embedder.embed("Quarterly Revenue")
        right = embedder.embed("Quarterly Revenue")
        assert np.allclose(left, right)

    def test_empty_string_is_zero(self, embedder):
        assert np.allclose(embedder.embed(""), 0.0)

    def test_unit_norm_for_nonempty(self, embedder):
        vector = embedder.embed("hello world")
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-5)

    def test_batch_matches_single(self, embedder):
        texts = ["alpha", "beta", "gamma"]
        batch = embedder.embed_batch(texts)
        assert batch.shape == (3, embedder.dimension)
        for row, text in zip(batch, texts):
            assert np.allclose(row, embedder.embed(text))

    def test_empty_batch(self, embedder):
        assert embedder.embed_batch([]).shape == (0, embedder.dimension)


class TestSemanticNeighbourhoods:
    def test_similar_strings_closer_than_dissimilar(self):
        embedder = HashedSemanticEmbedder()
        total_sales = embedder.embed("Total Sales")
        total_revenue = embedder.embed("Total Revenue")
        banana = embedder.embed("banana smoothie recipe")
        sim_related = embedder.cosine_similarity(total_sales, total_revenue)
        sim_unrelated = embedder.cosine_similarity(total_sales, banana)
        assert sim_related > sim_unrelated

    def test_date_like_strings_close(self):
        embedder = HashedSemanticEmbedder()
        sim = embedder.cosine_similarity(
            embedder.embed("2020-01-01"), embedder.embed("2020-01-02")
        )
        assert sim > 0.5

    def test_word_average_shares_words(self):
        embedder = WordAveragingEmbedder()
        sim_related = embedder.cosine_similarity(
            embedder.embed("North region"), embedder.embed("South region")
        )
        sim_unrelated = embedder.cosine_similarity(
            embedder.embed("North region"), embedder.embed("banana smoothie")
        )
        assert sim_related > sim_unrelated

    def test_glove_standin_cheaper_than_sbert_standin(self):
        assert WordAveragingEmbedder().dimension < HashedSemanticEmbedder().dimension


class TestCachingEmbedder:
    def test_results_identical_to_inner(self):
        inner = HashedSemanticEmbedder(64)
        caching = CachingEmbedder(inner)
        assert np.allclose(caching.embed("Revenue"), inner.embed("Revenue"))

    def test_cache_grows_and_hits(self):
        caching = CachingEmbedder(HashedSemanticEmbedder(64))
        caching.embed("a")
        caching.embed("a")
        caching.embed("b")
        assert caching.cache_size == 2

    def test_eviction_bound(self):
        caching = CachingEmbedder(HashedSemanticEmbedder(16), max_entries=3)
        for text in "abcdef":
            caching.embed(text)
        assert caching.cache_size == 3

    def test_cached_vectors_are_read_only(self):
        """Regression: a caller mutating the returned array must not be able
        to corrupt future cache hits."""
        caching = CachingEmbedder(HashedSemanticEmbedder(32))
        first = caching.embed("Revenue")
        with pytest.raises(ValueError):
            first[0] = 123.0
        second = caching.embed("Revenue")
        assert np.allclose(second, HashedSemanticEmbedder(32).embed("Revenue"))

    def test_cache_hit_returns_unchanged_values(self):
        inner = HashedSemanticEmbedder(16)
        caching = CachingEmbedder(inner)
        expected = inner.embed("Total").copy()
        for __ in range(3):
            assert np.array_equal(caching.embed("Total"), expected)


class TestFactory:
    def test_known_names(self):
        assert create_embedder("sentence-bert").name == "sentence-bert"
        assert create_embedder("glove").name == "glove"

    def test_dimension_override(self):
        assert create_embedder("sbert", 128).dimension == 128

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            create_embedder("word2vec")
