"""Tests for workbooks and JSON (de)serialization."""

import pytest

from repro.sheet import Sheet, Workbook
from repro.sheet.io import (
    FORMAT_VERSION,
    WorkbookFormatError,
    load_workbook_json,
    save_workbook_json,
    workbook_from_dict,
    workbook_to_dict,
)
from repro.sheet.style import CellStyle


class TestWorkbook:
    def test_add_and_get(self):
        workbook = Workbook("demo.xlsx")
        sheet = workbook.add_sheet("Data")
        assert workbook.get_sheet("Data") is sheet
        assert workbook["Data"] is sheet
        assert "Data" in workbook

    def test_add_by_name(self):
        workbook = Workbook()
        sheet = workbook.add_sheet("Summary")
        assert isinstance(sheet, Sheet)
        assert sheet.name == "Summary"

    def test_duplicate_name_rejected(self):
        workbook = Workbook()
        workbook.add_sheet("S")
        with pytest.raises(ValueError):
            workbook.add_sheet("S")

    def test_sheet_order_preserved(self):
        workbook = Workbook()
        for name in ["Instructions", "WorkshopDetails", "Data"]:
            workbook.add_sheet(name)
        assert workbook.sheet_names == ["Instructions", "WorkshopDetails", "Data"]

    def test_len_and_iter(self, simple_workbook):
        assert len(simple_workbook) == 2
        assert [sheet.name for sheet in simple_workbook] == ["Data", "Notes"]

    def test_remove_sheet(self):
        workbook = Workbook()
        workbook.add_sheet("A")
        workbook.remove_sheet("A")
        assert "A" not in workbook

    def test_counts(self, simple_workbook):
        assert simple_workbook.n_formulas() == 1
        assert simple_workbook.n_cells() > 10


class TestWorkbookSerialization:
    def test_dict_roundtrip(self, simple_workbook):
        restored = workbook_from_dict(workbook_to_dict(simple_workbook))
        assert restored.name == simple_workbook.name
        assert restored.last_modified == simple_workbook.last_modified
        assert restored.sheet_names == simple_workbook.sheet_names
        assert restored["Data"].get("B7").formula == "=SUM(B2:B6)"
        assert restored["Data"].get("B2").value == 1.0

    def test_styles_survive_roundtrip(self):
        workbook = Workbook("styled.xlsx")
        sheet = workbook.add_sheet("S")
        sheet.set("A1", "Header", style=CellStyle(bold=True, background_color="#4472C4"))
        restored = workbook_from_dict(workbook_to_dict(workbook))
        assert restored["S"].get("A1").style.bold
        assert restored["S"].get("A1").style.background_color == "#4472C4"

    def test_file_roundtrip(self, simple_workbook, tmp_path):
        path = tmp_path / "nested" / "wb.json"
        save_workbook_json(simple_workbook, path)
        assert path.exists()
        restored = load_workbook_json(path)
        assert restored.sheet_names == simple_workbook.sheet_names
        assert restored["Data"].n_cells == simple_workbook["Data"].n_cells

    def test_empty_workbook_roundtrip(self):
        workbook = Workbook("empty.xlsx")
        restored = workbook_from_dict(workbook_to_dict(workbook))
        assert len(restored) == 0

    def test_extent_beyond_max_cell_survives_roundtrip(self):
        # delete() never shrinks the extent, so the extent can exceed the
        # max written cell; a round trip must not re-derive (and thereby
        # shrink) it.
        workbook = Workbook("wb")
        sheet = workbook.add_sheet("S")
        sheet.set("A1", 1.0)
        sheet.set("E9", 2.0)
        sheet.delete("E9")
        assert (sheet.n_rows, sheet.n_cols) == (9, 5)
        restored = workbook_from_dict(workbook_to_dict(workbook))["S"]
        assert (restored.n_rows, restored.n_cols) == (9, 5)


class TestWorkbookFormatValidation:
    def test_format_version_is_stamped_and_enforced(self):
        payload = workbook_to_dict(Workbook("wb"))
        assert payload["format_version"] == FORMAT_VERSION
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(WorkbookFormatError, match="format_version"):
            workbook_from_dict(payload)

    def test_missing_version_is_accepted(self):
        # Hand-written fixtures and bare wire payloads carry no stamp.
        restored = workbook_from_dict({"name": "wb", "sheets": []})
        assert restored.name == "wb"

    def test_malformed_cells_container_raises(self):
        payload = {
            "name": "wb",
            "sheets": [{"name": "S", "cells": [["A1", {"value": 1.0}]]}],
        }
        with pytest.raises(WorkbookFormatError, match="cells"):
            workbook_from_dict(payload)

    def test_malformed_cell_record_raises(self):
        payload = {"name": "wb", "sheets": [{"name": "S", "cells": {"A1": 3.5}}]}
        with pytest.raises(WorkbookFormatError, match="A1"):
            workbook_from_dict(payload)

    def test_invalid_cell_address_raises(self):
        payload = {
            "name": "wb",
            "sheets": [{"name": "S", "cells": {"not-an-address": {"value": 1.0}}}],
        }
        with pytest.raises(WorkbookFormatError, match="address"):
            workbook_from_dict(payload)

    def test_malformed_sheets_container_raises(self):
        with pytest.raises(WorkbookFormatError, match="sheets"):
            workbook_from_dict({"name": "wb", "sheets": {"S": {}}})

    def test_non_object_payloads_raise(self):
        with pytest.raises(WorkbookFormatError):
            workbook_from_dict(["not", "a", "workbook"])
        from repro.sheet.io import sheet_from_dict

        with pytest.raises(WorkbookFormatError):
            sheet_from_dict("not a sheet")

    def test_format_error_is_a_value_error(self):
        # The server layer maps ValueError to HTTP 400; the typed error
        # must stay inside that contract.
        assert issubclass(WorkbookFormatError, ValueError)
