"""Tests for formula classification (complexity and type buckets)."""

import pytest

from repro.formula import FormulaCategory, classify_formula, complexity_bucket, formula_complexity, functions_used
from repro.formula.classify import row_bucket


class TestFunctionsUsed:
    def test_single_function(self):
        assert functions_used("=SUM(A1:A5)") == ["SUM"]

    def test_nested_functions_preorder(self):
        assert functions_used("=ROUND(SUM(A1:A5),2)") == ["ROUND", "SUM"]

    def test_no_functions(self):
        assert functions_used("=A1+B1") == []


class TestComplexity:
    def test_simple_reference(self):
        assert formula_complexity("=A1") == 1

    def test_countif(self):
        assert formula_complexity("=COUNTIF(C7:C37,C41)") == 3

    def test_complexity_monotone_with_nesting(self):
        assert formula_complexity("=SUM(A1:A5)") < formula_complexity("=ROUND(SUM(A1:A5)/COUNT(B1:B5),2)")

    @pytest.mark.parametrize(
        "formula,bucket",
        [
            ("=A1", "l<3"),
            ("=A1+B1", "l=3"),
            ("=ROUND(A1/B1,2)", "3<l<7"),
            ("=IF(A1>B1,SUM(C1:C9),AVERAGE(D1:D9))", "7<=l<20"),
        ],
    )
    def test_buckets(self, formula, bucket):
        assert complexity_bucket(formula) == bucket

    def test_large_bucket(self):
        formula = "=IF(AND(A1>1,B1>1),SUM(C1:C9)+SUM(D1:D9)+SUM(E1:E9),CONCATENATE(F1,G1,H1,I1))"
        assert complexity_bucket(formula) == "20<=l"


class TestRowBuckets:
    @pytest.mark.parametrize(
        "rows,bucket",
        [(10, "r<40"), (39, "r<40"), (40, "40<=r<60"), (75, "60<=r<100"), (150, "100<=r<250"), (600, "250<=r")],
    )
    def test_boundaries(self, rows, bucket):
        assert row_bucket(rows) == bucket


class TestTypeClassification:
    @pytest.mark.parametrize(
        "formula",
        ["=IF(A1>B1,1,0)", "=COUNTIF(C1:C9,C10)", "=SUMIF(A1:A9,\">5\")", "=AND(A1,B1)", "=A1>B1"],
    )
    def test_conditional(self, formula):
        assert classify_formula(formula) is FormulaCategory.CONDITIONAL

    @pytest.mark.parametrize(
        "formula", ["=SUM(A1:A5)", "=AVERAGE(A1:A5)", "=A1*B1", "=ROUND(A1,2)", "=MAX(A1:A5)"]
    )
    def test_math(self, formula):
        assert classify_formula(formula) is FormulaCategory.MATH

    @pytest.mark.parametrize(
        "formula", ["=CONCATENATE(A1,B1)", "=LEFT(A1,3)", "=UPPER(A1)", '=A1&" units"']
    )
    def test_string(self, formula):
        assert classify_formula(formula) is FormulaCategory.STRING

    @pytest.mark.parametrize("formula", ["=YEAR(A1)", "=MONTH(A1)", "=DATE(2024,1,1)"])
    def test_date(self, formula):
        assert classify_formula(formula) is FormulaCategory.DATE

    def test_other(self):
        assert classify_formula("=A1") is FormulaCategory.OTHER

    def test_conditional_takes_priority_over_math(self):
        assert classify_formula("=IF(A1>0,SUM(B1:B9),0)") is FormulaCategory.CONDITIONAL
