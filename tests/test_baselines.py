"""Tests for the baseline predictors."""

import numpy as np
import pytest

from repro.baselines import (
    MondrianBaseline,
    MondrianConfig,
    PromptConfig,
    SimulatedLLMBaseline,
    SpreadsheetCoderBaseline,
    WeakSupervisionBaseline,
    all_prompt_variants,
)
from repro.baselines.common import (
    column_header,
    copy_formula_to,
    nearest_formula_cell,
    numeric_run_above,
    row_label,
)
from repro.baselines.mondrian import extract_regions, sheet_similarity
from repro.corpus import sample_test_cases, split_corpus
from repro.evaluation import run_method_on_cases
from repro.sheet import CellAddress, Sheet, Workbook


@pytest.fixture(scope="module")
def pge_workload(pge_corpus):
    test, reference = split_corpus(pge_corpus, 0.15, "timestamp")
    return sample_test_cases("PGE", test, seed=0), reference


@pytest.fixture()
def totals_sheet() -> Sheet:
    sheet = Sheet("Report")
    sheet.set("A1", "Item")
    sheet.set("B1", "Amount")
    for row in range(1, 6):
        sheet.set((row, 0), f"item {row}")
        sheet.set((row, 1), float(row * 10))
    sheet.set("A7", "Total")
    return sheet


class TestCommonHelpers:
    def test_nearest_formula_cell(self):
        sheet = Sheet()
        sheet.set("A1", formula="=SUM(B1:B2)")
        sheet.set("D9", formula="=MAX(B1:B2)")
        address, formula = nearest_formula_cell(sheet, CellAddress(8, 3))
        assert address.to_a1() == "D9"
        assert "MAX" in formula

    def test_nearest_formula_cell_empty_sheet(self):
        assert nearest_formula_cell(Sheet(), CellAddress(0, 0)) is None

    def test_copy_formula_shifts_references(self):
        result = copy_formula_to("=SUM(B2:B6)", CellAddress(6, 1), CellAddress(9, 1))
        assert result == "=SUM(B5:B9)"

    def test_copy_formula_off_sheet_returns_none(self):
        assert copy_formula_to("=SUM(A1:A3)", CellAddress(5, 0), CellAddress(0, 0)) is None

    def test_numeric_run_above(self, totals_sheet):
        run = numeric_run_above(totals_sheet, CellAddress(6, 1))
        assert run is not None
        assert run[0].to_a1() == "B2"
        assert run[1].to_a1() == "B6"

    def test_numeric_run_above_none_when_no_numbers(self, totals_sheet):
        assert numeric_run_above(totals_sheet, CellAddress(6, 3)) is None

    def test_row_label_and_column_header(self, totals_sheet):
        assert row_label(totals_sheet, CellAddress(6, 1)) == "Total"
        assert column_header(totals_sheet, CellAddress(3, 1)) == "Amount"


class TestWeakSupervisionBaseline:
    def test_requires_confident_sheet_name(self, pge_workload):
        cases, reference = pge_workload
        baseline = WeakSupervisionBaseline()
        baseline.fit(reference)
        common = Sheet("Sheet1")
        common.set("A1", 1)
        assert baseline.predict(common, CellAddress(5, 0)) is None

    def test_predicts_from_matching_sheet_name(self):
        reference = Workbook("ref.xlsx")
        sheet = reference.add_sheet("Quarterly Widget Report")
        for row in range(5):
            sheet.set((row + 1, 1), row + 1.0)
        sheet.set("B7", formula="=SUM(B2:B6)")
        fillers = []
        for index in range(20):  # make the name rare relative to the universe
            filler = Workbook(f"filler_{index}.xlsx")
            filler.add_sheet(f"Other {index}")
            fillers.append(filler)
        baseline = WeakSupervisionBaseline()
        baseline.fit([reference] + fillers)

        target = Sheet("Quarterly Widget Report")
        for row in range(5):
            target.set((row + 1, 1), row + 2.0)
        prediction = baseline.predict(target, CellAddress(6, 1))
        assert prediction is not None
        assert prediction.formula == "=SUM(B2:B6)"

    def test_quality_profile_high_precision_low_recall(self, pge_workload, trained_encoder):
        from repro.core import AutoFormula, AutoFormulaConfig

        cases, reference = pge_workload
        weak = run_method_on_cases(WeakSupervisionBaseline(), reference, cases, "PGE")
        auto = run_method_on_cases(
            AutoFormula(trained_encoder, AutoFormulaConfig()), reference, cases, "PGE"
        )
        assert weak.metrics.recall <= auto.metrics.recall


class TestMondrianBaseline:
    def test_extract_regions_groups_same_type_blocks(self, totals_sheet):
        regions = extract_regions(totals_sheet)
        assert len(regions) >= 2
        types = {region.cell_type for region in regions}
        assert "text" in types and "numeric" in types

    def test_sheet_similarity_self_is_high(self, totals_sheet):
        regions = extract_regions(totals_sheet)
        assert sheet_similarity(regions, regions) > 0.9

    def test_sheet_similarity_disjoint_types_low(self):
        numbers = Sheet()
        text = Sheet()
        for row in range(5):
            numbers.set((row, 0), row)
            text.set((row, 0), f"word {row}")
        assert sheet_similarity(extract_regions(numbers), extract_regions(text)) < 0.3

    def test_predicts_on_templated_corpus(self, pge_workload):
        cases, reference = pge_workload
        run = run_method_on_cases(MondrianBaseline(), reference, cases, "PGE")
        assert run.metrics.recall > 0.1

    def test_fit_timeout_raises(self, pge_workload):
        __, reference = pge_workload
        baseline = MondrianBaseline(MondrianConfig(fit_timeout_seconds=0.0))
        with pytest.raises(TimeoutError):
            baseline.fit(reference)

    def test_empty_reference(self):
        baseline = MondrianBaseline()
        baseline.fit([])
        assert baseline.predict(Sheet(), CellAddress(0, 0)) is None


class TestSpreadsheetCoderBaseline:
    def test_total_label_gives_sum(self, totals_sheet):
        baseline = SpreadsheetCoderBaseline()
        baseline.fit([])
        prediction = baseline.predict(totals_sheet, CellAddress(6, 1))
        assert prediction is not None
        assert prediction.formula == "=SUM(B2:B6)"

    def test_average_label(self, totals_sheet):
        totals_sheet.set("B7", 150.0)  # the filled-in total, extending the numeric run
        totals_sheet.set("A8", "Average amount")
        baseline = SpreadsheetCoderBaseline()
        baseline.fit([])
        prediction = baseline.predict(totals_sheet, CellAddress(7, 1))
        assert prediction is not None
        assert prediction.formula.startswith("=AVERAGE(")

    def test_abstains_without_nl_cue(self, totals_sheet):
        baseline = SpreadsheetCoderBaseline()
        baseline.fit([])
        assert baseline.predict(totals_sheet, CellAddress(20, 5)) is None

    def test_cannot_predict_multi_parameter_formulas(self, survey_sheet):
        """The defining weakness: COUNTIF with two parameters is out of reach."""
        baseline = SpreadsheetCoderBaseline()
        baseline.fit([])
        target = survey_sheet.copy()
        target.set("D41", value=None, formula=None)
        prediction = baseline.predict(target, CellAddress(40, 3))
        if prediction is not None:
            assert "COUNTIF" not in prediction.formula

    def test_learns_keyword_priors_from_corpus(self, pge_workload):
        cases, reference = pge_workload
        baseline = SpreadsheetCoderBaseline()
        baseline.fit(reference)
        assert baseline._keyword_priors  # learned something

    def test_worse_than_autoformula_on_corpus(self, pge_workload, trained_encoder):
        from repro.core import AutoFormula, AutoFormulaConfig

        cases, reference = pge_workload
        coder = run_method_on_cases(SpreadsheetCoderBaseline(), reference, cases, "PGE")
        auto = run_method_on_cases(
            AutoFormula(trained_encoder, AutoFormulaConfig()), reference, cases, "PGE"
        )
        assert coder.metrics.f1 < auto.metrics.f1


class TestSimulatedLLMBaseline:
    def test_prompt_grid_has_24_variants(self):
        variants = all_prompt_variants()
        assert len(variants) == 24
        assert len({variant.label() for variant in variants}) == 24

    def test_zero_shot_weak(self, pge_workload):
        cases, reference = pge_workload
        run = run_method_on_cases(
            SimulatedLLMBaseline(PromptConfig("zero_shot", False, "precise", "gpt-3.5")),
            reference,
            cases,
            "PGE",
        )
        assert run.metrics.f1 < 0.2

    def test_rag_better_than_zero_shot(self, pge_workload):
        cases, reference = pge_workload
        zero = run_method_on_cases(
            SimulatedLLMBaseline(PromptConfig("zero_shot", True, "precise", "gpt-4")),
            reference,
            cases,
            "PGE",
        )
        rag = run_method_on_cases(
            SimulatedLLMBaseline(PromptConfig("few_shot_rag", True, "precise", "gpt-4")),
            reference,
            cases,
            "PGE",
        )
        assert rag.metrics.f1 > zero.metrics.f1

    def test_rag_worse_than_autoformula(self, pge_workload, trained_encoder):
        from repro.core import AutoFormula, AutoFormulaConfig

        cases, reference = pge_workload
        rag = run_method_on_cases(
            SimulatedLLMBaseline(PromptConfig("few_shot_rag", False, "precise", "gpt-4")),
            reference,
            cases,
            "PGE",
        )
        auto = run_method_on_cases(
            AutoFormula(trained_encoder, AutoFormulaConfig()), reference, cases, "PGE"
        )
        assert rag.metrics.f1 < auto.metrics.f1

    def test_rag_requires_fit(self):
        baseline = SimulatedLLMBaseline(PromptConfig("few_shot_rag", False, "precise", "gpt-4"))
        baseline.fit([])
        assert baseline.predict(Sheet(), CellAddress(0, 0)) is None

    def test_prediction_details_carry_variant(self, pge_workload):
        cases, reference = pge_workload
        baseline = SimulatedLLMBaseline(PromptConfig("few_shot_rag", False, "precise", "gpt-4"))
        baseline.fit(reference)
        for case in cases:
            prediction = baseline.predict(case.target_sheet, case.target_cell)
            if prediction is not None:
                assert "variant" in prediction.details or "reference_formula" in prediction.details
                break
