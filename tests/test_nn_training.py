"""Tests for optimizers, triplet loss and semi-hard mining."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    L2Normalize,
    Linear,
    ReLU,
    SGD,
    Sequential,
    semi_hard_triplets,
    triplet_loss_and_grad,
)
from repro.nn.losses import pairwise_squared_distances, triplet_losses


class TestOptimizers:
    def _regression_problem(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 5)).astype(np.float32)
        true_w = rng.standard_normal((5, 1)).astype(np.float32)
        y = x @ true_w
        return x, y

    def _train(self, optimizer_cls, **kwargs) -> float:
        x, y = self._regression_problem()
        model = Sequential([Linear(5, 8), ReLU(), Linear(8, 1)])
        optimizer = optimizer_cls(model, **kwargs)
        initial = float(np.mean((model.forward(x) - y) ** 2))
        for __ in range(200):
            optimizer.zero_grad()
            out = model.forward(x)
            model.backward(2 * (out - y) / len(x))
            optimizer.step()
        final = float(np.mean((model.forward(x) - y) ** 2))
        assert final < initial
        return final

    def test_sgd_reduces_loss(self):
        assert self._train(SGD, learning_rate=0.05) < 0.05

    def test_sgd_with_momentum(self):
        assert self._train(SGD, learning_rate=0.02, momentum=0.9) < 0.05

    def test_adam_reduces_loss(self):
        assert self._train(Adam, learning_rate=0.01) < 0.05

    def test_invalid_learning_rate(self):
        model = Sequential([Linear(2, 1)])
        with pytest.raises(ValueError):
            SGD(model, learning_rate=0.0)

    def test_weight_decay_shrinks_weights(self):
        model = Sequential([Linear(3, 3)])
        model.layers[0].params["W"] = np.ones((3, 3), dtype=np.float32)
        optimizer = SGD(model, learning_rate=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        optimizer.step()
        assert np.all(model.layers[0].params["W"] < 1.0)


class TestTripletLoss:
    def test_zero_when_margin_satisfied(self):
        anchor = np.array([[1.0, 0.0]], dtype=np.float32)
        positive = np.array([[1.0, 0.0]], dtype=np.float32)
        negative = np.array([[-1.0, 0.0]], dtype=np.float32)
        loss, da, dp, dn = triplet_loss_and_grad(anchor, positive, negative, margin=0.5)
        assert loss == 0.0
        assert np.allclose(da, 0.0) and np.allclose(dp, 0.0) and np.allclose(dn, 0.0)

    def test_positive_when_violated(self):
        anchor = np.array([[0.0, 0.0]], dtype=np.float32)
        positive = np.array([[1.0, 0.0]], dtype=np.float32)
        negative = np.array([[0.0, 0.1]], dtype=np.float32)
        loss, *_ = triplet_loss_and_grad(anchor, positive, negative, margin=0.5)
        assert loss == pytest.approx(1.0 - 0.01 + 0.5, abs=1e-5)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        anchor = rng.standard_normal((4, 3)).astype(np.float32)
        positive = rng.standard_normal((4, 3)).astype(np.float32)
        negative = rng.standard_normal((4, 3)).astype(np.float32)
        loss, da, dp, dn = triplet_loss_and_grad(anchor, positive, negative, margin=0.5)
        eps = 1e-4
        for array, grad in [(anchor, da), (positive, dp), (negative, dn)]:
            index = (1, 2)
            original = array[index]
            array[index] = original + eps
            loss_plus = triplet_loss_and_grad(anchor, positive, negative, 0.5)[0]
            array[index] = original - eps
            loss_minus = triplet_loss_and_grad(anchor, positive, negative, 0.5)[0]
            array[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert numeric == pytest.approx(grad[index], abs=1e-2)

    def test_empty_batch(self):
        empty = np.zeros((0, 4), dtype=np.float32)
        loss, da, dp, dn = triplet_loss_and_grad(empty, empty, empty)
        assert loss == 0.0
        assert da.shape == (0, 4)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            triplet_loss_and_grad(
                np.zeros((2, 3), dtype=np.float32),
                np.zeros((2, 3), dtype=np.float32),
                np.zeros((3, 3), dtype=np.float32),
            )

    def test_training_separates_synthetic_clusters(self):
        """Triplet training on a toy two-cluster problem separates the clusters."""
        rng = np.random.default_rng(1)
        cluster_a = rng.normal(0.0, 0.1, size=(40, 8)).astype(np.float32)
        cluster_b = rng.normal(0.4, 0.1, size=(40, 8)).astype(np.float32)
        model = Sequential([Linear(8, 16), ReLU(), Linear(16, 4), L2Normalize()])
        optimizer = Adam(model, learning_rate=0.01)
        anchors, positives, negatives = cluster_a[:20], cluster_a[20:], cluster_b[:20]
        for __ in range(60):
            stacked = np.concatenate([anchors, positives, negatives])
            optimizer.zero_grad()
            embeddings = model.forward(stacked, training=True)
            n = len(anchors)
            loss, da, dp, dn = triplet_loss_and_grad(
                embeddings[:n], embeddings[n : 2 * n], embeddings[2 * n :], margin=0.5
            )
            model.backward(np.concatenate([da, dp, dn]))
            optimizer.step()
        embeddings = model.forward(np.concatenate([anchors, positives, negatives]))
        n = len(anchors)
        dist_ap = np.mean(np.sum((embeddings[:n] - embeddings[n : 2 * n]) ** 2, axis=1))
        dist_an = np.mean(np.sum((embeddings[:n] - embeddings[2 * n :]) ** 2, axis=1))
        assert dist_an > dist_ap + 0.3


class TestPairwiseDistances:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        left = rng.standard_normal((5, 4))
        right = rng.standard_normal((7, 4))
        distances = pairwise_squared_distances(left, right)
        for i in range(5):
            for j in range(7):
                assert distances[i, j] == pytest.approx(np.sum((left[i] - right[j]) ** 2), rel=1e-5)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((10, 3))
        assert np.all(pairwise_squared_distances(x, x) >= 0.0)


class TestSemiHardMining:
    def test_prefers_semi_hard_negatives(self):
        # anchor at origin, positive close by, negatives at increasing distance
        anchor = np.zeros((1, 2), dtype=np.float32)
        positive = np.array([[0.3, 0.0]], dtype=np.float32)
        negatives = np.array([[0.05, 0.0], [0.5, 0.0], [5.0, 0.0]], dtype=np.float32)
        batch = semi_hard_triplets(anchor, positive, negatives, margin=0.5)
        assert len(batch) == 1
        # negative 0 is "hard" (closer than positive, loss > margin), negative 2 is
        # "easy" (loss 0); negative 1 is the semi-hard one and must be selected.
        assert batch.negative_indices[0] == 1

    def test_falls_back_to_hardest_when_no_semi_hard(self):
        anchor = np.zeros((1, 2), dtype=np.float32)
        positive = np.array([[1.0, 0.0]], dtype=np.float32)
        negatives = np.array([[0.1, 0.0], [0.2, 0.0]], dtype=np.float32)
        batch = semi_hard_triplets(anchor, positive, negatives, margin=0.5)
        assert len(batch) == 1
        assert batch.negative_indices[0] == 0  # the hardest (closest) negative

    def test_skips_pairs_with_only_easy_negatives(self):
        anchor = np.zeros((1, 2), dtype=np.float32)
        positive = np.array([[0.1, 0.0]], dtype=np.float32)
        negatives = np.array([[10.0, 0.0]], dtype=np.float32)
        batch = semi_hard_triplets(anchor, positive, negatives, margin=0.5)
        assert len(batch) == 0

    def test_max_triplets_cap(self):
        rng = np.random.default_rng(0)
        anchors = rng.normal(0, 0.1, (20, 4)).astype(np.float32)
        positives = rng.normal(0, 0.1, (20, 4)).astype(np.float32)
        negatives = rng.normal(0.3, 0.1, (10, 4)).astype(np.float32)
        batch = semi_hard_triplets(anchors, positives, negatives, margin=0.5, max_triplets=5)
        assert len(batch) <= 5

    def test_empty_inputs(self):
        empty = np.zeros((0, 4), dtype=np.float32)
        batch = semi_hard_triplets(empty, empty, empty)
        assert len(batch) == 0

    def test_selected_losses_within_margin_when_possible(self):
        rng = np.random.default_rng(3)
        anchors = rng.normal(0, 0.2, (30, 6)).astype(np.float32)
        positives = anchors + rng.normal(0, 0.05, (30, 6)).astype(np.float32)
        negatives = rng.normal(0.6, 0.2, (30, 6)).astype(np.float32)
        margin = 0.5
        batch = semi_hard_triplets(anchors, positives, negatives, margin=margin)
        if len(batch):
            losses = triplet_losses(
                anchors[batch.anchor_indices],
                positives[batch.positive_indices],
                negatives[batch.negative_indices],
                margin=margin,
            )
            assert np.all(losses > 0.0)
