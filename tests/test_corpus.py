"""Tests for the synthetic corpus generator, corpora presets and test cases."""

import numpy as np
import pytest

from repro.corpus import (
    ALL_TEMPLATE_CLASSES,
    CorpusGenerator,
    CorpusSpec,
    ENTERPRISE_SPECS,
    SingletonTemplate,
    SurveyTemplate,
    build_enterprise_corpus,
    build_training_universe,
    corpus_statistics,
    sample_test_cases,
    split_corpus,
)
from repro.formula import FormulaEvaluator, parse_formula
from repro.formula.template import extract_template
from repro.weaksup import HypothesisTest, SheetNameStatistics


class TestTemplates:
    @pytest.mark.parametrize("template_cls", ALL_TEMPLATE_CLASSES)
    def test_each_template_produces_valid_workbook(self, template_cls, rng):
        template = template_cls(0, rng)
        workbook = template.instantiate(rng, 0, last_modified=1.0)
        assert len(workbook) == len(template.sheet_names())
        assert workbook.n_formulas() > 0
        for sheet in workbook:
            for __, cell in sheet.formula_cells():
                parse_formula(cell.formula or "")  # must not raise

    @pytest.mark.parametrize("template_cls", ALL_TEMPLATE_CLASSES)
    def test_formula_values_are_cached(self, template_cls, rng):
        template = template_cls(1, rng)
        workbook = template.instantiate(rng, 0)
        cached = sum(
            1
            for sheet in workbook
            for __, cell in sheet.formula_cells()
            if cell.value is not None
        )
        assert cached > 0

    def test_family_members_share_sheet_names(self, rng):
        template = SurveyTemplate(2, rng)
        first = template.instantiate(rng, 0)
        second = template.instantiate(rng, 1)
        assert first.sheet_names == second.sheet_names

    def test_family_members_share_formula_templates(self, rng):
        template = SurveyTemplate(3, rng)
        first = template.instantiate(rng, 0)
        second = template.instantiate(rng, 1)
        first_templates = {
            extract_template(cell.formula).signature
            for sheet in first
            for __, cell in sheet.formula_cells()
        }
        second_templates = {
            extract_template(cell.formula).signature
            for sheet in second
            for __, cell in sheet.formula_cells()
        }
        assert first_templates == second_templates

    def test_family_members_differ_in_data(self, rng):
        template = SurveyTemplate(4, rng)
        first = template.instantiate(rng, 0)
        second = template.instantiate(rng, 1)
        first_values = [cell.value for __, cell in first.sheets[1].cells()]
        second_values = [cell.value for __, cell in second.sheets[1].cells()]
        assert first_values != second_values

    def test_singleton_not_a_family(self, rng):
        assert SingletonTemplate(0, rng).is_family is False

    def test_survey_countif_is_consistent(self, rng):
        """The COUNTIF summary on a generated survey actually counts the data."""
        template = SurveyTemplate(5, rng)
        workbook = template.instantiate(rng, 0)
        responses = workbook.sheets[1]
        evaluator = FormulaEvaluator(responses)
        for address, cell in responses.formula_cells():
            if "COUNTIF" not in (cell.formula or ""):
                continue
            assert evaluator.evaluate_formula(cell.formula) == cell.value


class TestCorpusGeneration:
    def test_spec_sizes(self):
        spec = CorpusSpec(name="tiny", n_families=2, min_copies=2, max_copies=3, n_singletons=3, seed=1)
        corpus = CorpusGenerator(seed=0).generate(spec)
        assert spec.n_families * spec.min_copies + spec.n_singletons <= len(corpus)
        assert len(corpus) <= spec.n_families * spec.max_copies + spec.n_singletons

    def test_generation_deterministic(self):
        spec = CorpusSpec(name="det", n_families=2, min_copies=2, max_copies=2, n_singletons=1, seed=5)
        first = CorpusGenerator(seed=1).generate(spec)
        second = CorpusGenerator(seed=1).generate(spec)
        assert [workbook.name for workbook in first.workbooks] == [
            workbook.name for workbook in second.workbooks
        ]
        assert first.n_formulas() == second.n_formulas()

    def test_timestamps_assigned(self):
        corpus = build_enterprise_corpus("PGE")
        timestamps = [workbook.last_modified for workbook in corpus.workbooks]
        assert len(set(timestamps)) > 1

    def test_enterprise_presets_exist(self):
        assert set(ENTERPRISE_SPECS) == {"PGE", "Cisco", "TI", "Enron"}

    def test_unknown_corpus_rejected(self):
        with pytest.raises(KeyError):
            build_enterprise_corpus("Contoso")

    def test_enron_largest_corpus(self):
        sizes = {name: len(build_enterprise_corpus(name)) for name in ENTERPRISE_SPECS}
        assert sizes["Enron"] == max(sizes.values())

    def test_cisco_has_highest_singleton_share(self):
        specs = ENTERPRISE_SPECS
        shares = {
            name: spec.n_singletons / spec.expected_workbooks() for name, spec in specs.items()
        }
        assert shares["Cisco"] == max(shares.values())
        assert shares["PGE"] == min(shares.values())

    def test_training_universe_supports_weak_supervision(self, training_universe):
        stats = SheetNameStatistics.from_workbooks(training_universe)
        test = HypothesisTest(stats)
        similar_pairs = 0
        for i in range(len(training_universe)):
            for j in range(i + 1, len(training_universe)):
                if test.test(training_universe[i], training_universe[j]).similar:
                    similar_pairs += 1
        assert similar_pairs > 3

    def test_scale_factor(self):
        small = build_enterprise_corpus("TI", scale=0.5)
        default = build_enterprise_corpus("TI", scale=1.0)
        assert len(small) < len(default)


class TestSplitsAndTestCases:
    def test_timestamp_split_holds_out_newest(self, pge_corpus):
        test, reference = split_corpus(pge_corpus, test_fraction=0.2, method="timestamp")
        newest_reference = max(workbook.last_modified for workbook in reference)
        oldest_test = min(workbook.last_modified for workbook in test)
        assert oldest_test >= newest_reference
        assert len(test) + len(reference) == len(pge_corpus)

    def test_random_split_deterministic_by_seed(self, pge_corpus):
        first = split_corpus(pge_corpus, 0.2, "random", seed=3)
        second = split_corpus(pge_corpus, 0.2, "random", seed=3)
        assert [w.name for w in first[0]] == [w.name for w in second[0]]

    def test_invalid_split_arguments(self, pge_corpus):
        with pytest.raises(ValueError):
            split_corpus(pge_corpus, 0.0)
        with pytest.raises(ValueError):
            split_corpus(pge_corpus, 0.2, method="by-color")

    def test_sample_test_cases_blanks_target(self, pge_corpus):
        test, __ = split_corpus(pge_corpus, 0.2, "timestamp")
        cases = sample_test_cases("PGE", test, max_per_sheet=5)
        assert cases
        for case in cases:
            blanked = case.target_sheet.get(case.target_cell)
            assert not blanked.has_formula
            assert blanked.value is None
            assert case.ground_truth.startswith("=")

    def test_sample_respects_per_sheet_cap(self, pge_corpus):
        test, __ = split_corpus(pge_corpus, 0.2, "timestamp")
        cases = sample_test_cases("PGE", test, max_per_sheet=3)
        per_sheet = {}
        for case in cases:
            key = (case.workbook_name, case.sheet_name)
            per_sheet[key] = per_sheet.get(key, 0) + 1
        assert max(per_sheet.values()) <= 3

    def test_test_case_keeps_other_formulas(self, pge_corpus):
        test, __ = split_corpus(pge_corpus, 0.2, "timestamp")
        cases = sample_test_cases("PGE", test, max_per_sheet=10)
        multi_formula_cases = [case for case in cases if case.target_sheet.n_formulas() > 0]
        assert multi_formula_cases  # the rest of the sheet is left intact

    def test_corpus_statistics_row(self, pge_corpus):
        test, __ = split_corpus(pge_corpus, 0.2, "timestamp")
        cases = sample_test_cases("PGE", test)
        stats = corpus_statistics(pge_corpus, test_cases_timestamp=cases)
        assert stats["workbooks"] == len(pge_corpus)
        assert stats["sheets"] == pge_corpus.n_sheets()
        assert stats["formulas"] == pge_corpus.n_formulas()
        assert stats["test_formulas_timestamp"] == len(cases)

    def test_training_universe_size(self):
        universe = build_training_universe(n_families=3, copies_per_family=2, n_singletons=2, seed=1)
        assert len(universe) >= 3 * 2 + 2
