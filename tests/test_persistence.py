"""Durable-workspace acceptance suite: snapshots, mutation log, restore parity.

The acceptance invariant is the existing fresh-fit-parity checker: a
workspace restored from snapshot (+ mutation-log tail) must answer
bit-identically to a fresh fit on the equivalent corpus, across the
exact/lsh/ivf index kinds.  The rest of the suite covers the mechanics:
format-version enforcement, lazy log replay, compaction, tombstone
state, memory-mapped loading, per-shard worker restore, and the service
facade's save/load round trip.
"""

import json

import numpy as np
import pytest

from repro import AutoFormula, AutoFormulaConfig, FormulaService, ShardedWorkspace, Workspace
from repro.persistence import (
    MutationLog,
    MutationLogError,
    SnapshotFormatError,
    read_manifest,
)
from repro.persistence.snapshot import SNAPSHOT_FORMAT_VERSION, mutation_log_path
from repro.service import RecommendationRequest
from repro.sheet import Workbook
from repro.testing import (
    WorkloadConfig,
    assert_matches_fresh_fit,
    assert_responses_match,
    assert_tombstone_accounting,
    generate_workload,
    replay_workload,
)

#: The same churn profile the simulation acceptance suite uses.
CHURN_WORKLOAD = WorkloadConfig(
    n_tenants=1,
    n_steps=8,
    n_families=2,
    min_copies=2,
    max_copies=3,
    n_singletons=1,
    initial_workbooks=2,
    max_recommend_batch=3,
    max_cases=5,
)

#: Edit-heavy variant so the log carries edit entries, not just add/remove.
EDIT_WORKLOAD = WorkloadConfig(
    n_tenants=1,
    n_steps=12,
    op_weights=(0.2, 0.1, 0.45, 0.1, 0.1, 0.05),
    n_families=2,
    min_copies=2,
    max_copies=3,
    n_singletons=1,
    initial_workbooks=2,
    max_recommend_batch=3,
    max_cases=5,
)

INDEX_KINDS = ("exact", "lsh", "ivf")


def _config(kind: str, **overrides) -> AutoFormulaConfig:
    return AutoFormulaConfig(
        sheet_index_kind=kind, formula_index_kind=kind, **overrides
    )


def _churned_workspace(
    trained_encoder, kind, seed=11, workload_config=CHURN_WORKLOAD, **config_overrides
):
    """One mutated workspace plus its workload's evaluation cases."""
    workload = generate_workload(seed, workload_config)
    config = _config(kind, **config_overrides)
    replay = replay_workload(
        workload,
        lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, config)),
    )
    ((tenant, workspace),) = replay.workspaces.items()
    return workspace, workload.cases[tenant], config


# ---------------------------------------------------------- restore parity


@pytest.mark.parametrize("kind", INDEX_KINDS)
class TestRestoreParity:
    """The acceptance criterion: restored == fresh fit, bit for bit."""

    def test_snapshot_restore_matches_fresh_fit(self, trained_encoder, kind, tmp_path):
        workspace, cases, config = _churned_workspace(trained_encoder, kind)
        workspace.save(tmp_path / "snap")
        restored = Workspace.load(tmp_path / "snap", AutoFormula(trained_encoder, config))
        assert restored.workbook_names == workspace.workbook_names
        assert_matches_fresh_fit(
            restored,
            lambda: AutoFormula(trained_encoder, config),
            cases,
            context=f"restored kind={kind}",
        )
        assert_tombstone_accounting(restored.predictor)

    def test_snapshot_plus_log_tail_matches_fresh_fit(
        self, trained_encoder, kind, tmp_path
    ):
        workspace, cases, config = _churned_workspace(
            trained_encoder, kind, seed=29, workload_config=EDIT_WORKLOAD
        )
        directory = tmp_path / "snap"
        workspace.save(directory)
        # Post-snapshot mutations of every kind land in the log ...
        removed = workspace.remove_workbook(workspace.workbook_names[0])
        workspace.add_workbook(removed)
        target = workspace.workbooks()[-1]
        sheet = target.sheets[0]
        address = next(
            addr
            for addr, cell in sheet.cells()
            if cell.formula is None and isinstance(cell.value, float)
        )
        workspace.edit_cell(target.name, sheet.name, address, value=1234.5)
        log = MutationLog(mutation_log_path(directory))
        assert [entry["op"] for entry in log.read()] == ["remove", "add", "edit"]
        # ... and restore = snapshot + lazy replay is still a fresh fit.
        restored = Workspace.load(directory, AutoFormula(trained_encoder, config))
        assert_matches_fresh_fit(
            restored,
            lambda: AutoFormula(trained_encoder, config),
            cases,
            context=f"snapshot+log kind={kind}",
        )
        assert restored.workbook_names == workspace.workbook_names

    def test_sharded_restore_matches_fresh_unsharded_fit(
        self, trained_encoder, kind, tmp_path
    ):
        workload = generate_workload(47, CHURN_WORKLOAD)
        config = _config(kind)
        factory = lambda: AutoFormula(trained_encoder, config)  # noqa: E731
        replay = replay_workload(
            workload, lambda tenant: ShardedWorkspace(tenant, factory, 3)
        )
        ((tenant, workspace),) = replay.workspaces.items()
        workspace.save(tmp_path / "snap")
        restored = ShardedWorkspace.load(tmp_path / "snap", factory)
        try:
            assert restored.shard_sizes() == workspace.shard_sizes()
            assert_matches_fresh_fit(
                restored,
                factory,
                workload.cases[tenant],
                context=f"sharded restored kind={kind}",
            )
        finally:
            restored.close()
            workspace.close()


@pytest.mark.parametrize("storage_dtype", ("float16", "int8"))
class TestQuantizedRestoreParity:
    """Quantized scan stores snapshot and restore bit-identically.

    The snapshot additionally persists the ``codes`` / ``scales`` /
    ``recon_errors`` blocks, the restore adopts them (memory-mapped),
    and the restored workspace still answers exactly like a fresh fit —
    the same acceptance invariant as the float32 suite.
    """

    def test_quantized_snapshot_restore_matches_fresh_fit(
        self, trained_encoder, storage_dtype, tmp_path
    ):
        workspace, cases, config = _churned_workspace(
            trained_encoder,
            "exact",
            scoring_mode="two_tier",
            storage_dtype=storage_dtype,
        )
        directory = tmp_path / "snap"
        workspace.save(directory)
        # The quantized scan store is persisted alongside the exact matrix.
        codes = np.load(directory / "arrays" / "sheet_codes.npy")
        assert codes.dtype == np.dtype(storage_dtype)
        assert (directory / "arrays" / "formula_codes.npy").exists()
        assert (directory / "arrays" / "sheet_recon_errors.npy").exists()
        if storage_dtype == "int8":
            assert (directory / "arrays" / "sheet_scales.npy").exists()
        restored = Workspace.load(directory, AutoFormula(trained_encoder, config))
        assert_matches_fresh_fit(
            restored,
            lambda: AutoFormula(trained_encoder, config),
            cases,
            context=f"quantized restored dtype={storage_dtype}",
        )
        assert_tombstone_accounting(restored.predictor)

    def test_plain_snapshot_restores_into_quantized_config(
        self, trained_encoder, storage_dtype, tmp_path
    ):
        """Scoring mode/storage dtype are serving-side knobs, not snapshot
        format: a float32 deterministic snapshot loads into a two-tier
        quantized predictor (codes re-derived from the exact matrix) and
        still answers bit-identically to a fresh quantized fit."""
        workspace, cases, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        assert not (directory / "arrays" / "sheet_codes.npy").exists()
        quantized = _config(
            "exact", scoring_mode="two_tier", storage_dtype=storage_dtype
        )
        restored = Workspace.load(directory, AutoFormula(trained_encoder, quantized))
        assert_matches_fresh_fit(
            restored,
            lambda: AutoFormula(trained_encoder, quantized),
            cases,
            context=f"plain snapshot into dtype={storage_dtype}",
        )


# ------------------------------------------------------------ log mechanics


class TestMutationLog:
    def test_lazy_replay_happens_once_on_first_use(self, trained_encoder, tmp_path):
        workspace, cases, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        removed = workspace.remove_workbook(workspace.workbook_names[-1])
        restored = Workspace.load(directory, AutoFormula(trained_encoder, config))
        # Loading alone must not replay: the ops are merely pending.
        assert len(restored._pending_ops) == 1
        assert removed.name in restored._workbooks
        response = restored.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        assert response is not None
        assert restored._pending_ops == []
        assert removed.name not in restored
        # Replayed ops must not be re-appended to the log they came from.
        assert len(MutationLog(mutation_log_path(directory))) == 1

    def test_save_compacts_the_log(self, trained_encoder, tmp_path):
        workspace, __, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        workspace.remove_workbook(workspace.workbook_names[0])
        log = MutationLog(mutation_log_path(directory))
        assert len(log) == 1
        workspace.save(directory)
        assert len(log) == 0
        # The compacted snapshot already contains the remove: a reload has
        # nothing pending and agrees with the live workspace.
        restored = Workspace.load(directory, AutoFormula(trained_encoder, config))
        assert restored._pending_ops == []
        assert restored.workbook_names == workspace.workbook_names

    def test_edit_values_survive_the_log_codec(self, tmp_path):
        import datetime

        from repro.persistence.log import edit_entry
        from repro.sheet.cell import Cell

        entry = json.loads(
            json.dumps(edit_entry("wb", "S", "B2", value=datetime.date(2024, 2, 29)))
        )
        assert Cell.from_dict(entry["cell"]).value == datetime.date(2024, 2, 29)
        formula_entry = edit_entry("wb", "S", "B2", formula="=SUM(A1:A3)")
        assert formula_entry["formula"] == "=SUM(A1:A3)"
        blank_entry = edit_entry("wb", "S", "B2", value="")
        assert blank_entry["cell"] == {"value": ""}

    def test_corrupt_log_raises_typed_error(self, tmp_path):
        path = tmp_path / "mutations.log"
        log = MutationLog(path)
        log.append({"op": "remove", "workbook_name": "wb"})
        with pytest.raises(MutationLogError):
            log.append({"op": "rename", "workbook_name": "wb"})
        # Future-version header.
        path.write_text('{"kind": "mutation-log", "format_version": 99}\n')
        with pytest.raises(MutationLogError, match="format_version"):
            log.read()
        # Garbage entry line.
        log.clear()
        with path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(MutationLogError, match="line 2"):
            log.read()
        # Wrong file kind entirely.
        path.write_text('{"kind": "workspace"}\n')
        with pytest.raises(MutationLogError, match="not a mutation log"):
            log.read()


# ------------------------------------------------------- snapshot mechanics


class TestSnapshotFormat:
    def test_manifest_version_is_enforced(self, trained_encoder, tmp_path):
        workspace, __, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        manifest = read_manifest(directory)
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotFormatError, match="format_version"):
            Workspace.load(directory, AutoFormula(trained_encoder, config))

    def test_missing_and_malformed_manifests_raise(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="no snapshot manifest"):
            read_manifest(tmp_path)
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(SnapshotFormatError, match="unreadable"):
            read_manifest(tmp_path)

    def test_kind_mismatch_raises(self, trained_encoder, tmp_path):
        workspace, __, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        factory = lambda: AutoFormula(trained_encoder, config)  # noqa: E731
        with pytest.raises(SnapshotFormatError, match="not a sharded workspace"):
            ShardedWorkspace.load(directory, factory)
        with pytest.raises(SnapshotFormatError, match="not a sharded workspace"):
            ShardedWorkspace.load_shard(directory, 0, factory)

    def test_config_mismatch_raises(self, trained_encoder, tmp_path):
        workspace, __, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        with pytest.raises(ValueError, match="index"):
            Workspace.load(directory, AutoFormula(trained_encoder, _config("lsh")))

    def test_mmap_load_is_read_only_until_first_write(
        self, trained_encoder, tmp_path
    ):
        workspace, cases, config = _churned_workspace(trained_encoder, "exact")
        directory = tmp_path / "snap"
        workspace.save(directory)
        restored = Workspace.load(directory, AutoFormula(trained_encoder, config))
        matrix = restored.predictor.sheet_index._matrix
        assert isinstance(matrix, np.memmap)
        assert not matrix.flags.writeable
        # Serving works off the map; mutation reallocates and still works.
        restored.recommend(
            RecommendationRequest(cases[0].target_sheet, cases[0].target_cell)
        )
        restored.remove_workbook(restored.workbook_names[0])
        assert_tombstone_accounting(restored.predictor)
        # Eager mode loads plain arrays.
        eager = Workspace.load(
            directory, AutoFormula(trained_encoder, config), mmap=False
        )
        assert not isinstance(eager.predictor.sheet_index._matrix, np.memmap)


# ------------------------------------------------------------ process shards


class TestShardWorkers:
    def test_load_shard_restores_each_slice(self, trained_encoder, tmp_path):
        config = _config("exact")
        factory = lambda: AutoFormula(trained_encoder, config)  # noqa: E731
        workload = generate_workload(11, CHURN_WORKLOAD)
        replay = replay_workload(
            workload, lambda tenant: ShardedWorkspace(tenant, factory, 3)
        )
        ((tenant, workspace),) = replay.workspaces.items()
        directory = tmp_path / "snap"
        workspace.save(directory)
        case = workload.cases[tenant][0]
        for shard in range(3):
            predictor, sequences = ShardedWorkspace.load_shard(
                directory, shard, factory
            )
            # The worker's routing metadata matches the coordinator's ...
            assert sequences == workspace._global_seq[shard]
            # ... and its S1 stage answers exactly like the live shard.
            live = workspace._predictors[shard].sheet_hits(case.target_sheet)
            loaded = predictor.sheet_hits(case.target_sheet)
            assert [(hit.key, hit.distance) for hit in live] == [
                (hit.key, hit.distance) for hit in loaded
            ]
        with pytest.raises(ValueError, match="out of range"):
            ShardedWorkspace.load_shard(directory, 7, factory)
        workspace.close()


# ----------------------------------------------------------------- facade


class TestServiceFacade:
    def test_save_and_load_workspace_round_trip(self, trained_encoder, tmp_path):
        config = _config("exact")
        service = FormulaService(trained_encoder, config)
        workload = generate_workload(11, CHURN_WORKLOAD)
        replay = replay_workload(
            workload, lambda tenant: service.create_workspace(tenant)
        )
        ((tenant, workspace),) = replay.workspaces.items()
        service.save_workspace(tenant, tmp_path / "snap")
        restored = service.load_workspace(tmp_path / "snap", name="reloaded")
        assert isinstance(restored, Workspace)
        assert service["reloaded"] is restored
        for case in workload.cases[tenant]:
            request = RecommendationRequest(case.target_sheet, case.target_cell)
            assert_responses_match(
                [workspace.recommend(request)],
                [restored.recommend(request)],
                context="facade reload",
            )

    def test_load_workspace_detects_sharded_kind(self, trained_encoder, tmp_path):
        service = FormulaService(trained_encoder, _config("exact"))
        workspace = service.create_sharded_workspace("tenant", 2)
        workbook = Workbook("wb")
        sheet = workbook.add_sheet("S")
        sheet.set("A1", 1.0)
        sheet.set("A2", 2.0)
        sheet.set("A3", formula="=SUM(A1:A2)")
        workspace.add_workbook(workbook)
        service.save_workspace("tenant", tmp_path / "snap")
        restored = service.load_workspace(tmp_path / "snap", name="reloaded")
        try:
            assert isinstance(restored, ShardedWorkspace)
            assert restored.workbook_names == ["wb"]
        finally:
            restored.close()
            workspace.close()

    def test_duplicate_name_rejected_on_load(self, trained_encoder, tmp_path):
        service = FormulaService(trained_encoder, _config("exact"))
        workspace = service.create_workspace("tenant")
        workbook = Workbook("wb")
        workbook.add_sheet("S").set("A1", 1.0)
        workspace.add_workbook(workbook)
        service.save_workspace("tenant", tmp_path / "snap")
        with pytest.raises(ValueError, match="already exists"):
            service.load_workspace(tmp_path / "snap")
