"""Workload-simulation property suite: the serving layer's invariants.

Drives the deterministic workload generator (``repro.testing``) against
plain and sharded workspaces and asserts the guarantees the service layer
documents: sharded/unsharded bit-parity across index kinds and simulator
seeds, mutated-corpus/fresh-fit parity, tombstone accounting after every
mutation, and response-provenance consistency.
"""

import pytest

from repro import AutoFormula, AutoFormulaConfig, ShardedWorkspace, Workspace
from repro.testing import (
    WorkloadConfig,
    assert_matches_fresh_fit,
    assert_response_wellformed,
    assert_responses_match,
    assert_sharded_consistent,
    assert_tombstone_accounting,
    generate_workload,
    replay_workload,
)

#: The simulator seeds the acceptance invariants are verified across.
SIMULATOR_SEEDS = (11, 29, 47)

#: Small on purpose: fast, and it keeps IVF/LSH in the exact-fallback
#: regime where sharded serving is provably bit-identical (see
#: ``repro.service.sharding``).
SMALL_WORKLOAD = WorkloadConfig(
    n_tenants=1,
    n_steps=8,
    n_families=2,
    min_copies=2,
    max_copies=3,
    n_singletons=1,
    initial_workbooks=2,
    max_recommend_batch=3,
    max_cases=5,
)

#: Edit-heavy variant: every acceptance seed draws several ``edit`` ops
#: followed by serving, so the edit → incremental-recalc → re-recommend
#: loop is exercised end to end.
EDIT_WORKLOAD = WorkloadConfig(
    n_tenants=1,
    n_steps=12,
    op_weights=(0.2, 0.1, 0.45, 0.1, 0.1, 0.05),
    n_families=2,
    min_copies=2,
    max_copies=3,
    n_singletons=1,
    initial_workbooks=2,
    max_recommend_batch=3,
    max_cases=5,
)


def _config(kind: str) -> AutoFormulaConfig:
    return AutoFormulaConfig(sheet_index_kind=kind, formula_index_kind=kind)


def _signature(workload):
    """A comparable, object-identity-free rendering of an op stream."""
    return [
        (
            op.step,
            op.tenant,
            op.kind,
            op.workbook.name if op.workbook is not None else op.workbook_name,
            tuple(
                (case.sheet_name, case.target_cell.to_a1(), case.ground_truth)
                for case in op.cases
            ),
        )
        for op in workload.ops
    ]


class TestWorkloadDeterminism:
    def test_same_seed_same_stream(self):
        assert _signature(generate_workload(123, SMALL_WORKLOAD)) == _signature(
            generate_workload(123, SMALL_WORKLOAD)
        )

    def test_different_seeds_differ(self):
        signatures = {
            tuple(map(str, _signature(generate_workload(seed, SMALL_WORKLOAD))))
            for seed in range(4)
        }
        assert len(signatures) > 1

    def test_ops_are_always_applicable(self):
        # Longer stream, several tenants: adds never duplicate, removes
        # never miss, every case batch is non-empty unless the tenant
        # genuinely has no sampleable formulas.
        workload = generate_workload(5, WorkloadConfig(n_tenants=3, n_steps=40))
        indexed = {tenant: set() for tenant in workload.tenants}
        for op in workload.ops:
            if op.kind == "add":
                assert op.workbook.name not in indexed[op.tenant]
                indexed[op.tenant].add(op.workbook.name)
            elif op.kind == "remove":
                assert op.workbook_name in indexed[op.tenant]
                indexed[op.tenant].remove(op.workbook_name)
            elif op.kind == "edit":
                # Edits target an indexed workbook's existing numeric cell.
                assert op.workbook_name in indexed[op.tenant]
                pool = {wb.name: wb for wb in workload.pools[op.tenant]}
                sheet = pool[op.workbook_name].get_sheet(op.sheet_name)
                assert not sheet.get(op.address).has_formula
                assert isinstance(op.value, float)
            elif op.kind == "recommend":
                assert op.cases
            elif op.kind == "serve":
                # A burst is non-empty, its clusters are same-sheet, and
                # ``cases`` is exactly the flattened cluster stream.
                assert op.clusters
                for cluster in op.clusters:
                    assert len({(c.workbook_name, c.sheet_name) for c in cluster}) == 1
                assert op.cases == tuple(
                    case for cluster in op.clusters for case in cluster
                )

    def test_replay_is_deterministic(self, trained_encoder):
        workload = generate_workload(7, SMALL_WORKLOAD)

        def factory(tenant):
            return Workspace(tenant, AutoFormula(trained_encoder, _config("exact")))

        first = replay_workload(workload, factory)
        second = replay_workload(workload, factory)
        for left, right in zip(first.outcomes, second.outcomes):
            assert_responses_match(
                left.responses, right.responses, context=f"step {left.step}"
            )
            assert left.evaluation == right.evaluation


@pytest.mark.parametrize("kind", ["exact", "lsh", "ivf"])
@pytest.mark.parametrize("seed", SIMULATOR_SEEDS)
class TestShardedParity:
    """Sharded serving must be bit-identical to unsharded serving."""

    N_SHARDS = 3

    def test_sharded_matches_unsharded_under_churn(self, trained_encoder, kind, seed):
        workload = generate_workload(seed, SMALL_WORKLOAD)
        config = _config(kind)

        plain = replay_workload(
            workload,
            lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, config)),
        )

        def audit(op, workspace):
            if op.kind in ("add", "remove"):
                assert_sharded_consistent(workspace)

        sharded = replay_workload(
            workload,
            lambda tenant: ShardedWorkspace(
                tenant,
                lambda: AutoFormula(trained_encoder, config),
                self.N_SHARDS,
            ),
            after_step=audit,
        )

        served_steps = 0
        for left, right in zip(plain.outcomes, sharded.outcomes):
            assert left.step == right.step and left.kind == right.kind
            assert_responses_match(
                left.responses,
                right.responses,
                context=f"kind={kind} seed={seed} step={left.step}",
            )
            assert left.evaluation == right.evaluation
            served_steps += bool(left.responses)
        assert served_steps > 0, "workload never exercised the serving path"

        # Provenance consistency on the final corpus state.
        for tenant, workspace in sharded.workspaces.items():
            for case in workload.cases[tenant]:
                from repro.service import RecommendationRequest

                response = workspace.recommend(
                    RecommendationRequest(case.target_sheet, case.target_cell)
                )
                assert_response_wellformed(response, workspace)
            workspace.close()


@pytest.mark.parametrize("kind", ["exact", "lsh", "ivf"])
class TestFreshFitParity:
    """After arbitrary churn, serving equals a fresh fit on the corpus."""

    def test_mutated_workspace_matches_fresh_fit(self, trained_encoder, kind):
        workload = generate_workload(SIMULATOR_SEEDS[0], SMALL_WORKLOAD)
        config = _config(kind)

        def audit(op, workspace):
            if op.kind in ("add", "remove"):
                assert_tombstone_accounting(workspace.predictor)

        replay = replay_workload(
            workload,
            lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, config)),
            after_step=audit,
        )
        for tenant, workspace in replay.workspaces.items():
            if not len(workspace):
                continue
            assert_matches_fresh_fit(
                workspace,
                lambda: AutoFormula(trained_encoder, config),
                workload.cases[tenant],
                context=f"kind={kind} tenant={tenant}",
            )

    def test_sharded_workspace_matches_fresh_unsharded_fit(self, trained_encoder, kind):
        """The acceptance invariant, stated directly: a sharded workspace
        answers like a fresh *unsharded* fit on the equivalent corpus."""
        workload = generate_workload(SIMULATOR_SEEDS[1], SMALL_WORKLOAD)
        config = _config(kind)
        replay = replay_workload(
            workload,
            lambda tenant: ShardedWorkspace(
                tenant, lambda: AutoFormula(trained_encoder, config), 4
            ),
        )
        for tenant, workspace in replay.workspaces.items():
            if not len(workspace):
                continue
            assert_matches_fresh_fit(
                workspace,
                lambda: AutoFormula(trained_encoder, config),
                workload.cases[tenant],
                context=f"kind={kind} tenant={tenant} sharded",
            )
            workspace.close()


@pytest.mark.parametrize("seed", SIMULATOR_SEEDS)
class TestEditRecalcParity:
    """Edit streams: incremental recalc must equal a fresh full pass.

    The acceptance invariant of the formula engine, stated over the
    simulator: for every simulator seed × edit stream, the sheets served
    after engine-incremental recalculation are value-identical to a fresh
    full-pass evaluation of the final sheet state, and sharded serving of
    the edited corpus stays bit-identical to unsharded serving.
    """

    @staticmethod
    def _assert_full_pass_identical(sheet):
        from repro.formula import FormulaEngine

        fresh = sheet.copy()
        for __, cell in fresh.cells():
            if cell.has_formula:
                cell.value = None
        FormulaEngine(fresh).recalculate()
        for address, cell in sheet.cells():
            assert fresh.get(address).value == cell.value, (
                f"{sheet.name}!{address.to_a1()}: incremental {cell.value!r} "
                f"vs full pass {fresh.get(address).value!r}"
            )

    def test_incremental_recalc_matches_full_pass(self, trained_encoder, seed):
        workload = generate_workload(seed, EDIT_WORKLOAD)
        assert any(op.kind == "edit" for op in workload.ops), (
            "EDIT_WORKLOAD must draw edits for every acceptance seed"
        )
        replay = replay_workload(
            workload,
            lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, _config("exact"))),
        )
        edits = [outcome for outcome in replay.outcomes if outcome.kind == "edit"]
        assert edits and all(outcome.recalc is not None for outcome in edits)
        for workspace in replay.workspaces.values():
            for workbook in workspace.workbooks():
                for sheet in workbook:
                    self._assert_full_pass_identical(sheet)

    def test_sharded_serving_matches_unsharded_under_edits(self, trained_encoder, seed):
        workload = generate_workload(seed, EDIT_WORKLOAD)
        config = _config("exact")
        plain = replay_workload(
            workload,
            lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, config)),
        )
        sharded = replay_workload(
            workload,
            lambda tenant: ShardedWorkspace(
                tenant, lambda: AutoFormula(trained_encoder, config), 3
            ),
        )
        for left, right in zip(plain.outcomes, sharded.outcomes):
            assert left.recalc == right.recalc
            assert_responses_match(
                left.responses, right.responses, context=f"edit seed={seed} step={left.step}"
            )
        for tenant, workspace in sharded.workspaces.items():
            if len(workspace):
                assert_matches_fresh_fit(
                    workspace,
                    lambda: AutoFormula(trained_encoder, config),
                    workload.cases[tenant],
                    context=f"edit seed={seed} tenant={tenant} sharded",
                )
            workspace.close()


@pytest.mark.slow
class TestLongSimulationStress:
    """A longer multi-tenant run for the scheduled CI tier."""

    def test_long_churn_keeps_every_invariant(self, trained_encoder):
        workload = generate_workload(
            101,
            WorkloadConfig(
                n_tenants=2,
                n_steps=40,
                n_families=3,
                min_copies=2,
                max_copies=3,
                n_singletons=2,
                initial_workbooks=2,
                max_cases=6,
            ),
        )
        config = _config("exact")

        def audit(op, workspace):
            if op.kind in ("add", "remove"):
                assert_sharded_consistent(workspace)

        plain = replay_workload(
            workload,
            lambda tenant: Workspace(tenant, AutoFormula(trained_encoder, config)),
        )
        sharded = replay_workload(
            workload,
            lambda tenant: ShardedWorkspace(
                tenant, lambda: AutoFormula(trained_encoder, config), 4
            ),
            after_step=audit,
        )
        for left, right in zip(plain.outcomes, sharded.outcomes):
            assert_responses_match(
                left.responses, right.responses, context=f"stress step {left.step}"
            )
        for tenant, workspace in sharded.workspaces.items():
            if len(workspace):
                assert_matches_fresh_fit(
                    workspace,
                    lambda: AutoFormula(trained_encoder, config),
                    workload.cases[tenant],
                    context=f"stress tenant={tenant}",
                )
            workspace.close()


class TestInvariantCheckers:
    """The checkers themselves must catch what they claim to catch."""

    def test_tombstone_accounting_tracks_mutation(self, trained_encoder):
        workload = generate_workload(3, SMALL_WORKLOAD)
        tenant = workload.tenants[0]
        predictor = AutoFormula(trained_encoder, _config("exact"))
        pool = list(workload.pools[tenant])
        predictor.fit(pool[:2])
        assert_tombstone_accounting(predictor)
        predictor.add_workbooks(pool[2:3])
        assert_tombstone_accounting(predictor)
        predictor.remove_workbook(pool[0].name)
        assert_tombstone_accounting(predictor)

    def test_wellformedness_rejects_stale_provenance(self, trained_encoder):
        from repro.service import RecommendationRequest, RecommendationResponse

        workload = generate_workload(3, SMALL_WORKLOAD)
        tenant = workload.tenants[0]
        workspace = Workspace(tenant, AutoFormula(trained_encoder, _config("exact")))
        workspace.add_workbooks(workload.pools[tenant][:2])
        case = workload.cases[tenant][0]
        forged = RecommendationResponse(
            request=RecommendationRequest(case.target_sheet, case.target_cell),
            workspace=tenant,
            method="Auto-Formula",
            formula="=SUM(A1:A2)",
            confidence=0.9,
            provenance={"reference_workbook": "ghost.xlsx"},
        )
        with pytest.raises(AssertionError, match="stale tombstoned hit"):
            assert_response_wellformed(forged, workspace)

    def test_responses_match_flags_divergence(self, trained_encoder):
        from repro.service import RecommendationRequest, RecommendationResponse

        workload = generate_workload(3, SMALL_WORKLOAD)
        tenant = workload.tenants[0]
        case = workload.cases[tenant][0]
        request = RecommendationRequest(case.target_sheet, case.target_cell)
        left = RecommendationResponse(
            request=request, workspace="a", method="m", formula="=A1", confidence=0.5
        )
        right = RecommendationResponse(
            request=request, workspace="b", method="m", formula="=A2", confidence=0.5
        )
        with pytest.raises(AssertionError, match="diverged"):
            assert_responses_match([left], [right])
