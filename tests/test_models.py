"""Tests for the representation models, encoder and triplet trainer."""

import numpy as np
import pytest

from repro.features import FeatureConfig
from repro.models import (
    ModelConfig,
    SheetEncoder,
    TrainingConfig,
    TripletTrainer,
    build_coarse_model,
    build_fine_model,
)
from repro.sheet import CellAddress, Sheet


@pytest.fixture()
def small_config() -> ModelConfig:
    return ModelConfig(features=FeatureConfig(window_rows=12, window_cols=8, content_embedding_dim=16))


@pytest.fixture()
def data_sheet() -> Sheet:
    sheet = Sheet("Data")
    for row in range(30):
        sheet.set((row, 0), f"label {row}")
        sheet.set((row, 1), row * 1.5)
    return sheet


class TestNetworkBuilders:
    def test_coarse_output_dimension(self, small_config):
        encoder = SheetEncoder(small_config)
        model = encoder.coarse_model
        window = encoder.featurizer.featurize_sheet(Sheet())[None, ...]
        assert model.forward(window).shape == (1, small_config.coarse_embedding_dim)

    def test_fine_output_dimension(self, small_config):
        encoder = SheetEncoder(small_config)
        window = encoder.featurizer.featurize_sheet(Sheet())[None, ...]
        assert encoder.fine_model.forward(window).shape == (1, small_config.fine_embedding_dim)

    def test_window_too_small_for_cnn_rejected(self):
        config = ModelConfig(features=FeatureConfig(window_rows=3, window_cols=3))
        with pytest.raises(ValueError):
            build_coarse_model(config, cell_dim=10)

    def test_models_have_parameters(self, small_config):
        cell_dim = SheetEncoder(small_config).featurizer.cell_featurizer.dimension
        assert build_coarse_model(small_config, cell_dim).n_parameters() > 1000
        assert build_fine_model(small_config, cell_dim).n_parameters() > 100


class TestSheetEncoder:
    def test_embeddings_l2_normalized(self, small_config, data_sheet):
        encoder = SheetEncoder(small_config)
        sheet_vector = encoder.embed_sheet(data_sheet)
        region_vector = encoder.embed_region(data_sheet, CellAddress(10, 1))
        assert np.linalg.norm(sheet_vector) == pytest.approx(1.0, abs=1e-4)
        assert np.linalg.norm(region_vector) == pytest.approx(1.0, abs=1e-4)

    def test_embeddings_deterministic(self, small_config, data_sheet):
        encoder = SheetEncoder(small_config)
        first = encoder.embed_sheet(data_sheet)
        second = encoder.embed_sheet(data_sheet)
        assert np.allclose(first, second)

    def test_batch_matches_single(self, small_config, data_sheet):
        encoder = SheetEncoder(small_config)
        centers = [CellAddress(5, 1), CellAddress(20, 1)]
        batch = encoder.embed_regions(data_sheet, centers)
        assert batch.shape == (2, encoder.fine_dimension)
        assert np.allclose(batch[0], encoder.embed_region(data_sheet, centers[0]), atol=1e-5)

    def test_empty_batches(self, small_config):
        encoder = SheetEncoder(small_config)
        assert encoder.embed_sheets([]).shape == (0, encoder.coarse_dimension)
        assert encoder.embed_regions(Sheet(), []).shape == (0, encoder.fine_dimension)

    def test_coarse_tolerates_row_shift_more_than_fine(self, small_config, trained_encoder, data_sheet):
        """The CNN branch should be less sensitive to a small row shift than the FC branch."""
        encoder = trained_encoder
        shifted = data_sheet.copy()
        shifted.insert_rows(5, 1)
        coarse_delta = float(
            np.sum((encoder.embed_sheet(data_sheet) - encoder.embed_sheet(shifted)) ** 2)
        )
        center = CellAddress(15, 1)
        fine_delta = float(
            np.sum(
                (
                    encoder.embed_region(data_sheet, center)
                    - encoder.embed_region(shifted, CellAddress(15, 1))
                )
                ** 2
            )
        )
        assert coarse_delta < fine_delta + 1.0  # coarse is not wildly more sensitive

    def test_save_load_roundtrip(self, small_config, data_sheet, tmp_path):
        encoder = SheetEncoder(small_config)
        encoder.save(tmp_path / "models")
        clone = SheetEncoder(
            ModelConfig(features=FeatureConfig(window_rows=12, window_cols=8, content_embedding_dim=16), seed=99)
        )
        clone.load(tmp_path / "models")
        assert np.allclose(encoder.embed_sheet(data_sheet), clone.embed_sheet(data_sheet))


class TestTripletTrainer:
    def test_training_improves_separation(self, training_pairs, small_config):
        encoder = SheetEncoder(small_config)

        def separation(model_encoder: SheetEncoder) -> float:
            positive = training_pairs.positive_sheet_pairs[:10]
            negative = training_pairs.negative_sheet_pairs[:10]
            pos = np.mean(
                [
                    np.sum(
                        (model_encoder.embed_sheet(pair.left) - model_encoder.embed_sheet(pair.right)) ** 2
                    )
                    for pair in positive
                ]
            )
            neg = np.mean(
                [
                    np.sum(
                        (model_encoder.embed_sheet(pair.left) - model_encoder.embed_sheet(pair.right)) ** 2
                    )
                    for pair in negative
                ]
            )
            return float(neg - pos)

        before = separation(encoder)
        trainer = TripletTrainer(encoder, TrainingConfig(epochs=5, seed=0))
        history = trainer.train(training_pairs)
        after = separation(encoder)
        assert after > before
        assert len(history.coarse_losses) == 5
        assert len(history.fine_losses) == 5
        assert history.n_coarse_pairs > 0
        assert history.n_fine_pairs > 0

    def test_trainer_handles_empty_pairs(self, small_config):
        from repro.weaksup.pairs import TrainingPairs

        encoder = SheetEncoder(small_config)
        history = TripletTrainer(encoder, TrainingConfig(epochs=2)).train(TrainingPairs())
        assert history.coarse_losses == []
        assert history.fine_losses == []

    def test_pair_subsampling_cap(self, training_pairs, small_config):
        encoder = SheetEncoder(small_config)
        trainer = TripletTrainer(
            encoder, TrainingConfig(epochs=1, max_positive_pairs=5, max_negative_pairs=5)
        )
        anchors, positives, negatives = trainer._coarse_tensors(training_pairs)
        assert len(anchors) <= 5
        assert len(negatives) <= 5
        assert len(anchors) == len(positives)

    def test_trained_encoder_fixture_separates_regions(self, trained_encoder, training_pairs):
        positive = training_pairs.positive_region_pairs[:10]
        negative = training_pairs.negative_region_pairs[:10]
        pos = np.mean(
            [
                np.sum(
                    (
                        trained_encoder.embed_region(pair.left_sheet, pair.left_center)
                        - trained_encoder.embed_region(pair.right_sheet, pair.right_center)
                    )
                    ** 2
                )
                for pair in positive
            ]
        )
        neg = np.mean(
            [
                np.sum(
                    (
                        trained_encoder.embed_region(pair.left_sheet, pair.left_center)
                        - trained_encoder.embed_region(pair.right_sheet, pair.right_center)
                    )
                    ** 2
                )
                for pair in negative
            ]
        )
        assert neg > pos
