"""End-to-end integration tests: train -> index -> predict -> evaluate."""

import numpy as np
import pytest

from repro.core import AutoFormula, AutoFormulaConfig
from repro.corpus import build_all_enterprise_corpora
from repro.evaluation import (
    measure_latency,
    overall_average,
    precision_recall_curve,
    prepare_corpus_evaluation,
    run_method_on_cases,
)
from repro.baselines import SpreadsheetCoderBaseline, WeakSupervisionBaseline
from repro.formula import FormulaEvaluator, parse_formula
from repro.formula.tokenizer import FormulaSyntaxError


@pytest.fixture(scope="module")
def corpora():
    return build_all_enterprise_corpora()


@pytest.fixture(scope="module")
def workloads(corpora):
    return {
        name: prepare_corpus_evaluation(corpus, "timestamp", 0.15)
        for name, corpus in corpora.items()
    }


@pytest.fixture(scope="module")
def auto_formula_runs(trained_encoder, workloads):
    runs = {}
    for name, workload in workloads.items():
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        runs[name] = run_method_on_cases(
            system, workload.reference_workbooks, workload.cases, name
        )
    return runs


class TestEndToEndQuality:
    def test_autoformula_beats_baselines_overall(self, trained_encoder, workloads, auto_formula_runs):
        weak_runs = []
        coder_runs = []
        for name, workload in workloads.items():
            weak_runs.append(
                run_method_on_cases(
                    WeakSupervisionBaseline(), workload.reference_workbooks, workload.cases, name
                )
            )
            coder_runs.append(
                run_method_on_cases(
                    SpreadsheetCoderBaseline(), workload.reference_workbooks, workload.cases, name
                )
            )
        auto_average = overall_average(list(auto_formula_runs.values()))
        weak_average = overall_average(weak_runs)
        coder_average = overall_average(coder_runs)
        assert auto_average["f1"] > weak_average["f1"]
        assert auto_average["f1"] > coder_average["f1"]
        assert auto_average["recall"] > weak_average["recall"]

    def test_autoformula_precision_is_high_everywhere(self, auto_formula_runs):
        for name, run in auto_formula_runs.items():
            assert run.metrics.precision > 0.6, name

    def test_recall_ordering_tracks_corpus_homogeneity(self, auto_formula_runs):
        """PGE (highly templated) has the highest recall; Cisco (singleton heavy) the lowest."""
        recalls = {name: run.metrics.recall for name, run in auto_formula_runs.items()}
        assert recalls["PGE"] == max(recalls.values())
        assert recalls["Cisco"] <= recalls["PGE"]

    def test_predictions_parse_and_evaluate(self, auto_formula_runs):
        """Every emitted formula is syntactically valid and evaluable on its target sheet."""
        checked = 0
        for run in auto_formula_runs.values():
            for result in run.results:
                if result.prediction is None:
                    continue
                ast = parse_formula(result.prediction.formula)  # must not raise
                assert ast is not None
                evaluator = FormulaEvaluator(result.case.target_sheet)
                try:
                    evaluator.evaluate_formula(result.prediction.formula)
                except Exception:
                    # evaluation may legitimately fail (e.g. lookup misses), but
                    # parsing must always succeed; count how many evaluate cleanly
                    continue
                checked += 1
        assert checked > 10

    def test_pr_curve_reaches_high_precision(self, auto_formula_runs):
        for name, run in auto_formula_runs.items():
            points = precision_recall_curve(run.results)
            assert max(point.precision for point in points) > 0.6, name


class TestEndToEndLatency:
    def test_online_prediction_is_interactive(self, trained_encoder, workloads):
        workload = workloads["PGE"]
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        report = measure_latency(
            system, workload.reference_workbooks, workload.cases, max_cases=10
        )
        assert report.online_seconds_per_case < 2.0  # the paper's interactivity budget

    def test_offline_phase_reported(self, trained_encoder, workloads):
        workload = workloads["Cisco"]
        system = AutoFormula(trained_encoder, AutoFormulaConfig())
        report = measure_latency(system, workload.reference_workbooks, workload.cases, max_cases=3)
        assert report.offline_seconds > 0.0
        assert report.n_reference_workbooks == len(workload.reference_workbooks)


class TestModelPersistenceEndToEnd:
    def test_saved_models_reproduce_predictions(self, trained_encoder, workloads, tmp_path):
        from repro.models import ModelConfig, SheetEncoder

        workload = workloads["PGE"]
        trained_encoder.save(tmp_path / "encoder")
        restored = SheetEncoder(ModelConfig())
        restored.load(tmp_path / "encoder")

        original_system = AutoFormula(trained_encoder, AutoFormulaConfig())
        restored_system = AutoFormula(restored, AutoFormulaConfig())
        original_system.fit(workload.reference_workbooks)
        restored_system.fit(workload.reference_workbooks)
        for case in workload.cases[:5]:
            original = original_system.predict(case.target_sheet, case.target_cell)
            restored_prediction = restored_system.predict(case.target_sheet, case.target_cell)
            if original is None:
                assert restored_prediction is None
            else:
                assert restored_prediction is not None
                assert restored_prediction.formula == original.formula
