"""Tests for the incremental dependency-graph recalculation engine."""

import numpy as np
import pytest

from repro.formula import (
    CYCLE_ERROR,
    DIV0_ERROR,
    NAME_ERROR,
    VALUE_ERROR,
    ErrorValue,
    FormulaEngine,
    is_error_value,
)
from repro.sheet import CellAddress, Sheet


def _chain_sheet() -> Sheet:
    sheet = Sheet()
    sheet.set("A1", 3)
    sheet.set("A2", 4)
    sheet.set("B1", formula="=SUM(A1:A2)")
    sheet.set("B2", formula="=B1*2")
    sheet.set("C1", formula="=A1+1")
    return sheet


class TestDependencyGraph:
    def test_precedents_and_dependents(self):
        engine = FormulaEngine(_chain_sheet())
        cells, ranges = engine.precedents_of("B2")
        assert cells == (CellAddress.from_a1("B1"),)
        assert ranges == ()
        __, b1_ranges = engine.precedents_of("B1")
        assert [r.to_a1() for r in b1_ranges] == ["A1:A2"]
        assert engine.dependents_of("B1") == {CellAddress.from_a1("B2")}
        # Range containment: A1 feeds B1 (via A1:A2) and C1 (directly).
        assert engine.dependents_of("A1") == {
            CellAddress.from_a1("B1"),
            CellAddress.from_a1("C1"),
        }

    def test_set_formula_rewires_edges(self):
        sheet = _chain_sheet()
        engine = FormulaEngine(sheet)
        engine.recalculate()
        engine.set_formula("C1", "=A2+1")
        assert engine.dependents_of("A2") >= {CellAddress.from_a1("C1")}
        engine.recalculate()
        # A1 edits no longer reach C1 through the old =A1+1 edge.
        engine.set_value("A1", 30)
        report = engine.recalculate()
        assert sheet.get("C1").value == 5
        assert sheet.get("B1").value == 34
        assert report.total == 2  # B1 and B2 only

    def test_set_value_clears_formula_node(self):
        sheet = _chain_sheet()
        engine = FormulaEngine(sheet)
        engine.recalculate()
        engine.set_value("B1", 100)
        report = engine.recalculate()
        assert sheet.get("B1").value == 100
        assert not sheet.get("B1").has_formula
        assert sheet.get("B2").value == 200
        assert report.total == 1  # only B2 recomputed


class TestIncrementality:
    def test_single_edit_recomputes_only_dirty_subgraph(self):
        sheet = Sheet()
        for row in range(50):
            sheet.set((row, 0), float(row + 1))
            sheet.set((row, 1), formula=f"=A{row + 1}*2")
        sheet.set((50, 2), formula="=SUM(B1:B50)")
        engine = FormulaEngine(sheet)
        first = engine.recalculate()
        assert first.total == 51
        engine.set_value("A10", 0.5)
        report = engine.recalculate()
        # Exactly the edited row's formula and the aggregate recompute.
        assert report.total == 2
        assert sheet.get("B10").value == 1.0

    def test_clean_recalculate_is_a_no_op(self):
        engine = FormulaEngine(_chain_sheet())
        engine.recalculate()
        report = engine.recalculate()
        assert report.total == 0

    def test_external_mutation_triggers_resync(self):
        sheet = _chain_sheet()
        engine = FormulaEngine(sheet)
        engine.recalculate()
        # Mutation behind the engine's back (plain sheet.set, no engine).
        sheet.set("A2", 40)
        report = engine.recalculate()
        assert report.total == 3  # full resync: everything recomputed
        assert sheet.get("B1").value == 43


class TestCyclesAndErrors:
    def test_self_reference_is_cycle(self):
        sheet = Sheet()
        sheet.set("A1", formula="=A1+1")
        FormulaEngine(sheet).recalculate()
        assert sheet.get("A1").value == CYCLE_ERROR

    def test_two_cell_cycle_marks_both_and_dependents(self):
        sheet = Sheet()
        sheet.set("A1", formula="=A2")
        sheet.set("A2", formula="=A1")
        sheet.set("A3", formula="=A1+1")
        report = FormulaEngine(sheet).recalculate()
        assert report == (0, 3)
        assert sheet.get("A1").value == CYCLE_ERROR
        assert sheet.get("A2").value == CYCLE_ERROR
        assert sheet.get("A3").value == CYCLE_ERROR

    def test_diamond_is_not_a_false_cycle(self):
        sheet = Sheet()
        sheet.set("A1", 1)
        sheet.set("B1", formula="=A1")
        sheet.set("C1", formula="=A1")
        sheet.set("D1", formula="=B1+C1")
        report = FormulaEngine(sheet).recalculate()
        assert report == (3, 0)
        assert sheet.get("D1").value == 2

    def test_breaking_a_cycle_clears_the_error(self):
        sheet = Sheet()
        sheet.set("A1", formula="=A2")
        sheet.set("A2", formula="=A1")
        engine = FormulaEngine(sheet)
        engine.recalculate()
        engine.set_value("A2", 7)
        engine.recalculate()
        assert sheet.get("A1").value == 7

    def test_errors_propagate_through_operators_and_functions(self):
        sheet = Sheet()
        sheet.set("A1", formula="=1/0")
        sheet.set("A2", 5)
        sheet.set("B1", formula="=A1&A2")
        sheet.set("B2", formula="=A1=A2")
        sheet.set("B3", formula="=SUM(A1:A2)")
        sheet.set("B4", formula="=-A1")
        FormulaEngine(sheet).recalculate()
        for address in ("A1", "B1", "B2", "B3", "B4"):
            assert sheet.get(address).value == DIV0_ERROR

    def test_iferror_catches_error_values(self):
        sheet = Sheet()
        sheet.set("A1", formula="=1/0")
        sheet.set("B1", formula='=IFERROR(A1,"caught")')
        sheet.set("B2", formula="=IFERROR(A1)")
        sheet.set("B3", formula="=IFERROR(41+1,0)")
        FormulaEngine(sheet).recalculate()
        assert sheet.get("B1").value == "caught"
        assert sheet.get("B2").value == ""
        assert sheet.get("B3").value == 42

    def test_if_branches_are_lazy(self):
        sheet = Sheet()
        sheet.set("A1", 0)
        sheet.set("B1", formula="=IF(A1=0,0,100/A1)")
        engine = FormulaEngine(sheet)
        engine.recalculate()
        assert sheet.get("B1").value == 0
        engine.set_value("A1", 4)
        engine.recalculate()
        assert sheet.get("B1").value == 25
        # ... but an error in the *condition* still propagates.
        engine.set_formula("C1", "=IF(1/0,1,2)")
        engine.recalculate()
        assert sheet.get("C1").value == DIV0_ERROR

    def test_unknown_function_and_bad_syntax_become_error_values(self):
        sheet = Sheet()
        sheet.set("A1", formula="=NOTAFUNCTION(1)")
        sheet.set("A2", formula="=SUM((")
        report = FormulaEngine(sheet).recalculate()
        assert report == (0, 2)
        assert sheet.get("A1").value == NAME_ERROR
        assert sheet.get("A2").value == NAME_ERROR

    def test_error_values_are_strings_and_typed_error(self):
        from repro.sheet.cell import CellType, infer_cell_type

        assert DIV0_ERROR == "#DIV/0!"
        assert is_error_value(DIV0_ERROR)
        assert not is_error_value("#DIV/0!")
        assert infer_cell_type(str(VALUE_ERROR)) is CellType.ERROR
        assert isinstance(ErrorValue("#DIV/0!"), str)

    def test_error_values_survive_serialization_round_trip(self):
        from repro.sheet.io import sheet_from_dict, sheet_to_dict

        source = Sheet()
        source.set("A1", formula="=1/0")
        FormulaEngine(source).recalculate()
        # A value-only carrier of the committed error (e.g. a mirrored
        # column, as the sales template builds): after a round-trip the
        # value must still *be* an error, not equal-looking text.
        carrier = Sheet()
        carrier.set("A1", source.get("A1").value)
        carrier.set("A2", 5)
        reloaded = sheet_from_dict(sheet_to_dict(carrier))
        assert is_error_value(reloaded.get("A1").value)
        engine = FormulaEngine(reloaded)
        assert engine.evaluate_formula("=SUM(A1:A2)") == DIV0_ERROR
        assert engine.evaluate_formula("=A1=5") == DIV0_ERROR


class TestEvaluateWithoutCommit:
    def test_evaluate_formula_does_not_write_values(self):
        sheet = _chain_sheet()
        engine = FormulaEngine(sheet)
        assert engine.evaluate_formula("=B2+1") == 15
        assert sheet.get("B1").value is None
        assert sheet.get("B2").value is None

    def test_evaluate_cell_follows_chain(self):
        engine = FormulaEngine(_chain_sheet())
        assert engine.evaluate_cell("B2") == 14
        assert engine.evaluate_cell("A1") == 3

    def test_evaluate_sees_transitive_dirtiness_before_recalc(self):
        # Regression: the dirty set must be closed under dependents, or an
        # evaluation between an engine-mediated edit and the next
        # recalculate() would serve B2's committed pre-edit value.
        sheet = _chain_sheet()
        engine = FormulaEngine(sheet)
        engine.recalculate()
        engine.set_value("A1", 30)
        assert engine.evaluate_cell("B2") == 68
        assert engine.evaluate_formula("=B2+1") == 69
        assert sheet.get("B2").value == 14  # nothing committed yet
        engine.recalculate()
        assert sheet.get("B2").value == 68


def _random_sheet(rng: np.random.Generator) -> Sheet:
    """A random grid with per-row formulas, chained cells and aggregates."""
    sheet = Sheet("Random")
    n_rows = int(rng.integers(6, 14))
    for row in range(n_rows):
        sheet.set((row, 0), float(rng.integers(0, 50)))
        sheet.set((row, 1), float(np.round(rng.uniform(0.5, 100.0), 2)))
        sheet.set((row, 2), formula=f"=A{row + 1}+B{row + 1}")
        # Guarded and unguarded divisions: edits that write zeros turn the
        # unguarded ones into #DIV/0! cells, exercising error parity.
        if row % 2:
            sheet.set((row, 3), formula=f"=ROUND(B{row + 1}/A{row + 1},2)")
        else:
            sheet.set((row, 3), formula=f"=IF(A{row + 1}=0,0,B{row + 1}/A{row + 1})")
    sheet.set((n_rows, 2), formula=f"=SUM(C1:C{n_rows})")
    sheet.set((n_rows, 3), formula=f"=COUNT(D1:D{n_rows})")
    sheet.set((n_rows + 1, 2), formula=f"=C{n_rows + 1}*2")
    return sheet


def _full_pass_copy(sheet: Sheet) -> Sheet:
    """A fresh full-pass evaluation of the sheet's final state."""
    fresh = sheet.copy()
    for __, cell in fresh.cells():
        if cell.has_formula:
            cell.value = None
    FormulaEngine(fresh).recalculate()
    return fresh


class TestIncrementalFullPassParity:
    """N random edits + incremental recalc == fresh full pass (property)."""

    def test_random_edit_streams_match_full_pass(self, rng):
        for __ in range(4):
            sheet = _random_sheet(rng)
            engine = FormulaEngine(sheet)
            engine.recalculate()
            n_rows = sheet.n_rows
            for __ in range(20):
                row = int(rng.integers(0, n_rows - 2))
                col = int(rng.integers(0, 2))
                if rng.random() < 0.15:
                    value = 0.0  # force some #DIV/0! transitions
                else:
                    value = float(np.round(rng.uniform(0.0, 200.0), 2))
                engine.set_value((row, col), value)
                engine.recalculate()
            fresh = _full_pass_copy(sheet)
            for address, cell in sheet.cells():
                assert fresh.get(address).value == cell.value, (
                    f"divergence at {address.to_a1()}: incremental "
                    f"{cell.value!r} vs full pass {fresh.get(address).value!r}"
                )

    def test_formula_edits_match_full_pass(self, rng):
        sheet = _random_sheet(rng)
        engine = FormulaEngine(sheet)
        engine.recalculate()
        n_rows = sheet.n_rows
        formulas = ("=A{r}*2", "=B{r}-A{r}", "=IFERROR(B{r}/A{r},-1)", "=MAX(A{r},B{r})")
        for step in range(12):
            row = int(rng.integers(0, n_rows - 2))
            template = formulas[int(rng.integers(len(formulas)))]
            engine.set_formula((row, 2), template.format(r=row + 1))
            engine.recalculate()
        fresh = _full_pass_copy(sheet)
        for address, cell in sheet.cells():
            assert fresh.get(address).value == cell.value
