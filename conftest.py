"""Repo-level pytest wiring: CLI options and path-based markers.

Lives at the repository root so the options register for every
invocation shape (`pytest`, `pytest tests/...`, `pytest benchmarks/...`).
"""

from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        action="store",
        type=int,
        default=20240521,
        help=(
            "Seed installed into the global random/NumPy RNGs before every "
            "test (see the autouse _seed_global_rngs fixture), so code "
            "paths that fall back to global randomness are reproducible "
            "and test order cannot leak RNG state between tests."
        ),
    )


def pytest_collection_modifyitems(items):
    """Every test under ``benchmarks/`` carries the ``bench`` marker."""
    for item in items:
        if "benchmarks" in Path(str(item.fspath)).parts:
            item.add_marker(pytest.mark.bench)
