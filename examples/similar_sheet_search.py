"""Using the similar-sheet / similar-region primitives directly.

The paper positions "similar-sheet" and "similar-region" as primitives of
independent interest beyond formula recommendation (e.g. content
auto-filling, error detection).  This example uses the trained encoder and
the ANN indexes directly — without the formula pipeline — to find, for a
given sheet, its nearest neighbours in a corpus, and for a given cell, the
most similar regions on those neighbours.

Run with:  python examples/similar_sheet_search.py
"""

import numpy as np

from repro import (
    ModelConfig,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.ann import ExactIndex
from repro.sheet import CellAddress


def main() -> None:
    print("Training representation models ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )

    print("Embedding and indexing the TI corpus at sheet level ...")
    corpus = build_enterprise_corpus("TI")
    sheets = [(workbook.name, sheet) for workbook in corpus.workbooks for sheet in workbook]
    index = ExactIndex(encoder.coarse_dimension)
    for position, (__, sheet) in enumerate(sheets):
        index.add(position, encoder.embed_sheet(sheet))

    # Pick a query sheet and show its nearest similar-sheets.
    query_position = 0
    query_name, query_sheet = sheets[query_position]
    print(f"\nQuery sheet: {query_name} / {query_sheet.name} ({query_sheet.n_rows} rows)")
    print("Most similar sheets in the corpus:")
    hits = index.search(encoder.embed_sheet(query_sheet), k=6)
    for hit in hits:
        if hit.key == query_position:
            continue
        workbook_name, sheet = sheets[int(hit.key)]
        print(
            f"  distance {hit.distance:6.3f}  {workbook_name} / {sheet.name} "
            f"({sheet.n_rows} rows, {sheet.n_formulas()} formulas)"
        )

    # Region-level: find the most similar formula region for one formula cell.
    formula_cells = query_sheet.formula_cells()
    if formula_cells:
        address, cell = formula_cells[0]
        print(f"\nQuery region: around {query_sheet.name}!{address.to_a1()} ({cell.formula})")
        query_vector = encoder.embed_region(query_sheet, address)
        best = None
        for workbook_name, sheet in sheets:
            if sheet is query_sheet:
                continue
            for other_address, other_cell in sheet.formula_cells():
                vector = encoder.embed_region(sheet, other_address)
                distance = float(np.sum((vector - query_vector) ** 2))
                if best is None or distance < best[0]:
                    best = (distance, workbook_name, sheet.name, other_address, other_cell.formula)
        if best is not None:
            distance, workbook_name, sheet_name, other_address, formula = best
            print(
                f"Most similar region: {workbook_name} / {sheet_name}!{other_address.to_a1()} "
                f"(distance {distance:.3f})"
            )
            print(f"  its formula: {formula}")


if __name__ == "__main__":
    main()
