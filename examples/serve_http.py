"""Serve Auto-Formula over HTTP: the network front-end end to end.

This stands up the full serving stack on a real socket and talks to it
like a client application would:

1. train the representation models and load an organization's workbooks
   into a FormulaService workspace (the offline phase),
2. start the asyncio JSON-over-HTTP server on a background thread
   (`start_server_in_background`, ephemeral port),
3. serve recommendation requests over the wire — first one at a time,
   then as a concurrent client swarm whose same-sheet requests the
   server coalesces into single engine batches,
4. apply a live cell edit through the edit endpoint (incremental recalc
   plus re-index),
5. read the server's observability surface (/stats): admission counters,
   batch-size histogram, coalescing ratio, queue wait and per-endpoint
   latency percentiles, and
6. pull the tracing/metrics surface: the Prometheus text exposition
   (/metrics) and the sampled span trees (/traces) of the requests just
   served, validating both shapes — this script doubles as the CI smoke
   test for the observability endpoints.

Run with:  python examples/serve_http.py
"""

from repro import (
    AutoFormulaConfig,
    FormulaService,
    ModelConfig,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.corpus import sample_test_cases, split_corpus
from repro.server import FormulaClient, ServerConfig, run_client_swarm, start_server_in_background
from repro.sheet.io import sheet_to_dict


def main() -> None:
    print("1) Training models and loading the organization's workbooks ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )
    corpus = build_enterprise_corpus("PGE")
    test_workbooks, reference_workbooks = split_corpus(corpus, 0.15, "timestamp")
    service = FormulaService(encoder, AutoFormulaConfig())
    service.create_workspace("pge", workbooks=reference_workbooks)
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=3)

    print("2) Starting the HTTP server on an ephemeral port ...")
    config = ServerConfig(max_batch_size=8, max_batch_wait_s=0.01)
    with start_server_in_background(service, config) as handle:
        print(f"   listening on {handle.base_url}")
        client = FormulaClient(handle.host, handle.port)
        print(f"   /health -> {client.health()}")

        print("3) Serving requests over the wire ...")
        case = cases[0]
        response = client.recommend("pge", case.target_sheet, case.target_cell.to_a1())
        print(
            f"   single request: {response['formula']!r} "
            f"(confidence {response['confidence'] or 0.0:.2f}, "
            f"rode a batch of {response['batch_size']})"
        )

        # A swarm of concurrent clients asking about the same sheets: the
        # micro-batcher coalesces simultaneous arrivals into one engine
        # batch per workspace, so they share featurization and retrieval.
        tasks = [
            (sheet_to_dict(case.target_sheet), case.target_cell.to_a1())
            for case in cases[:12]
        ]
        swarm = run_client_swarm(handle.host, handle.port, "pge", tasks, concurrency=6)
        summary = swarm.latency_summary()
        print(
            f"   swarm: {swarm.n_ok}/{swarm.n_requests} ok, "
            f"{swarm.requests_per_second:.1f} req/s, "
            f"p50 {summary['p50_seconds'] * 1000:.1f} ms, "
            f"p99 {summary['p99_seconds'] * 1000:.1f} ms"
        )

        print("4) Applying a live edit through the wire ...")
        workbook = reference_workbooks[0]
        sheet = next(iter(workbook))
        address = next(iter(sheet.cells()))[0]
        edit = client.edit_cell(
            "pge", workbook.name, sheet.name, address.to_a1(), value=123.0
        )
        print(f"   edit {workbook.name}/{sheet.name}!{address.to_a1()} -> {edit['recalc']}")

        print("5) Reading the observability surface ...")
        stats = client.stats()
        print(f"   counters          : {stats['counters']}")
        print(f"   batch sizes       : {stats['batch_size_histogram']}")
        print(f"   coalescing ratio  : {stats['coalescing_ratio']:.2f}")
        print(f"   sheet cache       : {stats['sheet_cache']}")
        recommend_stats = stats["endpoints"].get("recommend", {})
        if recommend_stats.get("count"):
            print(
                f"   recommend latency : p50 {recommend_stats['p50_seconds'] * 1000:.1f} ms, "
                f"p99 {recommend_stats['p99_seconds'] * 1000:.1f} ms "
                f"over {recommend_stats['count']} calls"
            )

        print("6) Pulling the tracing/metrics surface ...")
        metrics = client.metrics_text()
        lines = metrics.strip().splitlines()
        # Prometheus text exposition: TYPE headers, counters with the
        # _total suffix, and summary quantiles for endpoint latency.
        assert any(line.startswith("# TYPE ") for line in lines), "no TYPE headers"
        assert any(
            line.startswith("server_accepted_total ") for line in lines
        ), "missing server_accepted_total"
        assert any(
            line.startswith('server_endpoint_seconds{endpoint="recommend"') for line in lines
        ), "missing recommend latency summary"
        print(f"   /metrics -> {len(lines)} exposition lines (shape ok)")

        traces = client.traces()
        assert set(traces) == {"recent", "slow", "stats"}, sorted(traces)
        recommend_traces = [
            tree
            for tree in traces["recent"]
            if tree["root"]["attributes"].get("endpoint") == "recommend"
        ]
        assert recommend_traces, "no recommend trace was sampled"

        def walk(node, names, depth=0, lines_out=None):
            names.add(node["name"])
            if lines_out is not None and depth <= 3:
                lines_out.append(
                    f"   {'  ' * depth}{node['name']:<18} {node['duration_ms']:>7.2f} ms"
                )
            for child in node["children"]:
                walk(child, names, depth + 1, lines_out)

        # A coalesced batch's flush span lives in its *leader's* trace
        # (riders carry batch_size attributes instead), so look for a
        # leader among the sampled recommend requests.
        tree, stage_names = None, set()
        for candidate in reversed(recommend_traces):
            names = set()
            walk(candidate["root"], names)
            if "batch.flush" in names:
                tree, stage_names = candidate, names
                break
        assert tree is not None, "no leader trace with a batch.flush span"
        rendered = []
        walk(tree["root"], set(), 0, rendered)
        assert {"http.request", "wire.decode", "batch.flush"} <= stage_names, stage_names
        print(f"   /traces -> {len(traces['recent'])} sampled traces; one request's tree:")
        print("\n".join(rendered[:12]))
    print("   server drained and stopped.")


if __name__ == "__main__":
    main()
