"""Compare Auto-Formula against every baseline on one enterprise corpus.

Reproduces a single column of the paper's Table 2 interactively: pick a
corpus, fit every method on its reference workbooks, and print
recall / precision / F1 plus a few example predictions per method.

Run with:  python examples/method_comparison.py [corpus]
           (corpus is one of PGE, Cisco, TI, Enron; default PGE)
"""

import sys

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    ModelConfig,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.baselines import (
    MondrianBaseline,
    PromptConfig,
    SimulatedLLMBaseline,
    SpreadsheetCoderBaseline,
    WeakSupervisionBaseline,
)
from repro.evaluation import prepare_corpus_evaluation, run_method_on_cases


def main() -> None:
    corpus_name = sys.argv[1] if len(sys.argv) > 1 else "PGE"

    print("Training Auto-Formula's representation models ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )

    print(f"Preparing the {corpus_name} corpus (timestamp split) ...")
    corpus = build_enterprise_corpus(corpus_name)
    workload = prepare_corpus_evaluation(corpus, "timestamp", 0.15)
    print(
        f"  {len(workload.reference_workbooks)} reference workbooks, "
        f"{len(workload.cases)} test formulas\n"
    )

    methods = [
        AutoFormula(encoder, AutoFormulaConfig()),
        MondrianBaseline(),
        WeakSupervisionBaseline(),
        SpreadsheetCoderBaseline(),
        SimulatedLLMBaseline(PromptConfig("few_shot_rag", False, "precise", "gpt-4")),
    ]

    print(f"{'method':40s} {'R':>6s} {'P':>6s} {'F1':>6s}")
    print("-" * 62)
    for method in methods:
        run = run_method_on_cases(
            method, workload.reference_workbooks, workload.cases, corpus_name
        )
        metrics = run.metrics
        print(f"{method.name[:40]:40s} {metrics.recall:6.2f} {metrics.precision:6.2f} {metrics.f1:6.2f}")

    print("\nExample Auto-Formula predictions:")
    system = methods[0]
    shown = 0
    for case in workload.cases:
        prediction = system.predict(case.target_sheet, case.target_cell)
        if prediction is None:
            continue
        status = "hit " if prediction.formula == case.ground_truth else "miss"
        print(f"  [{status}] {case.sheet_name}!{case.target_cell.to_a1():6s} {prediction.formula}")
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    main()
