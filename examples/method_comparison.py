"""Compare Auto-Formula against every baseline on one enterprise corpus.

Reproduces a single column of the paper's Table 2 interactively through
the service layer: every method — Auto-Formula and the baselines alike —
is mounted in its own workspace of one FormulaService, fitted on the same
reference corpus, and evaluated on the same cases.

Run with:  python examples/method_comparison.py [corpus]
           python examples/method_comparison.py [corpus] --legacy
           (corpus is one of PGE, Cisco, TI, Enron; default PGE)
"""

import sys

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    FormulaService,
    ModelConfig,
    RecommendationRequest,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.baselines import (
    MondrianBaseline,
    PromptConfig,
    SimulatedLLMBaseline,
    SpreadsheetCoderBaseline,
    WeakSupervisionBaseline,
)
from repro.evaluation import prepare_corpus_evaluation, run_method_on_cases


def build_baselines():
    return [
        MondrianBaseline(),
        WeakSupervisionBaseline(),
        SpreadsheetCoderBaseline(),
        SimulatedLLMBaseline(PromptConfig("few_shot_rag", False, "precise", "gpt-4")),
    ]


def prepare(corpus_name):
    print("Training Auto-Formula's representation models ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )

    print(f"Preparing the {corpus_name} corpus (timestamp split) ...")
    corpus = build_enterprise_corpus(corpus_name)
    workload = prepare_corpus_evaluation(corpus, "timestamp", 0.15)
    print(
        f"  {len(workload.reference_workbooks)} reference workbooks, "
        f"{len(workload.cases)} test formulas\n"
    )
    return encoder, workload


def main(corpus_name: str) -> None:
    encoder, workload = prepare(corpus_name)

    # One service, one workspace per method, all sharing the same corpus:
    # mounting a workspace fits its predictor on the reference workbooks.
    # The "auto-formula" workspace uses the service's default predictor.
    service = FormulaService(encoder, AutoFormulaConfig())
    service.create_workspace("auto-formula", workbooks=workload.reference_workbooks)
    for method in build_baselines():
        service.create_workspace(
            method.name, predictor=method, workbooks=workload.reference_workbooks
        )

    print(f"{'workspace / method':40s} {'R':>6s} {'P':>6s} {'F1':>6s}")
    print("-" * 62)
    for workspace in service:
        metrics = workspace.evaluate(workload.cases, corpus_name).metrics
        print(
            f"{workspace.predictor.name[:40]:40s} "
            f"{metrics.recall:6.2f} {metrics.precision:6.2f} {metrics.f1:6.2f}"
        )

    print("\nExample Auto-Formula recommendations (served):")
    workspace = service["auto-formula"]
    responses = workspace.serve_batch(
        [RecommendationRequest(case.target_sheet, case.target_cell) for case in workload.cases]
    )
    shown = 0
    for case, response in zip(workload.cases, responses):
        if not response.accepted:
            continue
        status = "hit " if response.formula == case.ground_truth else "miss"
        print(
            f"  [{status}] {case.sheet_name}!{case.target_cell.to_a1():6s} "
            f"{response.formula}  ({response.latency_seconds * 1000:.1f} ms)"
        )
        shown += 1
        if shown >= 8:
            break
    summary = workspace.latency.summary()
    print(
        f"\nServed {int(summary['count'])} requests: "
        f"mean {summary['mean_seconds'] * 1000:.1f} ms, "
        f"p95 {summary['p95_seconds'] * 1000:.1f} ms per request"
    )


def legacy_main(corpus_name: str) -> None:
    """The pre-service direct runner API, kept exercised side by side."""
    encoder, workload = prepare(corpus_name)
    methods = [AutoFormula(encoder, AutoFormulaConfig())] + build_baselines()

    print(f"{'method':40s} {'R':>6s} {'P':>6s} {'F1':>6s}")
    print("-" * 62)
    for method in methods:
        run = run_method_on_cases(
            method, workload.reference_workbooks, workload.cases, corpus_name
        )
        metrics = run.metrics
        print(f"{method.name[:40]:40s} {metrics.recall:6.2f} {metrics.precision:6.2f} {metrics.f1:6.2f}")

    print("\nExample Auto-Formula predictions:")
    system = methods[0]
    shown = 0
    for case in workload.cases:
        prediction = system.predict(case.target_sheet, case.target_cell)
        if prediction is None:
            continue
        status = "hit " if prediction.formula == case.ground_truth else "miss"
        print(f"  [{status}] {case.sheet_name}!{case.target_cell.to_a1():6s} {prediction.formula}")
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    arguments = [argument for argument in sys.argv[1:] if argument != "--legacy"]
    corpus = arguments[0] if arguments else "PGE"
    if "--legacy" in sys.argv[1:]:
        legacy_main(corpus)
    else:
        main(corpus)
