"""The paper's Figure 1 scenario, built by hand.

A user maintains survey spreadsheets.  An older survey already contains a
``COUNTIF`` summary; a new survey (with a different number of responses)
needs the same logic in its own summary block.  Auto-Formula retrieves the
old sheet as a similar-sheet, the old summary cell as a similar-region, and
re-grounds the formula's parameters into the new sheet.

Run with:  python examples/survey_counting.py
"""

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    CellAddress,
    ModelConfig,
    Sheet,
    TrainingConfig,
    Workbook,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.formula import FormulaEngine, is_error_value


def build_survey(name: str, colors, n_responses: int, with_summary_formulas: bool) -> Sheet:
    """A survey sheet: a response table plus a per-answer count summary."""
    sheet = Sheet(name)
    sheet.set("A1", "Color preference survey")
    sheet.set("B6", "Respondent")
    sheet.set("C6", "Answer")
    sheet.set("D6", "Count")
    for offset in range(n_responses):
        sheet.set((6 + offset, 1), f"person {offset + 1}")
        sheet.set((6 + offset, 2), colors[offset % len(colors)])
    first_data_row = 8                      # A1 row number of the first response
    last_data_row = 6 + n_responses         # A1 row number of the last response
    summary_start = 6 + n_responses + 2     # 0-based row of the first summary line
    for index, color in enumerate(colors):
        row = summary_start + index
        sheet.set((row, 2), color)
        if with_summary_formulas:
            sheet.set(
                (row, 3),
                formula=f"=COUNTIF(C{first_data_row - 1}:C{last_data_row},C{row + 1})",
            )
    FormulaEngine(sheet).recalculate()
    return sheet


def main() -> None:
    colors = ["Brown", "Green", "Blue", "Red"]

    print("Training representation models ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )

    # The organization's existing workbook: last quarter's survey, 42 responses.
    reference = Workbook("survey_q1.xlsx")
    reference.add_sheet(build_survey("Responses", colors, n_responses=42, with_summary_formulas=True))

    # The new survey being edited: 31 responses, summary still empty.
    target_sheet = build_survey("Responses", colors, n_responses=31, with_summary_formulas=False)

    system = AutoFormula(encoder, AutoFormulaConfig(acceptance_threshold=2.0))
    system.fit([reference])

    print("\nRecommendations for the new survey's summary block:")
    engine = FormulaEngine(target_sheet)
    summary_start = 6 + 31 + 2
    accepted = []
    for index, color in enumerate(colors):
        target_cell = CellAddress(summary_start + index, 3)
        prediction = system.predict(target_sheet, target_cell)
        if prediction is None:
            print(f"  D{target_cell.row + 1} ({color}): no recommendation")
            continue
        value = engine.evaluate_formula(prediction.formula)
        shown = value if is_error_value(value) else f"counts {int(value)} responses"
        print(
            f"  D{target_cell.row + 1} ({color:5s}): {prediction.formula}"
            f"   -> {shown}   (confidence {prediction.confidence:.2f})"
        )
        accepted.append((target_cell, prediction.formula, color))

    # Live editing: accept the recommendations, then change one response and
    # watch the dependency-graph engine recalculate only the affected counts.
    print("\nLive edit: respondent 1 changes their answer to Green")
    for target_cell, formula, __ in accepted:
        engine.set_formula(target_cell, formula)
    engine.recalculate()

    def count_of(cell):
        value = target_sheet.get(cell).value
        return value if is_error_value(value) else int(value)

    before = {color: count_of(cell) for cell, __, color in accepted}
    engine.set_value((6, 2), "Green")
    report = engine.recalculate()
    print(f"  incremental recalc: {report.total} formulas recomputed")
    for cell, __, color in accepted:
        after = count_of(cell)
        marker = f"  ({before[color]} -> {after})" if after != before[color] else ""
        print(f"  D{cell.row + 1} ({color:5s}): {after}{marker}")


if __name__ == "__main__":
    main()
