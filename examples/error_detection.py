"""Table error detection with the similar-sheet primitive (paper future work).

A spreadsheet copied from a template contains one formula that was
accidentally overwritten with the wrong logic.  The
:class:`~repro.extensions.FormulaErrorDetector` cross-checks every formula
on the audited sheet against the most similar sheets in the organization
and flags cells whose formula *template* disagrees with its peers.

Run with:  python examples/error_detection.py
"""

import numpy as np

from repro import ModelConfig, TrainingConfig, build_training_universe, generate_training_pairs, train_models
from repro.corpus import SurveyTemplate
from repro.extensions import FormulaErrorDetector, ValueAutoFill
from repro.sheet import CellAddress


def main() -> None:
    print("Training representation models ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    encoder, __ = train_models(
        generate_training_pairs(universe), ModelConfig(), TrainingConfig(epochs=8)
    )

    rng = np.random.default_rng(11)
    template = SurveyTemplate(3, rng)
    reference = template.instantiate(rng, 0)   # last month's survey (correct)
    audited = template.instantiate(rng, 1)     # this month's survey

    # Introduce a realistic mistake: one COUNTIF in the summary block was
    # overwritten by an unrelated SUM during editing.
    audited_sheet = audited.sheets[1]
    corrupted = None
    for address, cell in audited_sheet.formula_cells():
        if "COUNTIF" in (cell.formula or ""):
            print(f"Corrupting {audited_sheet.name}!{address.to_a1()}: {cell.formula} -> =SUM(A1:A2)")
            audited_sheet.set(address, formula="=SUM(A1:A2)", style=cell.style)
            corrupted = address
            break

    detector = FormulaErrorDetector(encoder)
    detector.fit([reference])
    anomalies = detector.audit(audited_sheet)

    print(f"\nAudit found {len(anomalies)} suspicious formula cell(s):")
    for anomaly in anomalies:
        marker = "  <-- the injected error" if anomaly.cell == corrupted else ""
        print(
            f"  {anomaly.cell.to_a1():6s} severity {anomaly.severity:.2f}: "
            f"uses {anomaly.observed_template!r} but similar sheets use {anomaly.expected_template!r} "
            f"(see {anomaly.reference_sheet}!{anomaly.reference_cell}){marker}"
        )

    # Bonus: the same primitives can auto-fill missing header values.
    autofill = ValueAutoFill(encoder, acceptance_threshold=2.0)
    autofill.fit([reference])
    header_cell = CellAddress(5, 2)
    expected = audited_sheet.get(header_cell).value
    probe_sheet = audited_sheet.copy()
    probe_sheet.set(header_cell, value=None)
    suggestion = autofill.suggest(probe_sheet, header_cell)
    if suggestion is not None:
        print(
            f"\nAuto-fill: cell {header_cell.to_a1()} (blanked) -> suggested {suggestion.value!r} "
            f"(actual {expected!r}, confidence {suggestion.confidence:.2f})"
        )


if __name__ == "__main__":
    main()
