"""Quickstart: train Auto-Formula and get a formula recommendation.

This walks the full pipeline end to end on a small synthetic organization:

1. build a training universe of spreadsheets and harvest weakly-supervised
   similar-sheet / similar-region pairs,
2. train the coarse and fine representation models with triplet learning,
3. index an organization's existing workbooks (the offline phase),
4. ask for a formula recommendation in a target cell (the online phase).

Run with:  python examples/quickstart.py
"""

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    ModelConfig,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.corpus import sample_test_cases, split_corpus
from repro.formula import FormulaEvaluator


def main() -> None:
    # ----------------------------------------------------------- offline: train
    print("1) Building training universe and weak-supervision pairs ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    pairs = generate_training_pairs(universe)
    print(f"   {len(universe)} workbooks -> {pairs.summary()}")

    print("2) Training coarse/fine representation models (triplet loss) ...")
    encoder, history = train_models(pairs, ModelConfig(), TrainingConfig(epochs=8))
    print(f"   coarse loss trace: {[round(loss, 3) for loss in history.coarse_losses]}")
    print(f"   fine   loss trace: {[round(loss, 3) for loss in history.fine_losses]}")

    # -------------------------------------------------------- offline: indexing
    print("3) Indexing the organization's existing workbooks (PGE corpus) ...")
    corpus = build_enterprise_corpus("PGE")
    test_workbooks, reference_workbooks = split_corpus(corpus, 0.15, "timestamp")
    system = AutoFormula(encoder, AutoFormulaConfig())
    system.fit(reference_workbooks)
    print(
        f"   indexed {system.n_reference_sheets} sheets "
        f"and {system.n_reference_formulas} reference formulas"
    )

    # ------------------------------------------------------------------ online
    print("4) Recommending formulas for held-out target cells ...")
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=3)
    shown = 0
    for case in cases:
        prediction = system.predict(case.target_sheet, case.target_cell)
        if prediction is None:
            continue
        shown += 1
        match = "HIT " if prediction.formula == case.ground_truth else "MISS"
        print(
            f"   [{match}] {case.workbook_name}/{case.sheet_name}!{case.target_cell.to_a1()}"
        )
        print(f"          recommended : {prediction.formula}   (confidence {prediction.confidence:.2f})")
        print(f"          ground truth: {case.ground_truth}")
        print(
            "          adapted from : "
            f"{prediction.details['reference_formula']} @ "
            f"{prediction.details['reference_sheet']}!{prediction.details['reference_cell']}"
        )
        try:
            value = FormulaEvaluator(case.target_sheet).evaluate_formula(prediction.formula)
            print(f"          evaluates to: {value}")
        except Exception:
            pass
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
