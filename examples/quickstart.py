"""Quickstart: train Auto-Formula and serve formula recommendations.

This walks the full pipeline end to end on a small synthetic organization:

1. build a training universe of spreadsheets and harvest weakly-supervised
   similar-sheet / similar-region pairs,
2. train the coarse and fine representation models with triplet learning,
3. stand up a FormulaService workspace for the organization and load its
   existing workbooks (the offline phase), mutating the corpus in place,
4. serve typed recommendation requests for held-out target cells (the
   online phase).

Run with:  python examples/quickstart.py            (service API)
           python examples/quickstart.py --legacy   (direct predictor API)
"""

import sys

from repro import (
    AutoFormula,
    AutoFormulaConfig,
    FormulaService,
    ModelConfig,
    RecommendationRequest,
    TrainingConfig,
    build_enterprise_corpus,
    build_training_universe,
    generate_training_pairs,
    train_models,
)
from repro.corpus import sample_test_cases, split_corpus
from repro.formula import FormulaEngine


def train_encoder():
    """Steps 1-2: weak supervision plus triplet training (shared by both APIs)."""
    print("1) Building training universe and weak-supervision pairs ...")
    universe = build_training_universe(n_families=8, copies_per_family=3, n_singletons=6)
    pairs = generate_training_pairs(universe)
    print(f"   {len(universe)} workbooks -> {pairs.summary()}")

    print("2) Training coarse/fine representation models (triplet loss) ...")
    encoder, history = train_models(pairs, ModelConfig(), TrainingConfig(epochs=8))
    print(f"   coarse loss trace: {[round(loss, 3) for loss in history.coarse_losses]}")
    print(f"   fine   loss trace: {[round(loss, 3) for loss in history.fine_losses]}")
    return encoder


def main() -> None:
    encoder = train_encoder()

    # ------------------------------------------------- offline: the workspace
    print("3) Creating a service workspace for the organization (PGE corpus) ...")
    corpus = build_enterprise_corpus("PGE")
    test_workbooks, reference_workbooks = split_corpus(corpus, 0.15, "timestamp")

    service = FormulaService(encoder, AutoFormulaConfig())
    workspace = service.create_workspace("pge", workbooks=reference_workbooks)
    system = workspace.predictor
    print(
        f"   workspace {workspace.name!r}: {len(workspace)} workbooks, "
        f"{system.n_reference_sheets} sheets, "
        f"{system.n_reference_formulas} reference formulas"
    )

    # Corpora churn in production: drop a workbook and index it again.  The
    # indexes are mutated in place (tombstones + appends), no refit happens,
    # and predictions stay identical to a fresh fit on the same corpus.
    churned = workspace.remove_workbook(reference_workbooks[0].name)
    workspace.add_workbook(churned)
    print(
        f"   after remove + re-add of {churned.name!r}: "
        f"{system.n_reference_sheets} sheets still indexed (no refit)"
    )

    # ------------------------------------------------------------------ online
    print("4) Serving recommendation requests for held-out target cells ...")
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=3)
    requests = [
        RecommendationRequest(case.target_sheet, case.target_cell, request_id=str(position))
        for position, case in enumerate(cases)
    ]
    responses = workspace.serve_batch(requests)

    shown = 0
    for case, response in zip(cases, responses):
        if not response.accepted:
            continue
        shown += 1
        match = "HIT " if response.formula == case.ground_truth else "MISS"
        print(
            f"   [{match}] {case.workbook_name}/{case.sheet_name}!{case.target_cell.to_a1()}"
        )
        print(
            f"          recommended : {response.formula}   "
            f"(confidence {response.confidence:.2f}, "
            f"{response.latency_seconds * 1000:.1f} ms)"
        )
        print(f"          ground truth: {case.ground_truth}")
        print(
            "          adapted from : "
            f"{response.provenance['reference_formula']} @ "
            f"{response.provenance['reference_sheet']}!{response.provenance['reference_cell']}"
        )
        # Engine-backed evaluation: failures surface as Excel-style error
        # values (#DIV/0!, #NAME?, ...) rather than exceptions.
        try:
            value = FormulaEngine(case.target_sheet).evaluate_formula(response.formula)
            print(f"          evaluates to: {value}")
        except Exception:
            pass
        if shown >= 5:
            break

    abstained = sum(1 for response in responses if not response.accepted)
    summary = workspace.latency.summary()
    print(
        f"   served {len(responses)} requests ({abstained} abstained), "
        f"mean {summary['mean_seconds'] * 1000:.1f} ms, "
        f"p95 {summary['p95_seconds'] * 1000:.1f} ms"
    )


def legacy_main() -> None:
    """The pre-service direct predictor API, kept exercised side by side."""
    encoder = train_encoder()

    print("3) Indexing the organization's existing workbooks (PGE corpus) ...")
    corpus = build_enterprise_corpus("PGE")
    test_workbooks, reference_workbooks = split_corpus(corpus, 0.15, "timestamp")
    system = AutoFormula(encoder, AutoFormulaConfig())
    system.fit(reference_workbooks)
    print(
        f"   indexed {system.n_reference_sheets} sheets "
        f"and {system.n_reference_formulas} reference formulas"
    )

    print("4) Recommending formulas for held-out target cells ...")
    cases = sample_test_cases("PGE", test_workbooks, max_per_sheet=3)
    shown = 0
    for case in cases:
        prediction = system.predict(case.target_sheet, case.target_cell)
        if prediction is None:
            continue
        shown += 1
        match = "HIT " if prediction.formula == case.ground_truth else "MISS"
        print(
            f"   [{match}] {case.workbook_name}/{case.sheet_name}!{case.target_cell.to_a1()}"
        )
        print(f"          recommended : {prediction.formula}   (confidence {prediction.confidence:.2f})")
        print(f"          ground truth: {case.ground_truth}")
        if shown >= 5:
            break


if __name__ == "__main__":
    if "--legacy" in sys.argv[1:]:
        legacy_main()
    else:
        main()
