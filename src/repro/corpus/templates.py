"""Workbook templates: parametric families of similar spreadsheets.

A template instance represents one *family* of workbooks inside an
organization (e.g. "the monthly sales report", "the quarterly budget").
Family-level choices (column layout, label sets, styling, base size) are
drawn once when the template is constructed; every call to
:meth:`WorkbookTemplate.instantiate` then produces a new workbook of that
family with fresh data values and a perturbed number of rows — exactly the
"similar sheets" phenomenon of Section 3.1: same structure and formula
logic, different content and size.

Each template writes real formulas (evaluated so cells also carry cached
values), providing the ground truth for formula-recommendation test cases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.corpus import value_pools as pools
from repro.formula.engine import FormulaEngine
from repro.sheet.addressing import CellAddress, column_index_to_letters
from repro.sheet.cell import Cell
from repro.sheet.sheet import Sheet
from repro.sheet.style import CellStyle
from repro.sheet.workbook import Workbook

#: Header fill colors available to families (one is chosen per family).
_HEADER_PALETTE = (
    "#4472C4", "#ED7D31", "#70AD47", "#FFC000", "#5B9BD5", "#A5A5A5",
    "#264478", "#9E480E", "#636363", "#997300",
)

_TITLE_SIZES = (14.0, 16.0, 18.0)


def _a1(row: int, col: int) -> str:
    """0-based (row, col) to A1 text."""
    return f"{column_index_to_letters(col)}{row + 1}"


class WorkbookTemplate:
    """Base class for workbook families."""

    #: Short name used to build workbook file names.
    family_prefix = "workbook"
    #: Whether workbooks of this template form a similar-sheet family.
    is_family = True

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        self.family_id = family_id
        self._style_seed = int(rng.integers(0, 2**31 - 1))
        style_rng = np.random.default_rng(self._style_seed)
        self.header_color = pools.pick(style_rng, _HEADER_PALETTE)
        self.title_size = float(style_rng.choice(_TITLE_SIZES))
        #: Base number of data rows for the family; instances perturb this.
        self.base_rows = int(rng.integers(*self.row_range()))
        self._sheet_name_suffix = ""

    # ------------------------------------------------------------- overrides

    def row_range(self) -> Sequence[int]:
        """(low, high) bounds of the family's base data-row count."""
        return (12, 40)

    def sheet_names(self) -> List[str]:
        """Sheet-name sequence shared by all workbooks of the family."""
        raise NotImplementedError

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        """Populate the workbook's sheets (already created, in order)."""
        raise NotImplementedError

    # ------------------------------------------------------------- styling

    def header_style(self) -> CellStyle:
        return CellStyle(
            background_color=self.header_color,
            font_color="#FFFFFF",
            bold=True,
            font_size=12.0,
            border_bottom=True,
        )

    def title_style(self) -> CellStyle:
        return CellStyle(bold=True, font_size=self.title_size)

    def total_style(self) -> CellStyle:
        return CellStyle(bold=True, border_top=True)

    def label_style(self) -> CellStyle:
        return CellStyle(italic=True)

    # ------------------------------------------------------------ public API

    def instantiate(
        self, rng: np.random.Generator, workbook_index: int, last_modified: float = 0.0
    ) -> Workbook:
        """Create one workbook of this family."""
        jitter = int(rng.integers(-self.row_jitter(), self.row_jitter() + 1))
        n_rows = max(4, self.base_rows + jitter)
        name = f"{self.family_prefix}_{self.family_id:03d}_{workbook_index:03d}.xlsx"
        workbook = Workbook(name=name, last_modified=last_modified)
        for sheet_name in self.sheet_names():
            workbook.add_sheet(Sheet(sheet_name))
        self.fill_workbook(workbook, rng, n_rows)
        for sheet in workbook:
            # Engine-backed recalculation: every formula commits a value
            # (error values included), so generated corpora never carry
            # silently-stale formula cells.
            FormulaEngine(sheet).recalculate()
        return workbook

    def row_jitter(self) -> int:
        """Maximum +/- perturbation of the data-row count between instances."""
        return 5

    # --------------------------------------------------------------- helpers

    def _write_title(self, sheet: Sheet, row: int, text: str) -> None:
        sheet.set((row, 0), text, style=self.title_style())

    def _write_headers(self, sheet: Sheet, row: int, headers: Sequence[str]) -> None:
        for col, header in enumerate(headers):
            sheet.set((row, col), header, style=self.header_style())


class SurveyTemplate(WorkbookTemplate):
    """Survey responses with a COUNTIF summary block (the Figure 1 scenario)."""

    family_prefix = "survey"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.question = pools.pick(rng, pools.SURVEY_QUESTIONS)
        self.choices = pools.pick_many(rng, pools.COLORS, 4)

    def row_range(self) -> Sequence[int]:
        return (15, 45)

    def sheet_names(self) -> List[str]:
        return ["Instructions", "Responses"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        instructions = workbook.sheets[0]
        self._write_title(instructions, 0, f"Survey: {self.question}")
        instructions.set((2, 0), "Please record one response per row on the Responses sheet.")
        instructions.set((3, 0), "Summary counts are computed below the response table.")
        instructions.set((5, 0), "Owner", style=self.label_style())
        instructions.set((5, 1), pools.full_name(rng))

        sheet = workbook.sheets[1]
        self._write_title(sheet, 0, f"{self.question} survey")
        header_row = 5
        self._write_headers(sheet, header_row, ["ID", "Respondent", "Answer", "Count"])
        first_data = header_row + 1
        last_data = first_data + n_rows - 1
        for offset in range(n_rows):
            row = first_data + offset
            sheet.set((row, 0), offset + 1)
            sheet.set((row, 1), pools.full_name(rng))
            sheet.set((row, 2), pools.pick(rng, self.choices))
        summary_start = last_data + 3
        sheet.set((summary_start - 1, 2), "Answer", style=self.header_style())
        sheet.set((summary_start - 1, 3), "Count", style=self.header_style())
        answer_range = f"C{first_data + 1}:C{last_data + 1}"
        for index, choice in enumerate(self.choices):
            row = summary_start + index
            sheet.set((row, 2), choice, style=self.label_style())
            sheet.set(
                (row, 3),
                formula=f"=COUNTIF({answer_range},{_a1(row, 2)})",
                style=self.total_style(),
            )
        total_row = summary_start + len(self.choices)
        sheet.set((total_row, 2), "Total responses", style=self.label_style())
        sheet.set((total_row, 3), formula=f"=COUNTA({answer_range})", style=self.total_style())


class FinancialStatementTemplate(WorkbookTemplate):
    """Quarterly income statement: per-column SUM totals and a margin ratio."""

    family_prefix = "financial"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.n_periods = int(rng.integers(3, 5))
        self.periods = list(pools.QUARTERS[: self.n_periods])
        self.line_items = pools.pick_many(rng, pools.LINE_ITEMS, int(rng.integers(6, 10)))

    def row_range(self) -> Sequence[int]:
        return (6, 11)

    def row_jitter(self) -> int:
        return 2

    def sheet_names(self) -> List[str]:
        return ["Summary", "Income Statement"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        items = self.line_items[: max(4, min(n_rows, len(self.line_items)))]
        statement = workbook.sheets[1]
        self._write_title(statement, 0, "Income Statement")
        statement.set((1, 0), f"Fiscal year {int(rng.integers(2018, 2025))}")
        header_row = 3
        self._write_headers(statement, header_row, ["Line Item"] + self.periods + ["FY Total"])
        first_data = header_row + 1
        for offset, item in enumerate(items):
            row = first_data + offset
            statement.set((row, 0), item, style=self.label_style())
            for period_index in range(self.n_periods):
                statement.set((row, 1 + period_index), pools.money(rng, 1_000, 500_000))
            row_range = f"{_a1(row, 1)}:{_a1(row, self.n_periods)}"
            statement.set((row, 1 + self.n_periods), formula=f"=SUM({row_range})")
        total_row = first_data + len(items)
        statement.set((total_row, 0), "Total", style=self.total_style())
        for period_index in range(self.n_periods + 1):
            col = 1 + period_index
            col_range = f"{_a1(first_data, col)}:{_a1(total_row - 1, col)}"
            statement.set((total_row, col), formula=f"=SUM({col_range})", style=self.total_style())

        summary = workbook.sheets[0]
        self._write_title(summary, 0, "Financial Summary")
        self._write_headers(summary, 2, ["Metric", "Value"])
        summary.set((3, 0), "Revenue (first line)", style=self.label_style())
        summary.set((3, 1), pools.money(rng, 100_000, 2_000_000))
        summary.set((4, 0), "Total expense", style=self.label_style())
        summary.set((4, 1), pools.money(rng, 50_000, 1_500_000))
        summary.set((5, 0), "Net", style=self.label_style())
        summary.set((5, 1), formula="=B4-B5")
        summary.set((6, 0), "Margin", style=self.label_style())
        summary.set((6, 1), formula="=ROUND(B6/B4,2)")


class SalesReportTemplate(WorkbookTemplate):
    """Regional sales log with SUMIF / COUNTIF / AVERAGE roll-ups."""

    family_prefix = "sales"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.regions = pools.pick_many(rng, pools.REGIONS, 4)
        self.products = pools.pick_many(rng, pools.PRODUCTS, 5)

    def row_range(self) -> Sequence[int]:
        return (20, 70)

    def row_jitter(self) -> int:
        return 6

    def sheet_names(self) -> List[str]:
        return ["Sales Log", "Regional Summary"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        log = workbook.sheets[0]
        self._write_title(log, 0, "Sales Log")
        header_row = 2
        self._write_headers(log, header_row, ["Date", "Region", "Product", "Units", "Amount"])
        first_data = header_row + 1
        last_data = first_data + n_rows - 1
        for offset in range(n_rows):
            row = first_data + offset
            log.set((row, 0), pools.iso_date(rng))
            log.set((row, 1), pools.pick(rng, self.regions))
            log.set((row, 2), pools.pick(rng, self.products))
            log.set((row, 3), int(rng.integers(1, 50)))
            log.set((row, 4), pools.money(rng, 50, 20_000))
        totals_row = last_data + 2
        log.set((totals_row, 3), "Grand total", style=self.label_style())
        amount_range = f"E{first_data + 1}:E{last_data + 1}"
        log.set((totals_row, 4), formula=f"=SUM({amount_range})", style=self.total_style())
        log.set((totals_row + 1, 3), "Average sale", style=self.label_style())
        log.set((totals_row + 1, 4), formula=f"=ROUND(AVERAGE({amount_range}),2)")

        # The roll-up sheet works over a mirrored copy of the (region, amount)
        # columns: the formula language in this reproduction is single-sheet
        # (no cross-sheet references), so the data the SUMIF/COUNTIF formulas
        # consume lives on the same sheet, below the roll-up block.
        summary = workbook.sheets[1]
        self._write_title(summary, 0, "Regional Summary")
        self._write_headers(summary, 2, ["Region", "Orders", "Revenue"])
        mirror_start = 3 + len(self.regions) + 2
        summary.set((mirror_start - 1, 0), "Region data", style=self.header_style())
        summary.set((mirror_start - 1, 1), "Amount", style=self.header_style())
        for offset in range(n_rows):
            source_row = first_data + offset
            summary.set((mirror_start + offset, 0), log.get((source_row, 1)).value)
            summary.set((mirror_start + offset, 1), log.get((source_row, 4)).value)
        mirror_region_range = f"A{mirror_start + 1}:A{mirror_start + n_rows}"
        mirror_amount_range = f"B{mirror_start + 1}:B{mirror_start + n_rows}"
        for index, region in enumerate(self.regions):
            row = 3 + index
            summary.set((row, 0), region, style=self.label_style())
            summary.set(
                (row, 1),
                formula=f"=COUNTIF({mirror_region_range},{_a1(row, 0)})",
            )
            summary.set(
                (row, 2),
                formula=f"=SUMIF({mirror_region_range},{_a1(row, 0)},{mirror_amount_range})",
            )


class InventoryTemplate(WorkbookTemplate):
    """Inventory list with per-row extended value and aggregate statistics."""

    family_prefix = "inventory"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.products = pools.pick_many(rng, pools.PRODUCTS, int(rng.integers(6, 12)))
        self.reorder_level = int(rng.integers(5, 25))

    def row_range(self) -> Sequence[int]:
        return (8, 14)

    def row_jitter(self) -> int:
        return 3

    def sheet_names(self) -> List[str]:
        return ["Inventory"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, "Inventory Valuation")
        header_row = 2
        self._write_headers(sheet, header_row, ["SKU", "Product", "Qty", "Unit Price", "Value", "Reorder?"])
        items = self.products[: max(4, min(n_rows, len(self.products)))]
        first_data = header_row + 1
        for offset, product in enumerate(items):
            row = first_data + offset
            sheet.set((row, 0), f"SKU-{self.family_id:02d}{offset:03d}")
            sheet.set((row, 1), product)
            sheet.set((row, 2), int(rng.integers(0, 200)))
            sheet.set((row, 3), pools.money(rng, 5, 2_500))
            sheet.set((row, 4), formula=f"={_a1(row, 2)}*{_a1(row, 3)}")
            sheet.set(
                (row, 5),
                formula=f'=IF({_a1(row, 2)}<{self.reorder_level},"REORDER","OK")',
            )
        total_row = first_data + len(items)
        value_range = f"{_a1(first_data, 4)}:{_a1(total_row - 1, 4)}"
        qty_range = f"{_a1(first_data, 2)}:{_a1(total_row - 1, 2)}"
        sheet.set((total_row, 1), "Totals", style=self.total_style())
        sheet.set((total_row, 2), formula=f"=SUM({qty_range})", style=self.total_style())
        sheet.set((total_row, 4), formula=f"=SUM({value_range})", style=self.total_style())
        sheet.set((total_row + 1, 1), "Highest value", style=self.label_style())
        sheet.set((total_row + 1, 4), formula=f"=MAX({value_range})")
        sheet.set((total_row + 2, 1), "Lowest value", style=self.label_style())
        sheet.set((total_row + 2, 4), formula=f"=MIN({value_range})")


class BudgetTemplate(WorkbookTemplate):
    """Budget vs actual with variance, percentage and an IF status flag."""

    family_prefix = "budget"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.categories = pools.pick_many(rng, pools.EXPENSE_CATEGORIES, int(rng.integers(6, 10)))
        self.department = pools.pick(rng, pools.DEPARTMENTS)

    def row_range(self) -> Sequence[int]:
        return (6, 10)

    def row_jitter(self) -> int:
        return 2

    def sheet_names(self) -> List[str]:
        return ["Budget", "Notes"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, f"{self.department} Budget Review")
        header_row = 2
        self._write_headers(sheet, header_row, ["Category", "Budget", "Actual", "Variance", "Used %", "Status"])
        categories = self.categories[: max(4, min(n_rows, len(self.categories)))]
        first_data = header_row + 1
        for offset, category in enumerate(categories):
            row = first_data + offset
            sheet.set((row, 0), category, style=self.label_style())
            sheet.set((row, 1), pools.money(rng, 5_000, 120_000))
            sheet.set((row, 2), pools.money(rng, 4_000, 140_000))
            sheet.set((row, 3), formula=f"={_a1(row, 2)}-{_a1(row, 1)}")
            sheet.set((row, 4), formula=f"=ROUND({_a1(row, 2)}/{_a1(row, 1)},2)")
            sheet.set(
                (row, 5),
                formula=f'=IF({_a1(row, 2)}>{_a1(row, 1)},"OVER","UNDER")',
            )
        total_row = first_data + len(categories)
        sheet.set((total_row, 0), "Total", style=self.total_style())
        for col in (1, 2, 3):
            col_range = f"{_a1(first_data, col)}:{_a1(total_row - 1, col)}"
            sheet.set((total_row, col), formula=f"=SUM({col_range})", style=self.total_style())
        over_range = f"{_a1(first_data, 5)}:{_a1(total_row - 1, 5)}"
        sheet.set((total_row + 1, 0), "Categories over budget", style=self.label_style())
        sheet.set((total_row + 1, 5), formula=f'=COUNTIF({over_range},"OVER")')

        notes = workbook.sheets[1]
        self._write_title(notes, 0, "Notes")
        notes.set((2, 0), f"Prepared by {pools.full_name(rng)}")
        notes.set((3, 0), f"Reviewed {pools.iso_date(rng)}")


class TimesheetTemplate(WorkbookTemplate):
    """Weekly timesheet with date breakdown and summed hours."""

    family_prefix = "timesheet"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.projects = pools.pick_many(rng, pools.PROJECT_CODES, 3)

    def row_range(self) -> Sequence[int]:
        return (10, 30)

    def sheet_names(self) -> List[str]:
        return ["Timesheet"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, "Timesheet")
        sheet.set((1, 0), "Employee", style=self.label_style())
        sheet.set((1, 1), pools.full_name(rng))
        sheet.set((2, 0), "Hourly rate", style=self.label_style())
        sheet.set((2, 1), float(rng.integers(80, 220)))
        header_row = 3
        self._write_headers(sheet, header_row, ["Date", "Project", "Hours", "Month", "Billable"])
        first_data = header_row + 1
        last_data = first_data + n_rows - 1
        for offset in range(n_rows):
            row = first_data + offset
            sheet.set((row, 0), pools.iso_date(rng))
            sheet.set((row, 1), pools.pick(rng, self.projects))
            sheet.set((row, 2), float(np.round(rng.uniform(0.5, 10.0), 1)))
            sheet.set((row, 3), formula=f"=MONTH({_a1(row, 0)})")
            sheet.set((row, 4), formula=f"={_a1(row, 2)}*B3")
        total_row = last_data + 2
        hour_range = f"{_a1(first_data, 2)}:{_a1(last_data, 2)}"
        billable_range = f"{_a1(first_data, 4)}:{_a1(last_data, 4)}"
        sheet.set((total_row, 1), "Total hours", style=self.label_style())
        sheet.set((total_row, 2), formula=f"=SUM({hour_range})", style=self.total_style())
        sheet.set((total_row + 1, 1), "Total billable", style=self.label_style())
        sheet.set((total_row + 1, 4), formula=f"=ROUND(SUM({billable_range}),2)", style=self.total_style())


class CustomerListTemplate(WorkbookTemplate):
    """Customer roster with string-manipulation formulas."""

    family_prefix = "customers"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.cities = pools.pick_many(rng, pools.CITIES, 4)

    def row_range(self) -> Sequence[int]:
        return (12, 40)

    def sheet_names(self) -> List[str]:
        return ["Customers", "Codes"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, "Customer Directory")
        header_row = 2
        self._write_headers(sheet, header_row, ["First", "Last", "City", "Full Name", "Code"])
        first_data = header_row + 1
        last_data = first_data + n_rows - 1
        for offset in range(n_rows):
            row = first_data + offset
            sheet.set((row, 0), pools.pick(rng, pools.FIRST_NAMES))
            sheet.set((row, 1), pools.pick(rng, pools.LAST_NAMES))
            sheet.set((row, 2), pools.pick(rng, self.cities))
            sheet.set((row, 3), formula=f'=CONCATENATE({_a1(row, 0)}," ",{_a1(row, 1)})')
            sheet.set((row, 4), formula=f"=UPPER(LEFT({_a1(row, 1)},3))")
        count_row = last_data + 2
        sheet.set((count_row, 2), "Customer count", style=self.label_style())
        name_range = f"{_a1(first_data, 0)}:{_a1(last_data, 0)}"
        sheet.set((count_row, 3), formula=f"=COUNTA({name_range})", style=self.total_style())

        codes = workbook.sheets[1]
        self._write_headers(codes, 0, ["City", "Prefix"])
        for index, city in enumerate(self.cities):
            codes.set((1 + index, 0), city)
            codes.set((1 + index, 1), formula=f"=UPPER(LEFT({_a1(1 + index, 0)},3))")


class LargeLedgerTemplate(WorkbookTemplate):
    """A long transaction ledger (hundreds of rows) with bottom-line totals.

    Exists mainly to populate the larger row-count buckets of the Figure 9
    sensitivity analysis; the formula logic (SUM / COUNTIF of a long column,
    plus running balances) matches what large real-world ledgers contain.
    """

    family_prefix = "ledger"

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.accounts = pools.pick_many(rng, pools.DEPARTMENTS, 4)

    def row_range(self) -> Sequence[int]:
        return (180, 320)

    def row_jitter(self) -> int:
        return 8

    def sheet_names(self) -> List[str]:
        return ["Ledger"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, "Transaction Ledger")
        header_row = 2
        self._write_headers(sheet, header_row, ["Date", "Account", "Debit", "Credit", "Net"])
        first_data = header_row + 1
        last_data = first_data + n_rows - 1
        for offset in range(n_rows):
            row = first_data + offset
            sheet.set((row, 0), pools.iso_date(rng))
            sheet.set((row, 1), pools.pick(rng, self.accounts))
            sheet.set((row, 2), pools.money(rng, 10, 5_000))
            sheet.set((row, 3), pools.money(rng, 10, 5_000))
            sheet.set((row, 4), formula=f"={_a1(row, 2)}-{_a1(row, 3)}")
        totals_row = last_data + 2
        debit_range = f"{_a1(first_data, 2)}:{_a1(last_data, 2)}"
        credit_range = f"{_a1(first_data, 3)}:{_a1(last_data, 3)}"
        account_range = f"{_a1(first_data, 1)}:{_a1(last_data, 1)}"
        sheet.set((totals_row, 1), "Totals", style=self.total_style())
        sheet.set((totals_row, 2), formula=f"=SUM({debit_range})", style=self.total_style())
        sheet.set((totals_row, 3), formula=f"=SUM({credit_range})", style=self.total_style())
        sheet.set((totals_row + 1, 1), self.accounts[0], style=self.label_style())
        sheet.set(
            (totals_row + 1, 2),
            formula=f"=COUNTIF({account_range},{_a1(totals_row + 1, 1)})",
        )


class SingletonTemplate(WorkbookTemplate):
    """A one-off workbook with an ad-hoc layout (no similar counterpart).

    Singletons bound the best-possible recall of any similar-sheet method,
    reproducing what the paper observes on the Cisco corpus.  Their sheet is
    usually called ``Sheet1`` so they also exercise the "common name"
    branch of the weak-supervision hypothesis test.
    """

    family_prefix = "adhoc"
    is_family = False

    def __init__(self, family_id: int, rng: np.random.Generator) -> None:
        super().__init__(family_id, rng)
        self.n_columns = int(rng.integers(2, 6))
        self.use_default_name = bool(rng.random() < 0.6)
        self.label_pool = pools.pick_many(rng, pools.EXPENSE_CATEGORIES + pools.PRODUCTS, 6)

    def row_range(self) -> Sequence[int]:
        return (5, 60)

    def sheet_names(self) -> List[str]:
        if self.use_default_name:
            return ["Sheet1"]
        return [f"Data {self.family_id}"]

    def fill_workbook(self, workbook: Workbook, rng: np.random.Generator, n_rows: int) -> None:
        sheet = workbook.sheets[0]
        self._write_title(sheet, 0, f"Worksheet {self.family_id}")
        header_row = 1 + int(rng.integers(0, 3))
        headers = ["Item"] + [f"Metric {i + 1}" for i in range(self.n_columns)]
        self._write_headers(sheet, header_row, headers)
        first_data = header_row + 1
        for offset in range(n_rows):
            row = first_data + offset
            sheet.set((row, 0), pools.pick(rng, self.label_pool))
            for col in range(1, self.n_columns + 1):
                sheet.set((row, col), pools.money(rng, 1, 10_000))
        total_row = first_data + n_rows
        sheet.set((total_row, 0), "Total", style=self.total_style())
        target_col = int(rng.integers(1, self.n_columns + 1))
        col_range = f"{_a1(first_data, target_col)}:{_a1(total_row - 1, target_col)}"
        sheet.set((total_row, target_col), formula=f"=SUM({col_range})", style=self.total_style())


#: Family templates in rotation order used by the corpus generator.
ALL_TEMPLATE_CLASSES = (
    SurveyTemplate,
    FinancialStatementTemplate,
    SalesReportTemplate,
    InventoryTemplate,
    BudgetTemplate,
    TimesheetTemplate,
    CustomerListTemplate,
    LargeLedgerTemplate,
)
