"""Corpus generation: workbook families, singletons and enterprise corpora."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.corpus.templates import (
    ALL_TEMPLATE_CLASSES,
    SingletonTemplate,
    WorkbookTemplate,
)
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class CorpusSpec:
    """Parameters describing one synthetic enterprise corpus.

    ``n_families`` template families are created; each produces between
    ``min_copies`` and ``max_copies`` workbooks (the "similar sheets").
    ``n_singletons`` additional workbooks have unique ad-hoc layouts.  The
    ratio of family workbooks to singletons controls the best achievable
    recall of similar-sheet methods, which is how the four enterprise
    corpora differ in the paper.
    """

    name: str
    n_families: int = 6
    min_copies: int = 3
    max_copies: int = 6
    n_singletons: int = 4
    seed: int = 0
    template_classes: Sequence[Type[WorkbookTemplate]] = field(
        default_factory=lambda: ALL_TEMPLATE_CLASSES
    )
    #: Timestamps are drawn uniformly from this range (seconds).
    timestamp_range: Tuple[float, float] = (1_500_000_000.0, 1_700_000_000.0)

    def expected_workbooks(self) -> int:
        """Approximate number of workbooks the spec will produce."""
        return self.n_families * (self.min_copies + self.max_copies) // 2 + self.n_singletons


@dataclass
class EnterpriseCorpus:
    """A named collection of workbooks standing in for one organization."""

    name: str
    workbooks: List[Workbook] = field(default_factory=list)

    # -------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self.workbooks)

    def all_sheets(self) -> List[Tuple[Workbook, Sheet]]:
        """Every ``(workbook, sheet)`` pair in the corpus."""
        return [(workbook, sheet) for workbook in self.workbooks for sheet in workbook]

    def n_sheets(self) -> int:
        """Total number of sheets."""
        return sum(len(workbook) for workbook in self.workbooks)

    def n_formulas(self) -> int:
        """Total number of formula cells."""
        return sum(workbook.n_formulas() for workbook in self.workbooks)

    def sorted_by_timestamp(self) -> List[Workbook]:
        """Workbooks ordered by last-modified time (oldest first)."""
        return sorted(self.workbooks, key=lambda workbook: workbook.last_modified)


class CorpusGenerator:
    """Generates enterprise corpora and training universes from specs."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    # ----------------------------------------------------------------- public

    def generate(self, spec: CorpusSpec) -> EnterpriseCorpus:
        """Generate the corpus described by ``spec``."""
        rng = np.random.default_rng(spec.seed ^ self._seed)
        corpus = EnterpriseCorpus(name=spec.name)
        low, high = spec.timestamp_range

        for family_index in range(spec.n_families):
            template_cls = spec.template_classes[family_index % len(spec.template_classes)]
            template = template_cls(family_index, rng)
            n_copies = int(rng.integers(spec.min_copies, spec.max_copies + 1))
            for copy_index in range(n_copies):
                timestamp = float(rng.uniform(low, high))
                corpus.workbooks.append(
                    template.instantiate(rng, copy_index, last_modified=timestamp)
                )

        for singleton_index in range(spec.n_singletons):
            template = SingletonTemplate(1000 + singleton_index, rng)
            timestamp = float(rng.uniform(low, high))
            corpus.workbooks.append(template.instantiate(rng, 0, last_modified=timestamp))

        order = rng.permutation(len(corpus.workbooks))
        corpus.workbooks = [corpus.workbooks[int(i)] for i in order]
        return corpus

    def generate_training_universe(
        self,
        n_families: int = 10,
        copies_per_family: int = 3,
        n_singletons: int = 8,
        seed: Optional[int] = None,
    ) -> List[Workbook]:
        """The stand-in for the 160K-crawl training universe ``U``.

        It only needs to be rich enough for weak supervision to harvest
        positive/negative pairs and for triplet training to converge; the
        trained models are then applied, unchanged, to every enterprise
        corpus (matching the paper's train-once / apply-everywhere setup).
        """
        spec = CorpusSpec(
            name="training-universe",
            n_families=n_families,
            min_copies=copies_per_family,
            max_copies=copies_per_family + 2,
            n_singletons=n_singletons,
            seed=self._seed if seed is None else seed,
        )
        return self.generate(spec).workbooks
