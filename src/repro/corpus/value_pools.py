"""Pools of realistic values used by the synthetic workbook templates."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

FIRST_NAMES: Sequence[str] = (
    "Alice", "Bob", "Carol", "David", "Elena", "Frank", "Grace", "Hassan",
    "Irene", "James", "Kavya", "Liam", "Maria", "Noah", "Olivia", "Pablo",
    "Qing", "Rosa", "Samir", "Tara", "Uma", "Victor", "Wendy", "Xavier",
    "Yara", "Zoe",
)

LAST_NAMES: Sequence[str] = (
    "Smith", "Johnson", "Lee", "Garcia", "Chen", "Patel", "Brown", "Davis",
    "Martinez", "Nguyen", "Kim", "Lopez", "Wilson", "Anderson", "Thomas",
    "Moore", "Jackson", "White", "Harris", "Clark",
)

COLORS: Sequence[str] = ("Brown", "Green", "Blue", "Red", "Yellow", "Purple")

REGIONS: Sequence[str] = (
    "North", "South", "East", "West", "Central", "Northeast", "Southwest",
)

PRODUCTS: Sequence[str] = (
    "Router X100", "Switch S24", "Firewall F5", "Access Point A7",
    "Cable Cat6", "Server R740", "Laptop L13", "Monitor M27",
    "Dock D9", "Headset H2", "Camera C4", "Phone P11",
)

DEPARTMENTS: Sequence[str] = (
    "Engineering", "Sales", "Marketing", "Finance", "Operations",
    "Human Resources", "Legal", "Support",
)

LINE_ITEMS: Sequence[str] = (
    "Product Revenue", "Service Revenue", "License Revenue",
    "Cost of Goods Sold", "Research & Development", "Sales & Marketing",
    "General & Administrative", "Depreciation", "Interest Expense",
    "Other Income", "Tax Provision",
)

EXPENSE_CATEGORIES: Sequence[str] = (
    "Travel", "Equipment", "Software", "Facilities", "Training",
    "Consulting", "Supplies", "Utilities", "Insurance", "Maintenance",
)

MONTHS: Sequence[str] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

QUARTERS: Sequence[str] = ("Q1", "Q2", "Q3", "Q4")

CITIES: Sequence[str] = (
    "Austin", "Boston", "Chicago", "Denver", "Houston", "Miami",
    "Portland", "Seattle", "San Jose", "Atlanta",
)

PROJECT_CODES: Sequence[str] = (
    "PRJ-ALPHA", "PRJ-BETA", "PRJ-GAMMA", "PRJ-DELTA", "PRJ-OMEGA",
    "PRJ-SIGMA", "PRJ-KAPPA", "PRJ-ZETA",
)

SURVEY_QUESTIONS: Sequence[str] = (
    "Preferred color", "Favorite product", "Region of residence",
    "Department", "Satisfaction level",
)

STATUS_VALUES: Sequence[str] = ("Open", "Closed", "Pending", "Escalated")


def pick(rng: np.random.Generator, pool: Sequence[str]) -> str:
    """Uniformly pick one value from a pool."""
    return str(pool[int(rng.integers(len(pool)))])


def pick_many(rng: np.random.Generator, pool: Sequence[str], count: int) -> List[str]:
    """Pick ``count`` distinct values (or all, if the pool is smaller)."""
    count = min(count, len(pool))
    indices = rng.choice(len(pool), size=count, replace=False)
    return [str(pool[int(i)]) for i in indices]


def full_name(rng: np.random.Generator) -> str:
    """A random "First Last" name."""
    return f"{pick(rng, FIRST_NAMES)} {pick(rng, LAST_NAMES)}"


def money(rng: np.random.Generator, low: float = 100.0, high: float = 100_000.0) -> float:
    """A random monetary amount rounded to cents."""
    return float(np.round(rng.uniform(low, high), 2))


def iso_date(rng: np.random.Generator, year: int = 2023) -> str:
    """A random ISO date string within ``year``."""
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 28))
    return f"{year:04d}-{month:02d}-{day:02d}"
