"""Presets for the four synthetic enterprise corpora and the training universe.

The four specs differ mainly in size and in the share of "singleton"
workbooks with no similar counterpart, reproducing the recall profile the
paper reports: PGE (highly templated, recall ~0.9), TI (moderate), Cisco
(many singletons, recall ~0.35) and Enron (large, moderate-low recall).
Absolute sizes are scaled down so NumPy-based experiments finish quickly; a
``scale`` factor multiplies family and singleton counts for larger runs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.corpus.generator import CorpusGenerator, CorpusSpec, EnterpriseCorpus
from repro.corpus.templates import (
    BudgetTemplate,
    CustomerListTemplate,
    FinancialStatementTemplate,
    InventoryTemplate,
    SalesReportTemplate,
    SurveyTemplate,
    TimesheetTemplate,
)
from repro.sheet.workbook import Workbook

#: The four enterprise domains evaluated in the paper.
ENTERPRISE_NAMES = ("PGE", "Cisco", "TI", "Enron")

ENTERPRISE_SPECS: Dict[str, CorpusSpec] = {
    # PGE: small corpus, almost everything comes from recurring report
    # families -> similar sheets nearly always exist (high recall).
    "PGE": CorpusSpec(
        name="PGE",
        n_families=6,
        min_copies=4,
        max_copies=7,
        n_singletons=2,
        seed=101,
        template_classes=(
            FinancialStatementTemplate,
            SurveyTemplate,
            BudgetTemplate,
            SalesReportTemplate,
            TimesheetTemplate,
            InventoryTemplate,
        ),
    ),
    # Cisco: dominated by one-off public-facing sheets -> many singletons,
    # low ceiling on recall.
    "Cisco": CorpusSpec(
        name="Cisco",
        n_families=4,
        min_copies=2,
        max_copies=3,
        n_singletons=14,
        seed=202,
        template_classes=(
            SalesReportTemplate,
            InventoryTemplate,
            CustomerListTemplate,
            SurveyTemplate,
        ),
    ),
    # TI: mixed corpus, moderate family coverage.
    "TI": CorpusSpec(
        name="TI",
        n_families=6,
        min_copies=3,
        max_copies=5,
        n_singletons=8,
        seed=303,
        template_classes=(
            InventoryTemplate,
            BudgetTemplate,
            SalesReportTemplate,
            CustomerListTemplate,
            FinancialStatementTemplate,
            TimesheetTemplate,
        ),
    ),
    # Enron: the largest corpus, broad mix of families and ad-hoc sheets.
    "Enron": CorpusSpec(
        name="Enron",
        n_families=9,
        min_copies=3,
        max_copies=5,
        n_singletons=16,
        seed=404,
    ),
}


def build_enterprise_corpus(name: str, scale: float = 1.0, seed: int = 0) -> EnterpriseCorpus:
    """Build one of the four named corpora, optionally scaled up/down."""
    if name not in ENTERPRISE_SPECS:
        raise KeyError(f"unknown corpus {name!r}; expected one of {sorted(ENTERPRISE_SPECS)}")
    base = ENTERPRISE_SPECS[name]
    spec = CorpusSpec(
        name=base.name,
        n_families=max(1, round(base.n_families * scale)),
        min_copies=base.min_copies,
        max_copies=base.max_copies,
        n_singletons=round(base.n_singletons * scale),
        seed=base.seed,
        template_classes=base.template_classes,
        timestamp_range=base.timestamp_range,
    )
    return CorpusGenerator(seed=seed).generate(spec)


def build_all_enterprise_corpora(scale: float = 1.0, seed: int = 0) -> Dict[str, EnterpriseCorpus]:
    """Build all four corpora keyed by name."""
    return {name: build_enterprise_corpus(name, scale=scale, seed=seed) for name in ENTERPRISE_NAMES}


def build_training_universe(
    n_families: int = 10,
    copies_per_family: int = 3,
    n_singletons: int = 8,
    seed: int = 7,
) -> List[Workbook]:
    """Build the training universe used to fit the representation models."""
    return CorpusGenerator(seed=seed).generate_training_universe(
        n_families=n_families,
        copies_per_family=copies_per_family,
        n_singletons=n_singletons,
    )
