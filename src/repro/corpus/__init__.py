"""Synthetic spreadsheet corpus generation.

The paper trains on 160K crawled spreadsheets and evaluates on spreadsheets
held out from four enterprises (Enron, PGE, TI, Cisco).  Neither corpus can
be redistributed here, so this package generates synthetic *organizational*
corpora with the statistical properties the method depends on:

* workbooks come in **families** produced from shared templates — same sheet
  names, same styling, same formula logic — but with different data values
  and different numbers of rows/columns (the "similar sheets" of Section 3.1);
* a configurable fraction of workbooks are **singletons** with unique
  layouts, which bounds achievable recall exactly as the paper observes for
  the Cisco corpus;
* common sheet names like ``Sheet1`` appear frequently so the
  weak-supervision hypothesis test has realistic name statistics;
* workbooks carry last-modified timestamps so both the *random* and the
  *timestamp* test splits can be reproduced.
"""

from repro.corpus.templates import (
    WorkbookTemplate,
    SurveyTemplate,
    FinancialStatementTemplate,
    SalesReportTemplate,
    InventoryTemplate,
    BudgetTemplate,
    TimesheetTemplate,
    CustomerListTemplate,
    LargeLedgerTemplate,
    SingletonTemplate,
    ALL_TEMPLATE_CLASSES,
)
from repro.corpus.generator import CorpusGenerator, EnterpriseCorpus, CorpusSpec
from repro.corpus.corpora import (
    ENTERPRISE_SPECS,
    build_enterprise_corpus,
    build_all_enterprise_corpora,
    build_training_universe,
)
from repro.corpus.testcases import TestCase, sample_test_cases, split_corpus, corpus_statistics

__all__ = [
    "WorkbookTemplate",
    "SurveyTemplate",
    "FinancialStatementTemplate",
    "SalesReportTemplate",
    "InventoryTemplate",
    "BudgetTemplate",
    "TimesheetTemplate",
    "CustomerListTemplate",
    "LargeLedgerTemplate",
    "SingletonTemplate",
    "ALL_TEMPLATE_CLASSES",
    "CorpusGenerator",
    "EnterpriseCorpus",
    "CorpusSpec",
    "ENTERPRISE_SPECS",
    "build_enterprise_corpus",
    "build_all_enterprise_corpora",
    "build_training_universe",
    "TestCase",
    "sample_test_cases",
    "split_corpus",
    "corpus_statistics",
]
