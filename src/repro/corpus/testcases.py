"""Test-case sampling and corpus splits (Section 5.1).

A *test case* is one formula-recommendation problem: a target sheet (with
the target cell's formula and cached value removed), the target cell, and
the ground-truth formula.  Corpora are split into test and reference sets
either randomly or by last-modified timestamp, and at most ten formulas are
sampled per test sheet to avoid over-representation, following the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.generator import EnterpriseCorpus
from repro.formula.template import normalize_formula
from repro.formula.tokenizer import FormulaSyntaxError
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class TestCase:
    """One formula-recommendation problem with its ground truth."""

    #: Not a pytest test class (keeps pytest collection quiet when imported).
    __test__ = False

    corpus_name: str
    workbook_name: str
    sheet_name: str
    #: The target sheet as the predictor sees it (target formula removed).
    target_sheet: Sheet
    target_cell: CellAddress
    #: Normalized ground-truth formula text (e.g. ``"=COUNTIF(C7:C37,C41)"``).
    ground_truth: str
    #: Number of rows of the original target sheet (Figure 9 bucketing).
    n_rows: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TestCase({self.corpus_name}/{self.workbook_name}/{self.sheet_name}"
            f"!{self.target_cell.to_a1()} -> {self.ground_truth})"
        )


def split_corpus(
    corpus: EnterpriseCorpus,
    test_fraction: float = 0.1,
    method: str = "timestamp",
    seed: int = 0,
) -> Tuple[List[Workbook], List[Workbook]]:
    """Split a corpus into ``(test_workbooks, reference_workbooks)``.

    ``method="timestamp"`` holds out the most recently modified fraction
    (the realistic setting the paper reports by default);
    ``method="random"`` holds out a uniform sample.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    workbooks = list(corpus.workbooks)
    n_test = max(1, round(len(workbooks) * test_fraction))
    if method == "timestamp":
        ordered = sorted(workbooks, key=lambda workbook: workbook.last_modified)
        reference = ordered[:-n_test]
        test = ordered[-n_test:]
    elif method == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(workbooks))
        test_indices = set(int(i) for i in order[:n_test])
        test = [workbooks[i] for i in range(len(workbooks)) if i in test_indices]
        reference = [workbooks[i] for i in range(len(workbooks)) if i not in test_indices]
    else:
        raise ValueError(f"unknown split method {method!r}")
    if not reference:
        # Degenerate corpora (tiny scale factors): keep at least one
        # reference workbook so prediction has something to search.
        reference = [test.pop()] if len(test) > 1 else list(test)
    return test, reference


def _blank_target(sheet: Sheet, target: CellAddress) -> Sheet:
    """Copy the sheet with the target cell's formula and value removed."""
    copy = sheet.copy()
    cell = copy.get(target)
    copy.set(target, value=None, formula=None, style=cell.style)
    return copy


def sample_test_cases(
    corpus_name: str,
    test_workbooks: Sequence[Workbook],
    max_per_sheet: int = 10,
    seed: int = 0,
) -> List[TestCase]:
    """Sample formula test cases from the held-out workbooks."""
    rng = np.random.default_rng(seed)
    cases: List[TestCase] = []
    for workbook in test_workbooks:
        for sheet in workbook:
            formula_cells = sheet.formula_cells()
            if not formula_cells:
                continue
            if len(formula_cells) > max_per_sheet:
                chosen = rng.choice(len(formula_cells), size=max_per_sheet, replace=False)
                formula_cells = [formula_cells[int(i)] for i in sorted(chosen)]
            for address, cell in formula_cells:
                try:
                    ground_truth = normalize_formula(cell.formula or "")
                except FormulaSyntaxError:
                    continue
                cases.append(
                    TestCase(
                        corpus_name=corpus_name,
                        workbook_name=workbook.name,
                        sheet_name=sheet.name,
                        target_sheet=_blank_target(sheet, address),
                        target_cell=address,
                        ground_truth=ground_truth,
                        n_rows=sheet.n_rows,
                    )
                )
    return cases


def corpus_statistics(
    corpus: EnterpriseCorpus,
    test_cases_random: Optional[Sequence[TestCase]] = None,
    test_cases_timestamp: Optional[Sequence[TestCase]] = None,
) -> Dict[str, int]:
    """The Table 1 statistics row for one corpus."""
    stats = {
        "workbooks": len(corpus),
        "sheets": corpus.n_sheets(),
        "formulas": corpus.n_formulas(),
    }
    if test_cases_random is not None:
        stats["test_formulas_random"] = len(test_cases_random)
    if test_cases_timestamp is not None:
        stats["test_formulas_timestamp"] = len(test_cases_timestamp)
    return stats
