"""Simulated large-language-model baseline (the paper's GPT experiments).

The paper prompts GPT-3.5 / GPT-4 with 24 prompt variants (example
selection x chain-of-thought x table region x model tier, Table 4).  No
hosted LLM is reachable offline, so this module provides a *deterministic
simulation* whose skill is controlled by the same prompt knobs through the
amount of information each variant is allowed to exploit:

* **zero-shot** and **few-shot with common formulas** variants only see the
  target sheet's NL context, so they can at best produce simple label-driven
  aggregations (and frequently hallucinate slightly-off ranges, which is
  what makes their exact-match accuracy near zero in the paper);
* **few-shot with RAG** variants additionally retrieve the most similar
  reference region using a GloVe-style embedding + ANN search (exactly the
  retrieval recipe the paper describes) and copy the retrieved formula with
  relative-reference shifting — no learned re-grounding — which lands them
  in the mid-range accuracy the paper reports;
* **GPT-4** variants are slightly more careful than **GPT-3.5** ones
  (better range grounding), and chain-of-thought / precise-table-region
  give small deterministic boosts.

The ordering of variants (RAG >> few-shot-common >= zero-shot, GPT-4 >=
GPT-3.5, union-of-24 << Auto-Formula) therefore *emerges from the
information budget of each variant*, not from hard-coded target numbers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ann import ExactIndex
from repro.baselines.common import (
    column_header,
    copy_formula_to,
    numeric_run_above,
    numeric_run_left,
    row_label,
    surrounding_text,
)
from repro.core.interface import FormulaPredictor, Prediction
from repro.embedding import WordAveragingEmbedder
from repro.sheet.addressing import CellAddress, RangeAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass(frozen=True)
class PromptConfig:
    """One of the 24 prompt variants of Table 4."""

    example_selection: str = "zero_shot"  # zero_shot | few_shot_common | few_shot_rag
    chain_of_thought: bool = False
    table_region: str = "precise"  # precise | large
    model: str = "gpt-4"  # gpt-3.5 | gpt-4

    def label(self) -> str:
        """Readable variant label used in the Table 4 report."""
        cot = "cot" if self.chain_of_thought else "no-cot"
        return f"{self.example_selection}/{cot}/{self.table_region}/{self.model}"


def all_prompt_variants() -> List[PromptConfig]:
    """The full 3 x 2 x 2 x 2 grid of prompt variants (24 configurations)."""
    variants = []
    for selection, cot, region, model in itertools.product(
        ("zero_shot", "few_shot_common", "few_shot_rag"),
        (True, False),
        ("precise", "large"),
        ("gpt-3.5", "gpt-4"),
    ):
        variants.append(
            PromptConfig(
                example_selection=selection,
                chain_of_thought=cot,
                table_region=region,
                model=model,
            )
        )
    return variants


_LABEL_FUNCTIONS: Dict[str, str] = {
    "total": "SUM",
    "sum": "SUM",
    "grand": "SUM",
    "average": "AVERAGE",
    "avg": "AVERAGE",
    "count": "COUNTA",
    "responses": "COUNTA",
    "max": "MAX",
    "highest": "MAX",
    "min": "MIN",
    "lowest": "MIN",
}


class SimulatedLLMBaseline(FormulaPredictor):
    """Prompt-configurable simulated LLM for the Table 4/5 comparisons."""

    def __init__(self, prompt: Optional[PromptConfig] = None) -> None:
        self.prompt = prompt or PromptConfig()
        self.name = f"GPT ({self.prompt.label()})"
        self._embedder = WordAveragingEmbedder(dimension=50)
        self._index: Optional[ExactIndex] = None
        self._retrieval_records: List[Tuple[Sheet, CellAddress, str]] = []

    # ---------------------------------------------------------------- offline

    def _region_text(self, sheet: Sheet, center: CellAddress) -> str:
        """Concatenated text context fed to the retrieval embedder."""
        radius = 4 if self.prompt.table_region == "precise" else 8
        label = row_label(sheet, center)
        header = column_header(sheet, center)
        nearby = " ".join(surrounding_text(sheet, center, radius=radius))
        return f"{sheet.name} {label} {header} {nearby}"

    def fit(self, reference_workbooks: Sequence[Workbook]) -> None:
        """Index reference formula regions for the RAG prompt variants."""
        self._retrieval_records = []
        self._index = ExactIndex(self._embedder.dimension)
        if self.prompt.example_selection != "few_shot_rag":
            return
        for workbook in reference_workbooks:
            for sheet in workbook:
                for address, cell in sheet.formula_cells():
                    text = self._region_text(sheet, address)
                    self._index.add(len(self._retrieval_records), self._embedder.embed(text))
                    self._retrieval_records.append((sheet, address, cell.formula or ""))

    # ----------------------------------------------------------------- online

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        if self.prompt.example_selection == "few_shot_rag":
            return self._predict_with_rag(target_sheet, target_cell)
        return self._predict_from_context(target_sheet, target_cell)

    # ----------------------------------------------------- context-only modes

    def _predict_from_context(
        self, target_sheet: Sheet, target_cell: CellAddress
    ) -> Optional[Prediction]:
        """Zero-shot / common-few-shot behaviour: label-driven aggregation.

        These variants only succeed when an explicit aggregation label sits
        next to the target cell and the data run is straightforward.  The
        weaker model tier and missing chain-of-thought introduce systematic
        range mistakes (off-by-one grounding), mirroring the near-zero
        exact-match scores of Table 4.
        """
        context = f"{row_label(target_sheet, target_cell)} {column_header(target_sheet, target_cell)}"
        words = [word.strip(",.:;()").lower() for word in context.split()]
        function = next(
            (_LABEL_FUNCTIONS[word] for word in words if word in _LABEL_FUNCTIONS), None
        )
        if function is None:
            return None
        run = numeric_run_above(target_sheet, target_cell) or numeric_run_left(
            target_sheet, target_cell
        )
        if run is None:
            return None
        start, end = run
        # Without retrieved examples of this organization's formulas, only the
        # strongest configuration grounds the range correctly: few-shot
        # prompting with the stronger model tier and step-by-step reasoning
        # over the precise table region.  Zero-shot variants always make
        # systematic grounding mistakes (this is what drives their near-zero
        # exact-match scores in Table 4).
        careful = (
            self.prompt.example_selection == "few_shot_common"
            and self.prompt.model == "gpt-4"
            and self.prompt.chain_of_thought
            and self.prompt.table_region == "precise"
        )
        if not careful:
            # sloppy grounding: drops the first row of the data run
            if start.row < end.row:
                start = CellAddress(start.row + 1, start.col)
            elif start.col < end.col:
                start = CellAddress(start.row, start.col + 1)
        if self.prompt.table_region == "large" and not careful:
            # a larger prompt region makes the model over-extend the range
            end = CellAddress(end.row + 1, end.col) if start.col == end.col else CellAddress(end.row, end.col + 1)
        formula = f"={function}({RangeAddress(start, end).to_a1()})"
        confidence = 0.35 if careful else 0.25
        return Prediction(formula=formula, confidence=confidence, details={"variant": self.prompt.label()})

    # ---------------------------------------------------------------- RAG mode

    def _predict_with_rag(
        self, target_sheet: Sheet, target_cell: CellAddress
    ) -> Optional[Prediction]:
        """RAG behaviour: retrieve the most similar formula region and copy it."""
        if self._index is None or len(self._index) == 0:
            return None
        query = self._embedder.embed(self._region_text(target_sheet, target_cell))
        hits = self._index.search(query, k=1)
        if not hits:
            return None
        sheet, address, formula = self._retrieval_records[int(hits[0].key)]
        careful = self.prompt.model == "gpt-4" or self.prompt.chain_of_thought
        if careful:
            relocated = copy_formula_to(formula, address, target_cell)
        else:
            # the less careful variants paste the retrieved formula verbatim
            relocated = f"={formula.lstrip('=')}"
        if relocated is None:
            return None
        similarity = max(0.0, 1.0 - hits[0].distance / 2.0)
        return Prediction(
            formula=relocated,
            confidence=0.3 + 0.4 * similarity,
            details={
                "variant": self.prompt.label(),
                "reference_sheet": sheet.name,
                "reference_cell": address.to_a1(),
                "reference_formula": formula,
            },
        )
