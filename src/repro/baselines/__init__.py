"""Baseline formula-recommendation methods compared in the paper.

* :class:`WeakSupervisionBaseline` — uses only the sheet-name hypothesis
  test to find a reference sheet, then copies the nearest formula
  (high precision, low recall);
* :class:`MondrianBaseline` — graph-based layout matching with a
  hand-crafted similarity and agglomerative clustering (moderate quality,
  poor scalability);
* :class:`SpreadsheetCoderBaseline` — predicts from the natural-language
  context around the target cell only (works for short aggregation
  formulas);
* :class:`SimulatedLLMBaseline` — a prompt-configurable stand-in for the
  GPT experiments (24 prompt variants; the RAG variants retrieve similar
  regions with a GloVe-style embedder and copy formulas).

All baselines implement the same :class:`~repro.core.FormulaPredictor`
interface as Auto-Formula, so the evaluation harness treats them uniformly.
"""

from repro.baselines.weak_supervision import WeakSupervisionBaseline
from repro.baselines.mondrian import MondrianBaseline, MondrianConfig
from repro.baselines.spreadsheetcoder import SpreadsheetCoderBaseline
from repro.baselines.llm import (
    SimulatedLLMBaseline,
    PromptConfig,
    all_prompt_variants,
)

__all__ = [
    "WeakSupervisionBaseline",
    "MondrianBaseline",
    "MondrianConfig",
    "SpreadsheetCoderBaseline",
    "SimulatedLLMBaseline",
    "PromptConfig",
    "all_prompt_variants",
]
