"""Weak-supervision-only baseline.

The simplest version of the paper's idea: two sheets are deemed similar
only when their names pass the sheet-name hypothesis test (no learned
representations).  The predicted formula is the formula on the matched
reference sheet closest to the target cell, relocated to the target cell
with copy/paste reference semantics.  High precision (sheet-name matches
are rarely wrong) but low recall (most similar sheets are named
differently, or carry common names like ``Sheet1``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines.common import copy_formula_to, nearest_formula_cell
from repro.core.interface import FormulaPredictor, Prediction
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.weaksup.name_statistics import SheetNameStatistics


class WeakSupervisionBaseline(FormulaPredictor):
    """Sheet-name hypothesis test + nearest-formula copy."""

    name = "Weak Supervision"

    def __init__(self, alpha: float = 0.05) -> None:
        self.alpha = alpha
        self._statistics = SheetNameStatistics()
        self._reference_sheets: List[Tuple[str, Sheet]] = []

    def fit(self, reference_workbooks: Sequence[Workbook]) -> None:
        self._statistics = SheetNameStatistics.from_workbooks(reference_workbooks)
        self._reference_sheets = [
            (workbook.name, sheet) for workbook in reference_workbooks for sheet in workbook
        ]

    def _matching_sheets(self, target_sheet: Sheet) -> List[Tuple[str, Sheet]]:
        """Reference sheets whose name matches confidently (p-value <= alpha)."""
        name = target_sheet.name.strip().lower()
        if not name:
            return []
        p_value = self._statistics.probability(target_sheet.name)
        if p_value > self.alpha:
            return []
        return [
            (workbook_name, sheet)
            for workbook_name, sheet in self._reference_sheets
            if sheet.name.strip().lower() == name
        ]

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        matches = self._matching_sheets(target_sheet)
        best: Optional[Tuple[int, str, Sheet, CellAddress, str]] = None
        for workbook_name, sheet in matches:
            found = nearest_formula_cell(sheet, target_cell)
            if found is None:
                continue
            address, formula = found
            distance = abs(address.row - target_cell.row) + abs(address.col - target_cell.col)
            if best is None or distance < best[0]:
                best = (distance, workbook_name, sheet, address, formula)
        if best is None:
            return None
        distance, workbook_name, sheet, address, formula = best
        relocated = copy_formula_to(formula, address, target_cell)
        if relocated is None:
            return None
        p_value = self._statistics.probability(target_sheet.name)
        confidence = max(0.0, min(1.0, (1.0 - p_value) / (1.0 + distance)))
        return Prediction(
            formula=relocated,
            confidence=confidence,
            details={
                "reference_workbook": workbook_name,
                "reference_sheet": sheet.name,
                "reference_cell": address.to_a1(),
                "reference_formula": formula,
                "name_p_value": p_value,
            },
        )
