"""Shared helpers for baseline predictors."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.formula.template import shift_formula
from repro.formula.tokenizer import FormulaSyntaxError
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet


def nearest_formula_cell(
    sheet: Sheet, target: CellAddress
) -> Optional[Tuple[CellAddress, str]]:
    """The formula cell on ``sheet`` closest (Manhattan distance) to ``target``."""
    best: Optional[Tuple[int, CellAddress, str]] = None
    for address, cell in sheet.formula_cells():
        distance = abs(address.row - target.row) + abs(address.col - target.col)
        if best is None or distance < best[0]:
            best = (distance, address, cell.formula or "")
    if best is None:
        return None
    return best[1], best[2]


def copy_formula_to(
    formula: str, source: CellAddress, destination: CellAddress
) -> Optional[str]:
    """Relocate a formula from ``source`` to ``destination``.

    References are shifted by the displacement between the two cells — the
    semantics of pasting a relative-reference formula into another cell.
    Returns ``None`` when the shift would push a reference off the sheet or
    the formula cannot be parsed.
    """
    try:
        return shift_formula(
            formula, destination.row - source.row, destination.col - source.col
        )
    except (FormulaSyntaxError, ValueError):
        return None


def numeric_run_above(sheet: Sheet, target: CellAddress) -> Optional[Tuple[CellAddress, CellAddress]]:
    """The contiguous run of numeric cells directly above ``target`` in its column."""
    row = target.row - 1
    end_row: Optional[int] = None
    while row >= 0:
        cell = sheet.get((row, target.col))
        if isinstance(cell.value, (int, float)) and not isinstance(cell.value, bool):
            if end_row is None:
                end_row = row
            row -= 1
            continue
        break
    if end_row is None:
        return None
    start_row = row + 1
    return CellAddress(start_row, target.col), CellAddress(end_row, target.col)


def numeric_run_left(sheet: Sheet, target: CellAddress) -> Optional[Tuple[CellAddress, CellAddress]]:
    """The contiguous run of numeric cells directly left of ``target`` in its row."""
    col = target.col - 1
    end_col: Optional[int] = None
    while col >= 0:
        cell = sheet.get((target.row, col))
        if isinstance(cell.value, (int, float)) and not isinstance(cell.value, bool):
            if end_col is None:
                end_col = col
            col -= 1
            continue
        break
    if end_col is None:
        return None
    start_col = col + 1
    return CellAddress(target.row, start_col), CellAddress(target.row, end_col)


def row_label(sheet: Sheet, target: CellAddress, max_distance: int = 6) -> str:
    """The nearest text cell to the left of ``target`` in the same row."""
    for col in range(target.col - 1, max(-1, target.col - 1 - max_distance), -1):
        value = sheet.get((target.row, col)).value
        if isinstance(value, str) and value.strip():
            return value
    return ""


def column_header(sheet: Sheet, target: CellAddress, max_distance: int = 40) -> str:
    """The nearest text cell above ``target`` in the same column."""
    for row in range(target.row - 1, max(-1, target.row - 1 - max_distance), -1):
        value = sheet.get((row, target.col)).value
        if isinstance(value, str) and value.strip():
            return value
    return ""


def surrounding_text(sheet: Sheet, target: CellAddress, radius: int = 3) -> List[str]:
    """All text values in the square neighborhood of ``target``."""
    texts: List[str] = []
    for row in range(target.row - radius, target.row + radius + 1):
        for col in range(target.col - radius, target.col + radius + 1):
            if row < 0 or col < 0:
                continue
            value = sheet.get((row, col)).value
            if isinstance(value, str) and value.strip():
                texts.append(value)
    return texts
