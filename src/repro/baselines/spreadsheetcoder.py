"""SpreadsheetCoder-style baseline: predict from natural-language context.

SpreadsheetCoder (Chen et al., ICML'21) predicts a formula for a target
cell from the surrounding natural-language context (headers and row
labels).  Re-running the original model is not possible offline, so this
baseline captures its defining behaviour: it maps context keywords to
aggregation templates and grounds them on the contiguous data run adjacent
to the target cell.  As the paper observes, this works for short
single-function aggregations (``SUM``, ``AVERAGE``, ``COUNT``) driven by an
explicit label, and fails on multi-function or multi-parameter formulas
whose intent is not spelled out in nearby text.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.common import (
    column_header,
    numeric_run_above,
    numeric_run_left,
    row_label,
)
from repro.core.interface import FormulaPredictor, Prediction
from repro.sheet.addressing import CellAddress, RangeAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

#: Keyword -> aggregation function mapping learned from NL context.
_KEYWORD_FUNCTIONS: Dict[str, str] = {
    "total": "SUM",
    "totals": "SUM",
    "sum": "SUM",
    "grand": "SUM",
    "subtotal": "SUM",
    "average": "AVERAGE",
    "avg": "AVERAGE",
    "mean": "AVERAGE",
    "count": "COUNTA",
    "responses": "COUNTA",
    "number": "COUNTA",
    "max": "MAX",
    "maximum": "MAX",
    "highest": "MAX",
    "min": "MIN",
    "minimum": "MIN",
    "lowest": "MIN",
}


class SpreadsheetCoderBaseline(FormulaPredictor):
    """NL-context-only formula prediction."""

    name = "SpreadsheetCoder"

    def __init__(self) -> None:
        self._keyword_priors: Dict[str, Dict[str, int]] = {}

    # ---------------------------------------------------------------- offline

    def fit(self, reference_workbooks: Sequence[Workbook]) -> None:
        """Learn keyword -> function co-occurrence statistics from the corpus.

        The statistics refine the built-in keyword table: for every formula
        cell in the reference workbooks, the nearby row label / column
        header words are associated with the outermost function of that
        formula.
        """
        self._keyword_priors = {}
        for workbook in reference_workbooks:
            for sheet in workbook:
                for address, cell in sheet.formula_cells():
                    formula = (cell.formula or "").lstrip("=")
                    function = formula.split("(", 1)[0].upper() if "(" in formula else ""
                    if not function:
                        continue
                    context = f"{row_label(sheet, address)} {column_header(sheet, address)}"
                    for word in context.lower().split():
                        priors = self._keyword_priors.setdefault(word, {})
                        priors[function] = priors.get(function, 0) + 1

    # ----------------------------------------------------------------- online

    def _context_function(self, sheet: Sheet, target: CellAddress) -> Optional[Tuple[str, float]]:
        """Choose an aggregation function from the target's NL context."""
        context = f"{row_label(sheet, target)} {column_header(sheet, target)}".lower()
        words = [word.strip(",.:;()") for word in context.split()]
        votes: Dict[str, float] = {}
        for word in words:
            if word in _KEYWORD_FUNCTIONS:
                function = _KEYWORD_FUNCTIONS[word]
                votes[function] = votes.get(function, 0.0) + 1.0
            priors = self._keyword_priors.get(word)
            if priors:
                total = sum(priors.values())
                for function, count in priors.items():
                    votes[function] = votes.get(function, 0.0) + 0.5 * count / total
        if not votes:
            return None
        function = max(votes, key=lambda key: votes[key])
        strength = votes[function] / (1.0 + sum(votes.values()))
        return function, min(1.0, 0.4 + strength)

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        choice = self._context_function(target_sheet, target_cell)
        if choice is None:
            return None
        function, confidence = choice
        run = numeric_run_above(target_sheet, target_cell)
        orientation = "column"
        if run is None or (run[1].row - run[0].row) < 1:
            run = numeric_run_left(target_sheet, target_cell)
            orientation = "row"
        if run is None:
            return None
        data_range = RangeAddress(run[0], run[1])
        if function in ("COUNTA",):
            # counts usually target the label column next to the numbers
            formula = f"={function}({data_range.to_a1()})"
        else:
            formula = f"={function}({data_range.to_a1()})"
        return Prediction(
            formula=formula,
            confidence=confidence,
            details={"function": function, "orientation": orientation},
        )
