"""Mondrian-style baseline: graph-based layout matching and clustering.

Mondrian (Vitagliano et al., SIGMOD'22 demo) detects spreadsheet layouts by
modelling rectangular regions of a sheet as graph nodes and clustering
sheets with a hand-crafted similarity.  This reimplementation follows that
recipe: regions are maximal rectangular blocks of same-typed cells, sheet
similarity is a greedy node-matching score over region attributes, and the
offline phase runs agglomerative clustering over all reference sheets —
which is quadratic in the number of sheets with an expensive per-pair cost,
reproducing the scalability cliff the paper reports (time-outs on the
larger corpora, Figure 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import copy_formula_to, nearest_formula_cell
from repro.core.interface import FormulaPredictor, Prediction
from repro.sheet.addressing import CellAddress
from repro.sheet.cell import CellType
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass(frozen=True)
class _Region:
    """A rectangular block of same-typed cells (a Mondrian graph node)."""

    top: int
    left: int
    bottom: int
    right: int
    cell_type: str
    n_cells: int

    @property
    def height(self) -> int:
        return self.bottom - self.top + 1

    @property
    def width(self) -> int:
        return self.right - self.left + 1


@dataclass
class MondrianConfig:
    """Knobs of the Mondrian baseline."""

    #: Abort the offline clustering when it exceeds this wall-clock budget.
    fit_timeout_seconds: Optional[float] = None
    #: Minimum sheet similarity for a prediction to be emitted.
    acceptance_similarity: float = 0.55


def extract_regions(sheet: Sheet) -> List[_Region]:
    """Greedy row-major decomposition of a sheet into same-typed blocks."""
    visited: set = set()
    regions: List[_Region] = []
    cells = {address: cell for address, cell in sheet.cells() if not cell.is_empty}
    for address in sorted(cells):
        if address in visited:
            continue
        cell_type = cells[address].cell_type
        # grow right
        right = address.col
        while True:
            neighbour = CellAddress(address.row, right + 1)
            if neighbour in cells and neighbour not in visited and cells[neighbour].cell_type == cell_type:
                right += 1
            else:
                break
        # grow down while the whole row strip matches
        bottom = address.row
        while True:
            next_row = bottom + 1
            strip = [CellAddress(next_row, col) for col in range(address.col, right + 1)]
            if all(
                candidate in cells
                and candidate not in visited
                and cells[candidate].cell_type == cell_type
                for candidate in strip
            ):
                bottom = next_row
            else:
                break
        n_cells = 0
        for row in range(address.row, bottom + 1):
            for col in range(address.col, right + 1):
                visited.add(CellAddress(row, col))
                n_cells += 1
        regions.append(
            _Region(
                top=address.row,
                left=address.col,
                bottom=bottom,
                right=right,
                cell_type=cell_type.value,
                n_cells=n_cells,
            )
        )
    return regions


def region_similarity(left: _Region, right: _Region) -> float:
    """Hand-crafted similarity between two regions (type, shape, position)."""
    if left.cell_type != right.cell_type:
        return 0.0
    height_ratio = min(left.height, right.height) / max(left.height, right.height)
    width_ratio = min(left.width, right.width) / max(left.width, right.width)
    position_penalty = 1.0 / (1.0 + abs(left.top - right.top) / 10.0 + abs(left.left - right.left) / 5.0)
    return (0.4 * height_ratio + 0.3 * width_ratio + 0.3 * position_penalty)


def sheet_similarity(left_regions: Sequence[_Region], right_regions: Sequence[_Region]) -> float:
    """Greedy one-to-one matching score between two sheets' region graphs."""
    if not left_regions or not right_regions:
        return 0.0
    scores = np.zeros((len(left_regions), len(right_regions)), dtype=np.float64)
    for i, left in enumerate(left_regions):
        for j, right in enumerate(right_regions):
            scores[i, j] = region_similarity(left, right)
    matched = 0.0
    used_rows: set = set()
    used_cols: set = set()
    order = np.dstack(np.unravel_index(np.argsort(-scores, axis=None), scores.shape))[0]
    for i, j in order:
        if int(i) in used_rows or int(j) in used_cols:
            continue
        if scores[int(i), int(j)] <= 0.0:
            break
        matched += scores[int(i), int(j)]
        used_rows.add(int(i))
        used_cols.add(int(j))
    return matched / max(len(left_regions), len(right_regions))


class MondrianBaseline(FormulaPredictor):
    """Layout-clustering baseline with hand-crafted sheet similarity."""

    name = "Mondrian"

    def __init__(self, config: Optional[MondrianConfig] = None) -> None:
        self.config = config or MondrianConfig()
        self._reference: List[Tuple[str, Sheet, List[_Region]]] = []
        self._clusters: Dict[int, int] = {}

    # ---------------------------------------------------------------- offline

    def fit(self, reference_workbooks: Sequence[Workbook]) -> None:
        start = time.perf_counter()
        timeout = self.config.fit_timeout_seconds
        self._reference = []
        for workbook in reference_workbooks:
            for sheet in workbook:
                self._reference.append((workbook.name, sheet, extract_regions(sheet)))
                if timeout is not None and time.perf_counter() - start > timeout:
                    raise TimeoutError("Mondrian preprocessing exceeded its time budget")
        self._clusters = self._agglomerative_clustering(start, timeout)

    def _agglomerative_clustering(
        self, start: float, timeout: Optional[float]
    ) -> Dict[int, int]:
        """Naive agglomerative clustering over all reference sheets.

        This is the expensive part: all-pairs similarities followed by
        repeated cluster merges, mirroring the cubic behaviour of the
        original system.  The result is only used for reporting; prediction
        scans pairwise similarities directly.
        """
        n = len(self._reference)
        clusters = {index: index for index in range(n)}
        if n < 2:
            return clusters
        similarities = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                similarities[i, j] = similarities[j, i] = sheet_similarity(
                    self._reference[i][2], self._reference[j][2]
                )
            if timeout is not None and time.perf_counter() - start > timeout:
                raise TimeoutError("Mondrian preprocessing exceeded its time budget")
        threshold = self.config.acceptance_similarity
        for __ in range(n):
            best_pair: Optional[Tuple[int, int]] = None
            best_value = threshold
            for i in range(n):
                for j in range(i + 1, n):
                    if clusters[i] == clusters[j]:
                        continue
                    if similarities[i, j] > best_value:
                        best_value = similarities[i, j]
                        best_pair = (i, j)
            if best_pair is None:
                break
            merged_from = clusters[best_pair[1]]
            merged_to = clusters[best_pair[0]]
            for index in range(n):
                if clusters[index] == merged_from:
                    clusters[index] = merged_to
            if timeout is not None and time.perf_counter() - start > timeout:
                raise TimeoutError("Mondrian preprocessing exceeded its time budget")
        return clusters

    # ----------------------------------------------------------------- online

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        if not self._reference:
            return None
        target_regions = extract_regions(target_sheet)
        best: Optional[Tuple[float, str, Sheet]] = None
        for workbook_name, sheet, regions in self._reference:
            similarity = sheet_similarity(target_regions, regions)
            if best is None or similarity > best[0]:
                best = (similarity, workbook_name, sheet)
        if best is None or best[0] < self.config.acceptance_similarity:
            return None
        similarity, workbook_name, sheet = best
        found = nearest_formula_cell(sheet, target_cell)
        if found is None:
            return None
        address, formula = found
        relocated = copy_formula_to(formula, address, target_cell)
        if relocated is None:
            return None
        return Prediction(
            formula=relocated,
            confidence=float(similarity),
            details={
                "reference_workbook": workbook_name,
                "reference_sheet": sheet.name,
                "reference_cell": address.to_a1(),
                "reference_formula": formula,
                "sheet_similarity": similarity,
            },
        )
