"""Semi-hard triplet training of the representation models (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig, TrainingConfig
from repro.models.encoder import SheetEncoder
from repro.nn import Adam, SGD, Sequential, semi_hard_triplets
from repro.nn.losses import triplet_loss_and_grad
from repro.weaksup.augmentation import augment_region_sheet, augment_sheet
from repro.weaksup.pairs import TrainingPairs


@dataclass
class TrainingHistory:
    """Per-epoch loss traces for both models."""

    coarse_losses: List[float] = field(default_factory=list)
    fine_losses: List[float] = field(default_factory=list)
    n_coarse_pairs: int = 0
    n_fine_pairs: int = 0


class TripletTrainer:
    """Trains ``M_c`` and ``M_f`` with semi-hard triplet mining.

    The trainer materializes window tensors for all positive pairs and the
    negative pools once (applying data augmentation where configured), then
    per epoch: embeds everything with the current model, mines semi-hard
    triplets, and takes optimizer steps on mini-batches of those triplets.
    """

    def __init__(
        self,
        encoder: SheetEncoder,
        training_config: Optional[TrainingConfig] = None,
    ) -> None:
        self.encoder = encoder
        self.config = training_config or TrainingConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------- data prep

    def _subsample(self, items: list, limit: int) -> list:
        """Random subsample of ``items`` down to ``limit`` elements."""
        if limit <= 0 or len(items) <= limit:
            return items
        chosen = self._rng.choice(len(items), size=limit, replace=False)
        return [items[int(i)] for i in chosen]

    def _coarse_tensors(self, pairs: TrainingPairs) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Anchor / positive / negative window tensors for the coarse model."""
        featurize = self.encoder.featurizer.featurize_sheet
        augmentation = self.config.augmentation
        positive_pairs = self._subsample(pairs.positive_sheet_pairs, self.config.max_positive_pairs)
        negative_pairs = self._subsample(pairs.negative_sheet_pairs, self.config.max_negative_pairs)
        anchors, positives = [], []
        for pair in positive_pairs:
            right = pair.right
            if augmentation.enabled and augmentation.augment_sheets:
                right = augment_sheet(right, self._rng, augmentation.max_removal_fraction)
            anchors.append(featurize(pair.left))
            positives.append(featurize(right))
        negatives = []
        for pair in negative_pairs:
            negatives.append(featurize(pair.right))
        shape = self.encoder.featurizer.window_shape
        empty = np.zeros((0,) + shape, dtype=np.float32)
        return (
            np.stack(anchors) if anchors else empty,
            np.stack(positives) if positives else empty,
            np.stack(negatives) if negatives else empty,
        )

    def _fine_tensors(self, pairs: TrainingPairs) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Anchor / positive / negative window tensors for the fine model."""
        featurize = self.encoder.featurizer.featurize_region
        augmentation = self.config.augmentation
        positive_pairs = self._subsample(pairs.positive_region_pairs, self.config.max_positive_pairs)
        negative_pairs = self._subsample(pairs.negative_region_pairs, self.config.max_negative_pairs)
        anchors, positives = [], []
        for pair in positive_pairs:
            right_sheet = pair.right_sheet
            if (
                augmentation.enabled
                and augmentation.augment_regions
                and self._rng.random() < augmentation.region_fraction
            ):
                right_sheet = augment_region_sheet(
                    right_sheet,
                    self._rng,
                    augmentation.max_removal_fraction,
                    protect_rows=pair.right_center.row + 1,
                    protect_cols=pair.right_center.col + 1,
                )
            anchors.append(featurize(pair.left_sheet, pair.left_center))
            positives.append(featurize(right_sheet, pair.right_center))
        negatives = [
            featurize(pair.right_sheet, pair.right_center)
            for pair in negative_pairs
        ]
        shape = self.encoder.featurizer.window_shape
        empty = np.zeros((0,) + shape, dtype=np.float32)
        return (
            np.stack(anchors) if anchors else empty,
            np.stack(positives) if positives else empty,
            np.stack(negatives) if negatives else empty,
        )

    # -------------------------------------------------------------- training

    def _make_optimizer(self, model: Sequential):
        if self.config.optimizer.lower() == "sgd":
            return SGD(model, learning_rate=self.config.learning_rate, momentum=0.9)
        return Adam(model, learning_rate=self.config.learning_rate)

    def _train_model(
        self,
        model: Sequential,
        anchors: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> List[float]:
        """Run the epoch loop for one model, returning per-epoch mean losses."""
        losses: List[float] = []
        if len(anchors) == 0 or len(negatives) == 0:
            return losses
        optimizer = self._make_optimizer(model)
        margin = self.config.margin
        for __ in range(self.config.epochs):
            anchor_embeddings = model.forward(anchors)
            positive_embeddings = model.forward(positives)
            negative_embeddings = model.forward(negatives)
            batch = semi_hard_triplets(
                anchor_embeddings,
                positive_embeddings,
                negative_embeddings,
                margin=margin,
                max_triplets=self.config.max_triplets_per_epoch,
                rng=self._rng,
            )
            if len(batch) == 0:
                losses.append(0.0)
                continue
            epoch_losses: List[float] = []
            batch_size = self.config.batch_size
            for start in range(0, len(batch), batch_size):
                anchor_idx = batch.anchor_indices[start : start + batch_size]
                positive_idx = batch.positive_indices[start : start + batch_size]
                negative_idx = batch.negative_indices[start : start + batch_size]
                stacked = np.concatenate(
                    [anchors[anchor_idx], positives[positive_idx], negatives[negative_idx]]
                )
                optimizer.zero_grad()
                embeddings = model.forward(stacked, training=True)
                n = len(anchor_idx)
                loss, d_anchor, d_positive, d_negative = triplet_loss_and_grad(
                    embeddings[:n], embeddings[n : 2 * n], embeddings[2 * n :], margin=margin
                )
                grad = np.concatenate([d_anchor, d_positive, d_negative])
                model.backward(grad)
                optimizer.step()
                epoch_losses.append(loss)
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def train(self, pairs: TrainingPairs) -> TrainingHistory:
        """Train both models from weak-supervision pairs (Algorithm 1)."""
        history = TrainingHistory(
            n_coarse_pairs=len(pairs.positive_sheet_pairs),
            n_fine_pairs=len(pairs.positive_region_pairs),
        )
        coarse_anchor, coarse_positive, coarse_negative = self._coarse_tensors(pairs)
        history.coarse_losses = self._train_model(
            self.encoder.coarse_model, coarse_anchor, coarse_positive, coarse_negative
        )
        fine_anchor, fine_positive, fine_negative = self._fine_tensors(pairs)
        history.fine_losses = self._train_model(
            self.encoder.fine_model, fine_anchor, fine_positive, fine_negative
        )
        return history


def train_models(
    pairs: TrainingPairs,
    model_config: Optional[ModelConfig] = None,
    training_config: Optional[TrainingConfig] = None,
) -> Tuple[SheetEncoder, TrainingHistory]:
    """Convenience wrapper: build an encoder, train it, return both."""
    encoder = SheetEncoder(model_config)
    trainer = TripletTrainer(encoder, training_config)
    history = trainer.train(pairs)
    return encoder, history
