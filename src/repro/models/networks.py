"""Network builders for the coarse-grained and fine-grained models."""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig
from repro.nn import (
    AvgPool2D,
    Conv2D,
    Flatten,
    L2Normalize,
    Linear,
    PerCellLinear,
    ReLU,
    Sequential,
)


def _reduction_layers(config: ModelConfig, cell_dim: int, rng: np.random.Generator):
    """The shared per-cell dimension-reduction MLP (applied to every cell)."""
    return [
        PerCellLinear(cell_dim, config.reduction_hidden_dim, rng=rng),
        ReLU(),
        PerCellLinear(config.reduction_hidden_dim, config.reduction_output_dim, rng=rng),
        ReLU(),
    ]


def build_coarse_model(config: ModelConfig, cell_dim: int) -> Sequential:
    """The coarse-grained model ``M_c``: CNN feature extraction.

    Convolution and average pooling blur cell boundaries and tolerate
    row/column shifts, which is exactly what whole-sheet "fuzzy" similarity
    needs (Example 3 in the paper).
    """
    rng = np.random.default_rng(config.seed)
    rows, cols = config.features.window_rows, config.features.window_cols
    channels = config.coarse_conv_channels
    pooled_rows, pooled_cols = rows // 2 // 2, cols // 2 // 2
    if pooled_rows < 1 or pooled_cols < 1:
        raise ValueError(
            "view window too small for two 2x2 pooling stages: "
            f"{rows}x{cols}"
        )
    flattened = pooled_rows * pooled_cols * channels
    return Sequential(
        _reduction_layers(config, cell_dim, rng)
        + [
            Conv2D(config.reduction_output_dim, channels, kernel_size=3, rng=rng),
            ReLU(),
            AvgPool2D(2),
            Conv2D(channels, channels, kernel_size=3, rng=rng),
            ReLU(),
            AvgPool2D(2),
            Flatten(),
            Linear(flattened, config.coarse_embedding_dim, rng=rng),
            L2Normalize(),
        ]
    )


def build_fine_model(config: ModelConfig, cell_dim: int) -> Sequential:
    """The fine-grained model ``M_f``: per-cell fully-connected extraction.

    No convolution or pooling is used, so every cell keeps its own slice of
    the output embedding and a one-cell shift produces a markedly different
    vector — the precision needed for similar-region search.
    """
    rng = np.random.default_rng(config.seed + 1)
    return Sequential(
        _reduction_layers(config, cell_dim, rng)
        + [
            PerCellLinear(config.reduction_output_dim, config.fine_per_cell_dim, rng=rng),
            Flatten(),
            L2Normalize(),
        ]
    )
