"""The :class:`SheetEncoder`: featurization + trained models in one object.

The encoder is what the rest of the system (indexing, online prediction,
baseline RAG retrieval) consumes: it turns sheets into coarse embeddings and
(sheet, cell) regions into fine embeddings, hiding the featurizer and the
two networks behind two methods.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.features import FeatureConfig, WindowFeaturizer
from repro.models.config import ModelConfig
from repro.models.networks import build_coarse_model, build_fine_model
from repro.nn import Sequential
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet


class SheetEncoder:
    """Embeds sheets (coarse) and regions (fine) with the trained models."""

    def __init__(
        self,
        config: Optional[ModelConfig] = None,
        coarse_model: Optional[Sequential] = None,
        fine_model: Optional[Sequential] = None,
        featurizer: Optional[WindowFeaturizer] = None,
    ) -> None:
        self.config = config or ModelConfig()
        self.featurizer = featurizer or WindowFeaturizer(self.config.features)
        cell_dim = self.featurizer.cell_featurizer.dimension
        self.coarse_model = coarse_model or build_coarse_model(self.config, cell_dim)
        self.fine_model = fine_model or build_fine_model(self.config, cell_dim)

    # ------------------------------------------------------------------- dims

    @property
    def coarse_dimension(self) -> int:
        """Dimensionality of coarse (sheet-level) embeddings."""
        return self.config.coarse_embedding_dim

    @property
    def fine_dimension(self) -> int:
        """Dimensionality of fine (region-level) embeddings."""
        return self.config.fine_embedding_dim

    # ------------------------------------------------------------------ embed

    def embed_sheet(self, sheet: Sheet) -> np.ndarray:
        """Coarse embedding of a whole sheet."""
        window = self.featurizer.featurize_sheet(sheet)[None, ...]
        return self.coarse_model.forward(window)[0]

    def embed_sheets(self, sheets: Sequence[Sheet]) -> np.ndarray:
        """Coarse embeddings for a batch of sheets."""
        if not sheets:
            return np.zeros((0, self.coarse_dimension), dtype=np.float32)
        windows = np.stack([self.featurizer.featurize_sheet(sheet) for sheet in sheets])
        return self.coarse_model.forward(windows)

    def embed_region(self, sheet: Sheet, center: CellAddress) -> np.ndarray:
        """Fine embedding of the window centered at ``center``."""
        window = self.featurizer.featurize_region(sheet, center)[None, ...]
        return self.fine_model.forward(window)[0]

    def embed_regions(self, sheet: Sheet, centers: Sequence[CellAddress]) -> np.ndarray:
        """Fine embeddings for several centers on the same sheet."""
        if not centers:
            return np.zeros((0, self.fine_dimension), dtype=np.float32)
        windows = self.featurizer.featurize_regions(sheet, list(centers))
        return self.fine_model.forward(windows)

    # ------------------------------------------------------------ persistence

    def save(self, directory: Union[str, Path]) -> None:
        """Persist both models' parameters under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.coarse_model.save(directory / "coarse.npz")
        self.fine_model.save(directory / "fine.npz")

    def load(self, directory: Union[str, Path]) -> None:
        """Load parameters previously written by :meth:`save`."""
        directory = Path(directory)
        self.coarse_model.load(directory / "coarse.npz")
        self.fine_model.load(directory / "fine.npz")
