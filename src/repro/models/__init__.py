"""Spreadsheet representation models (Section 4.4-4.5).

Two models share the same input featurization but differ in their feature
extraction branch:

* the **coarse-grained** model ``M_c`` uses convolution + pooling, making it
  translation-tolerant ("fuzzy") for whole-sheet similar-sheet search;
* the **fine-grained** model ``M_f`` keeps per-cell structure through
  fully-connected layers, making it position-precise for similar-region
  search.

Both are trained with semi-hard triplet learning on the weakly-supervised
pairs (Algorithm 1), and expose L2-normalized embeddings consumed by the
ANN indexes.
"""

from repro.models.config import ModelConfig, TrainingConfig
from repro.models.networks import build_coarse_model, build_fine_model
from repro.models.encoder import SheetEncoder
from repro.models.trainer import TripletTrainer, TrainingHistory, train_models

__all__ = [
    "ModelConfig",
    "TrainingConfig",
    "build_coarse_model",
    "build_fine_model",
    "SheetEncoder",
    "TripletTrainer",
    "TrainingHistory",
    "train_models",
]
