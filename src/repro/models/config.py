"""Model and training configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.features.config import FeatureConfig
from repro.weaksup.augmentation import AugmentationConfig


@dataclass
class ModelConfig:
    """Architecture hyper-parameters for the representation models.

    Paper-scale values (100x10 window, 896-d coarse embedding, 16 floats per
    cell for the fine model) are recorded as class attributes; the instance
    defaults are scaled down so NumPy training used in tests and benchmarks
    finishes in seconds.  The *shape* of the architecture is identical.
    """

    features: FeatureConfig = field(default_factory=FeatureConfig)
    #: Hidden width of the shared per-cell dimension-reduction MLP.
    reduction_hidden_dim: int = 32
    #: Per-cell dimensionality after reduction (input channels to the CNN).
    reduction_output_dim: int = 8
    #: Channels of the two convolution blocks in the coarse branch.
    coarse_conv_channels: int = 12
    #: Output embedding dimensionality of the coarse model.
    coarse_embedding_dim: int = 64
    #: Per-cell output dimensionality of the fine model (16 in the paper).
    fine_per_cell_dim: int = 8
    #: Random seed for weight initialization.
    seed: int = 0

    PAPER_COARSE_EMBEDDING_DIM = 896
    PAPER_FINE_PER_CELL_DIM = 16

    @property
    def fine_embedding_dim(self) -> int:
        """Total fine embedding dimensionality (per-cell dim x window cells)."""
        return self.fine_per_cell_dim * self.features.window_cells


@dataclass
class TrainingConfig:
    """Hyper-parameters of the semi-hard triplet training loop."""

    epochs: int = 8
    batch_size: int = 16
    learning_rate: float = 2e-3
    margin: float = 0.5
    max_triplets_per_epoch: int = 256
    optimizer: str = "adam"
    augmentation: AugmentationConfig = field(default_factory=AugmentationConfig)
    seed: int = 0
    #: Caps on how many weak-supervision pairs are materialized as window
    #: tensors (featurization is the dominant cost of NumPy training).
    max_positive_pairs: int = 120
    max_negative_pairs: int = 120
