"""Random-hyperplane LSH index with multi-table probing."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from repro.ann.base import VectorIndex


class LSHIndex(VectorIndex):
    """Locality-sensitive hashing via signed random projections.

    Each of ``n_tables`` tables hashes a vector to the sign pattern of
    ``n_bits`` random hyperplane projections (packed into one integer);
    queries gather the union of their buckets across tables and score only
    those candidates.  Candidate positions are sorted before scoring so that
    nearest-neighbour ties break deterministically across runs.  Falls back
    to exact search when the candidate set is smaller than ``k`` so recall
    never collapses on tiny corpora.
    """

    def __init__(
        self,
        dimension: int,
        n_tables: int = 8,
        n_bits: int = 12,
        seed: int = 0,
        *,
        scoring_mode: str = "deterministic",
        storage_dtype: str = "float32",
        tier1_overfetch: float = 4.0,
    ) -> None:
        super().__init__(
            dimension,
            scoring_mode=scoring_mode,
            storage_dtype=storage_dtype,
            tier1_overfetch=tier1_overfetch,
        )
        if n_tables <= 0 or n_bits <= 0:
            raise ValueError("n_tables and n_bits must be positive")
        if n_bits > 62:
            raise ValueError("n_bits must be at most 62 to pack into an int64 signature")
        rng = np.random.default_rng(seed)
        self._n_tables = n_tables
        self._n_bits = n_bits
        self._hyperplanes = [
            rng.standard_normal((dimension, n_bits)).astype(np.float32) for __ in range(n_tables)
        ]
        self._bit_weights = (np.int64(1) << np.arange(n_bits, dtype=np.int64))
        self._tables: List[Dict[int, List[int]]] = [defaultdict(list) for __ in range(n_tables)]

    def _signatures(self, table: int, vectors: np.ndarray) -> np.ndarray:
        """Packed-bit signatures for a block of vectors, one table."""
        projection = vectors @ self._hyperplanes[table]
        return (projection > 0).astype(np.int64) @ self._bit_weights

    def _on_add_batch(self, start: int, vectors: np.ndarray) -> None:
        for table in range(self._n_tables):
            buckets = self._tables[table]
            for offset, signature in enumerate(self._signatures(table, vectors).tolist()):
                buckets[signature].append(start + offset)

    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        candidates: set = set()
        block = query[None, :]
        for table in range(self._n_tables):
            signature = int(self._signatures(table, block)[0])
            candidates.update(self._tables[table].get(signature, ()))
        if not candidates:
            return None  # fall back to exact scan
        positions = self._live(
            np.sort(np.fromiter(candidates, dtype=np.int64, count=len(candidates)))
        )
        if positions.size < k:
            return None  # fall back to exact scan
        return positions

    def _rebuild(self) -> None:
        """Re-hash the compacted store (same hyperplanes, new positions)."""
        self._tables = [defaultdict(list) for __ in range(self._n_tables)]
        if self._size:
            self._on_add_batch(0, self._matrix[: self._size])
