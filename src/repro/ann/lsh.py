"""Random-hyperplane LSH index with multi-table probing."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann.base import VectorIndex


class LSHIndex(VectorIndex):
    """Locality-sensitive hashing via signed random projections.

    Each of ``n_tables`` tables hashes a vector to the sign pattern of
    ``n_bits`` random hyperplane projections; queries gather the union of
    their buckets across tables and score only those candidates.  Falls back
    to exact search when the candidate set is smaller than ``k`` so recall
    never collapses on tiny corpora.
    """

    def __init__(
        self,
        dimension: int,
        n_tables: int = 8,
        n_bits: int = 12,
        seed: int = 0,
    ) -> None:
        super().__init__(dimension)
        if n_tables <= 0 or n_bits <= 0:
            raise ValueError("n_tables and n_bits must be positive")
        rng = np.random.default_rng(seed)
        self._n_tables = n_tables
        self._n_bits = n_bits
        self._hyperplanes = [
            rng.standard_normal((dimension, n_bits)).astype(np.float32) for __ in range(n_tables)
        ]
        self._tables: List[Dict[Tuple[int, ...], List[int]]] = [
            defaultdict(list) for __ in range(n_tables)
        ]

    def _signature(self, table: int, vector: np.ndarray) -> Tuple[int, ...]:
        projection = vector @ self._hyperplanes[table]
        return tuple((projection > 0).astype(np.int8).tolist())

    def _on_add(self, position: int, vector: np.ndarray) -> None:
        for table in range(self._n_tables):
            self._tables[table][self._signature(table, vector)].append(position)

    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        candidates: set = set()
        for table in range(self._n_tables):
            candidates.update(self._tables[table].get(self._signature(table, query), ()))
        if len(candidates) < k:
            return None  # fall back to exact scan
        return np.fromiter(candidates, dtype=np.int64)
