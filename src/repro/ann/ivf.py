"""Inverted-file (IVF) index with a k-means coarse quantizer."""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.ann.base import VectorIndex


def _kmeans(vectors: np.ndarray, n_clusters: int, n_iterations: int, seed: int) -> np.ndarray:
    """Plain Lloyd's k-means returning the centroid matrix."""
    rng = np.random.default_rng(seed)
    n = vectors.shape[0]
    n_clusters = min(n_clusters, n)
    centroids = vectors[rng.choice(n, size=n_clusters, replace=False)].copy()
    for __ in range(n_iterations):
        distances = (
            np.sum(vectors**2, axis=1, keepdims=True)
            - 2.0 * vectors @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        assignment = np.argmin(distances, axis=1)
        for cluster in range(n_clusters):
            members = vectors[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


class IVFIndex(VectorIndex):
    """IVF index: cluster vectors, probe the nearest ``n_probe`` clusters.

    The quantizer is trained lazily on the first query once at least
    ``2 * n_clusters`` vectors are present; smaller indexes fall back to
    exact search.  After training, newly added vectors are assigned to their
    nearest *existing* centroid incrementally — k-means is only re-run once
    the index has grown by ``retrain_growth_factor`` since it was last
    trained, not on the first query after every add.
    """

    def __init__(
        self,
        dimension: int,
        n_clusters: int = 16,
        n_probe: int = 3,
        kmeans_iterations: int = 10,
        seed: int = 0,
        retrain_growth_factor: float = 2.0,
        *,
        scoring_mode: str = "deterministic",
        storage_dtype: str = "float32",
        tier1_overfetch: float = 4.0,
    ) -> None:
        super().__init__(
            dimension,
            scoring_mode=scoring_mode,
            storage_dtype=storage_dtype,
            tier1_overfetch=tier1_overfetch,
        )
        if n_clusters <= 0 or n_probe <= 0:
            raise ValueError("n_clusters and n_probe must be positive")
        if retrain_growth_factor <= 1.0:
            raise ValueError("retrain_growth_factor must be > 1")
        self._n_clusters = n_clusters
        self._n_probe = n_probe
        self._kmeans_iterations = kmeans_iterations
        self._seed = seed
        self._retrain_growth_factor = retrain_growth_factor
        self._centroids: Optional[np.ndarray] = None
        self._lists: Dict[int, List[int]] = {}
        self._trained_size = 0
        #: Serializes lazy quantizer training: searches are logically
        #: read-only but the first query after a (re)build trains k-means,
        #: and concurrent readers must see either the fully-trained state
        #: or train it themselves — never a half-written one.
        self._train_mutex = threading.Lock()

    def _assign(self, vectors: np.ndarray, centroids: Optional[np.ndarray] = None) -> np.ndarray:
        """Nearest-centroid assignment for a block of vectors.

        ``centroids`` defaults to the published quantizer; ``_train``
        passes its freshly-computed matrix explicitly so assignment can
        run *before* the new state is published to concurrent readers.
        """
        if centroids is None:
            centroids = self._centroids
        assert centroids is not None
        distances = (
            np.sum(vectors**2, axis=1, keepdims=True)
            - 2.0 * vectors @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        return np.argmin(distances, axis=1)

    def _on_add_batch(self, start: int, vectors: np.ndarray) -> None:
        if self._centroids is None:
            return  # not trained yet; the first query trains on everything
        for offset, cluster in enumerate(self._assign(vectors)):
            self._lists.setdefault(int(cluster), []).append(start + offset)

    def _train(self) -> None:
        # Train on live vectors only: a store with tombstones must quantize
        # exactly like a fresh index built from the surviving vectors.
        live_positions = np.flatnonzero(self._alive[: self._size])
        matrix = self._matrix[live_positions]
        centroids = _kmeans(matrix, self._n_clusters, self._kmeans_iterations, self._seed)
        assignment = self._assign(matrix, centroids)
        lists: Dict[int, List[int]] = {}
        for position, cluster in zip(live_positions.tolist(), assignment):
            lists.setdefault(int(cluster), []).append(int(position))
        # Publish the fully-built state last so concurrent readers never see
        # centroids paired with half-filled inverted lists.
        self._lists = lists
        self._centroids = centroids
        self._trained_size = len(self)

    def _needs_training(self) -> bool:
        if self._centroids is None:
            return True
        return len(self) >= self._retrain_growth_factor * max(self._trained_size, 1)

    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        if len(self) < 2 * self._n_clusters:
            return None
        if self._needs_training():
            # Double-checked: concurrent searches racing on a stale
            # quantizer train it once; later arrivals re-check and skip.
            with self._train_mutex:
                if self._needs_training():
                    self._train()
        assert self._centroids is not None
        distances = np.sum((self._centroids - query) ** 2, axis=1)
        probe_order = np.argsort(distances, kind="stable")[: self._n_probe]
        candidates: List[int] = []
        for cluster in probe_order:
            candidates.extend(self._lists.get(int(cluster), ()))
        if not candidates:
            return None
        positions = self._live(np.sort(np.asarray(candidates, dtype=np.int64)))
        if positions.size < k:
            return None
        return positions

    def _reset_quantizer(self) -> None:
        self._centroids = None
        self._lists = {}
        self._trained_size = 0

    def _on_remove_batch(self, positions: np.ndarray) -> None:
        # Removals invalidate the quantizer so the next query retrains on
        # the surviving corpus — this is what makes a mutated index answer
        # bit-identically to a freshly built one (incremental *adds* keep
        # the centroids; recall under stale centroids is covered by tests).
        self._reset_quantizer()

    def _rebuild(self) -> None:
        """Compaction renumbered positions; retrain lazily on next query."""
        self._reset_quantizer()
