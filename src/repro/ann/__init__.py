"""Approximate nearest-neighbour search substrate (the Faiss stand-in).

The online phase of Auto-Formula retrieves similar sheets and regions by
nearest-neighbour search over dense vectors.  Three interchangeable indexes
are provided behind a common interface:

* :class:`ExactIndex` — brute-force exact search (the accuracy reference);
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing with
  multi-table probing;
* :class:`IVFIndex` — inverted-file index with a k-means coarse quantizer
  and configurable probe count (the closest analogue of ``IndexIVFFlat``).
"""

from repro.ann.base import SearchResult, VectorIndex
from repro.ann.exact import ExactIndex
from repro.ann.lsh import LSHIndex
from repro.ann.ivf import IVFIndex

__all__ = ["SearchResult", "VectorIndex", "ExactIndex", "LSHIndex", "IVFIndex", "create_index"]


def create_index(kind: str, dimension: int, **kwargs) -> VectorIndex:
    """Factory for index construction from configuration strings."""
    key = kind.strip().lower()
    if key in ("exact", "flat", "brute"):
        return ExactIndex(dimension)
    if key == "lsh":
        return LSHIndex(dimension, **kwargs)
    if key == "ivf":
        return IVFIndex(dimension, **kwargs)
    raise ValueError(f"unknown index kind {kind!r}")
