"""Approximate nearest-neighbour search substrate (the Faiss stand-in).

The online phase of Auto-Formula retrieves similar sheets and regions by
nearest-neighbour search over dense vectors.  Three interchangeable indexes
are provided behind a common interface:

* :class:`ExactIndex` — brute-force exact search (the accuracy reference);
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing with
  multi-table probing;
* :class:`IVFIndex` — inverted-file index with a k-means coarse quantizer
  and configurable probe count (the closest analogue of ``IndexIVFFlat``).
"""

from repro.ann.base import SearchResult, VectorIndex
from repro.ann.exact import ExactIndex
from repro.ann.lsh import LSHIndex
from repro.ann.ivf import IVFIndex

__all__ = [
    "SearchResult",
    "VectorIndex",
    "ExactIndex",
    "LSHIndex",
    "IVFIndex",
    "create_index",
    "KNOWN_INDEX_KINDS",
]

_INDEX_BUILDERS = {
    "exact": ExactIndex,
    "flat": ExactIndex,
    "brute": ExactIndex,
    "lsh": LSHIndex,
    "ivf": IVFIndex,
}

#: Every spelling :func:`create_index` accepts (lower-case; matching is
#: case-insensitive and whitespace-tolerant).  Configuration objects import
#: this to validate index-kind strings at construction time.
KNOWN_INDEX_KINDS = frozenset(_INDEX_BUILDERS)


def create_index(kind: str, dimension: int, **kwargs) -> VectorIndex:
    """Factory for index construction from configuration strings."""
    builder = _INDEX_BUILDERS.get(kind.strip().lower())
    if builder is None:
        raise ValueError(
            f"unknown index kind {kind!r}; expected one of {sorted(KNOWN_INDEX_KINDS)}"
        )
    return builder(dimension, **kwargs)
