"""Common vector-index interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """A single nearest-neighbour hit."""

    key: Hashable
    distance: float


class VectorIndex(abc.ABC):
    """Maps user-provided keys to vectors and answers k-NN queries.

    Distances are squared Euclidean; since all embeddings produced by the
    representation models are L2-normalized, the ranking is equivalent to a
    cosine-similarity ranking.
    """

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self._dimension = dimension
        self._keys: List[Hashable] = []
        self._vectors: List[np.ndarray] = []

    # -------------------------------------------------------------- interface

    @property
    def dimension(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dimension

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: Hashable, vector: np.ndarray) -> None:
        """Add one vector under ``key``."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self._dimension:
            raise ValueError(
                f"vector has dimension {vector.shape[0]}, index expects {self._dimension}"
            )
        self._keys.append(key)
        self._vectors.append(vector)
        self._on_add(len(self._keys) - 1, vector)

    def add_batch(self, keys: Sequence[Hashable], vectors: np.ndarray) -> None:
        """Add many vectors at once."""
        for key, vector in zip(keys, vectors):
            self.add(key, vector)

    def search(self, query: np.ndarray, k: int = 1) -> List[SearchResult]:
        """Return (up to) the ``k`` nearest stored vectors to ``query``."""
        if len(self._keys) == 0 or k <= 0:
            return []
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self._dimension:
            raise ValueError(
                f"query has dimension {query.shape[0]}, index expects {self._dimension}"
            )
        candidate_positions = self._candidates(query, k)
        if candidate_positions is None:
            candidate_positions = np.arange(len(self._keys))
        if candidate_positions.size == 0:
            return []
        matrix = np.stack([self._vectors[int(i)] for i in candidate_positions])
        distances = np.sum((matrix - query) ** 2, axis=1)
        order = np.argsort(distances)[:k]
        return [
            SearchResult(self._keys[int(candidate_positions[int(i)])], float(distances[int(i)]))
            for i in order
        ]

    # --------------------------------------------------------------- subclass

    def _on_add(self, position: int, vector: np.ndarray) -> None:
        """Hook for subclasses to update auxiliary structures."""

    @abc.abstractmethod
    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        """Positions of candidate vectors to score (``None`` = score all)."""
