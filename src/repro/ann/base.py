"""Common vector-index interface with two-tier scoring.

Scoring runs in one of two modes (``scoring_mode``):

* ``"deterministic"`` — the single-tier path: every candidate is scored
  with the fixed-order einsum scorer whose distances are bit-identical
  across pool shapes (what sharded/unsharded parity relies on).
* ``"two_tier"`` — tier 1 scores the pool with BLAS matmul over a
  pluggable storage backend (``storage_dtype`` of ``float32``,
  ``float16``, or symmetric per-vector-scaled ``int8``); tier 2 re-scores
  only a provably sufficient top slice with the same fixed-order einsum
  on the exact ``float32`` store, so the *final* rankings and distances
  remain bit-identical to the deterministic path.  When the slice needed
  to guarantee that exceeds ``ceil(k * tier1_overfetch)`` the affected
  rows transparently fall back to the one-tier scorer.

Why the re-rank is sound: tier-1 distances are computed as
``sq_norms - 2 * x @ v_hat + ||x||^2`` where ``sq_norms`` are the *exact*
float32 squared norms — so the only approximation is the cross term, and
``|d_hat - d| <= 2 * ||x|| * ||v - v_hat|| + fp_slack``.  Per-vector
reconstruction errors ``||v - v_hat||`` are computed once at add time;
with ``M`` bounding the per-row error, every candidate of the exact top-k
(boundary ties included) must score within ``t + 2M`` of the tier-1
k-th-smallest ``t``, and every candidate whose exact distance clamps to
zero must score within ``M`` — the slice takes the union of both sets.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

# Imported from the tracing submodule directly: the ``repro.obs`` package
# pulls in the metrics registry (and its LatencyRecorder backend), which
# this low-level index layer has no business depending on.
from repro.obs.tracing import get_tracer

#: Accepted ``scoring_mode`` spellings.
VALID_SCORING_MODES = ("deterministic", "two_tier")

#: Accepted ``storage_dtype`` spellings for the tier-1 scan store.
VALID_STORAGE_DTYPES = ("float32", "float16", "int8")

_CODE_DTYPES = {"float16": np.float16, "int8": np.int8}

#: Rows of the scan store dequantized per chunk in a tier-1 full scan, so
#: the float32 temporary stays bounded regardless of corpus size.
_TIER1_CHUNK_ROWS = 32768

#: Largest finite float16 magnitude; codes are clipped here so quantizing
#: out-of-range values can never produce non-finite reconstructions.
_F16_MAX = 65504.0

_EPS32 = float(np.finfo(np.float32).eps)


@dataclass(frozen=True)
class SearchResult:
    """A single nearest-neighbour hit."""

    key: Hashable
    distance: float


class VectorIndex(abc.ABC):
    """Maps user-provided keys to vectors and answers k-NN queries.

    Distances are squared Euclidean; since all embeddings produced by the
    representation models are L2-normalized, the ranking is equivalent to a
    cosine-similarity ranking.

    Vectors live in one contiguous ``float32`` matrix that grows
    geometrically, so both single and batched queries score candidates with
    vectorized slices of that matrix — no per-query re-stacking of Python
    lists.  Ties in distance break deterministically toward the candidate at
    the lowest scored position.

    Removal is tombstone-based: :meth:`remove_batch` marks positions dead,
    every search path excludes dead positions, and once the dead fraction
    exceeds ``compaction_fraction`` the store is compacted in place (the
    caller receives an old-position → new-position remap so any pools it
    holds can be rewritten).

    The exact ``float32`` matrix is always kept — it is what tier-2
    re-ranking, snapshots, and restore-parity are defined against.  A
    quantized ``storage_dtype`` adds a parallel scan store (``codes`` +
    per-vector ``scales`` for int8 + per-vector reconstruction errors)
    that tier 1 streams instead of the float32 matrix; after a
    memory-mapped restore the float32 matrix can stay cold on disk while
    the small code store is the working set.
    """

    #: Dead fraction of the store above which ``remove_batch`` compacts.
    compaction_fraction: float = 0.5

    #: Smallest pool for which tier 1 is engaged; below this the exact
    #: scorer wins outright.  Class-level so tests can lower it to force
    #: two-tier scoring on tiny pools.
    tier1_min_pool: int = 64

    def __init__(
        self,
        dimension: int,
        *,
        scoring_mode: str = "deterministic",
        storage_dtype: str = "float32",
        tier1_overfetch: float = 4.0,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if scoring_mode not in VALID_SCORING_MODES:
            raise ValueError(
                f"unknown scoring_mode {scoring_mode!r}; expected one of {VALID_SCORING_MODES}"
            )
        if storage_dtype not in VALID_STORAGE_DTYPES:
            raise ValueError(
                f"unknown storage_dtype {storage_dtype!r}; expected one of {VALID_STORAGE_DTYPES}"
            )
        if storage_dtype != "float32" and scoring_mode != "two_tier":
            raise ValueError(
                f"storage_dtype={storage_dtype!r} requires scoring_mode='two_tier': the "
                "deterministic path scores the exact float32 store and would never read "
                "the quantized codes"
            )
        if not tier1_overfetch >= 1.0:
            raise ValueError("tier1_overfetch must be >= 1.0")
        self._dimension = dimension
        self._scoring_mode = scoring_mode
        self._storage_dtype = storage_dtype
        self._tier1_overfetch = float(tier1_overfetch)
        self._keys: List[Hashable] = []
        self._matrix = np.empty((0, dimension), dtype=np.float32)
        self._sq_norms = np.empty((0,), dtype=np.float32)
        self._alive = np.empty((0,), dtype=bool)
        if storage_dtype == "float32":
            self._codes: Optional[np.ndarray] = None
            self._scales: Optional[np.ndarray] = None
            self._recon_errs: Optional[np.ndarray] = None
        else:
            self._codes = np.empty((0, dimension), dtype=_CODE_DTYPES[storage_dtype])
            self._scales = (
                np.empty((0,), dtype=np.float32) if storage_dtype == "int8" else None
            )
            self._recon_errs = np.empty((0,), dtype=np.float32)
        self._size = 0
        self._n_dead = 0
        #: Memoized live-position array for full scans over a store with
        #: tombstones (None = stale; rebuilt on demand, invalidated by
        #: add/remove/compaction).
        self._live_scan: Optional[np.ndarray] = None

    # -------------------------------------------------------------- interface

    @property
    def dimension(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dimension

    @property
    def scoring_mode(self) -> str:
        """``"deterministic"`` (one-tier) or ``"two_tier"``."""
        return self._scoring_mode

    @property
    def storage_dtype(self) -> str:
        """Dtype of the tier-1 scan store (``float32``/``float16``/``int8``)."""
        return self._storage_dtype

    @property
    def tier1_overfetch(self) -> float:
        """Slice budget multiplier: tier 2 re-ranks at most ``ceil(k * this)``."""
        return self._tier1_overfetch

    def __len__(self) -> int:
        """Number of *live* (non-tombstoned) vectors."""
        return self._size - self._n_dead

    @property
    def n_tombstones(self) -> int:
        """Number of removed-but-not-yet-compacted positions."""
        return self._n_dead

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the stored vectors in insertion order.

        The view is a snapshot: it stops tracking the store once the backing
        matrix is reallocated by a later ``add``.  Rows tombstoned by
        :meth:`remove_batch` are still present until compaction.
        """
        view = self._matrix[: self._size]
        view.flags.writeable = False
        return view

    def add(self, key: Hashable, vector: np.ndarray) -> None:
        """Add one vector under ``key``."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self._dimension:
            raise ValueError(
                f"vector has dimension {vector.shape[0]}, index expects {self._dimension}"
            )
        self.add_batch([key], vector[None, :])

    def add_batch(self, keys: Sequence[Hashable], vectors: np.ndarray) -> None:
        """Add many vectors at once (one append plus one subclass hook)."""
        keys = list(keys)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            # A flat array is a single vector (for a single key), never a
            # concatenation to be split across keys.
            vectors = vectors[None, :] if keys else vectors.reshape(0, self._dimension)
        if vectors.ndim != 2 or vectors.shape[1] != self._dimension:
            raise ValueError(
                f"vectors have dimension {vectors.shape[-1] if vectors.ndim else 0}, "
                f"index expects {self._dimension}"
            )
        if vectors.shape[0] != len(keys):
            raise ValueError(f"{len(keys)} keys for {vectors.shape[0]} vectors")
        if not keys:
            return
        count = len(keys)
        self._ensure_capacity(count)
        start = self._size
        self._matrix[start : start + count] = vectors
        block = self._matrix[start : start + count]
        self._sq_norms[start : start + count] = np.einsum("ij,ij->i", block, block)
        self._alive[start : start + count] = True
        if self._codes is not None:
            codes, scales, errs = self._quantize_block(block)
            self._codes[start : start + count] = codes
            if self._scales is not None:
                self._scales[start : start + count] = scales
            self._recon_errs[start : start + count] = errs
        self._keys.extend(keys)
        self._size += count
        self._live_scan = None
        self._on_add_batch(start, block)

    def remove_batch(self, positions: Sequence[int]) -> Optional[np.ndarray]:
        """Tombstone the vectors stored at ``positions``.

        Tombstoned positions are excluded from every search path (full
        scans, subclass candidate pools, and caller-provided ``positions``
        pools).  Once the dead fraction of the store exceeds
        ``compaction_fraction`` the store is compacted: live vectors are
        renumbered contiguously and an ``int64`` remap array is returned
        with ``remap[old_position] == new_position`` (``-1`` for removed
        positions) so callers can rewrite any position pools they hold.
        Returns ``None`` when no compaction took place.
        """
        positions = np.asarray(list(positions), dtype=np.int64).reshape(-1)
        if positions.size == 0:
            return None
        if int(positions.min()) < 0 or int(positions.max()) >= self._size:
            raise IndexError(
                f"positions must be in [0, {self._size}), got range "
                f"[{int(positions.min())}, {int(positions.max())}]"
            )
        if np.unique(positions).size != positions.size:
            raise ValueError("duplicate positions in remove_batch")
        if not bool(np.all(self._alive[positions])):
            raise ValueError("remove_batch called on an already-removed position")
        self._alive[positions] = False
        self._n_dead += positions.size
        self._live_scan = None
        self._on_remove_batch(positions)
        if self._n_dead > self.compaction_fraction * self._size:
            return self._compact()
        return None

    def search(self, query: np.ndarray, k: int = 1) -> List[SearchResult]:
        """Return (up to) the ``k`` nearest stored vectors to ``query``."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self._dimension:
            raise ValueError(
                f"query has dimension {query.shape[0]}, index expects {self._dimension}"
            )
        return self.search_batch(query[None, :], k)[0]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        positions: Optional[np.ndarray] = None,
    ) -> List[List[SearchResult]]:
        """Batched k-NN: one result list per query row.

        ``positions`` restricts scoring to the given stored positions (the
        caller's candidate pool, e.g. the formulas of the sheets retrieved in
        an earlier stage); the whole batch is then scored against that pool
        with a single matrix product.  Without ``positions`` each query goes
        through the subclass's candidate selection (cluster probing, hash
        buckets, ...); rows with private candidate pools are padded into one
        masked scoring call rather than scored one row at a time.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dimension:
            raise ValueError(
                f"queries must have shape (n, {self._dimension}), got {queries.shape}"
            )
        n_queries = queries.shape[0]
        n_alive = self._size - self._n_dead
        if n_alive == 0 or k <= 0:
            return [[] for __ in range(n_queries)]
        if positions is not None:
            positions = self._live(np.asarray(positions, dtype=np.int64))
            if positions.size == 0:
                return [[] for __ in range(n_queries)]
            return self._score_block(queries, positions, k)
        results: List[Optional[List[SearchResult]]] = [None] * n_queries
        full_rows: List[int] = []
        ragged_rows: List[int] = []
        ragged_pools: List[np.ndarray] = []
        for row in range(n_queries):
            candidates = self._candidates(queries[row], k)
            if candidates is None or candidates.size >= n_alive:
                full_rows.append(row)
            elif candidates.size == 0:
                results[row] = []
            else:
                ragged_rows.append(row)
                ragged_pools.append(candidates)
        if ragged_rows:
            scored = self._score_ragged(queries[np.asarray(ragged_rows)], ragged_pools, k)
            for row, hits in zip(ragged_rows, scored):
                results[row] = hits
        if full_rows:
            scored = self._score_block(queries[np.asarray(full_rows)], None, k)
            for row, hits in zip(full_rows, scored):
                results[row] = hits
        return [hits if hits is not None else [] for hits in results]

    # --------------------------------------------------------------- internal

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2, 8)
        matrix = np.empty((new_capacity, self._dimension), dtype=np.float32)
        matrix[: self._size] = self._matrix[: self._size]
        self._matrix = matrix
        sq_norms = np.empty((new_capacity,), dtype=np.float32)
        sq_norms[: self._size] = self._sq_norms[: self._size]
        self._sq_norms = sq_norms
        alive = np.zeros((new_capacity,), dtype=bool)
        alive[: self._size] = self._alive[: self._size]
        self._alive = alive
        if self._codes is not None:
            codes = np.empty((new_capacity, self._dimension), dtype=self._codes.dtype)
            codes[: self._size] = self._codes[: self._size]
            self._codes = codes
            errs = np.empty((new_capacity,), dtype=np.float32)
            errs[: self._size] = self._recon_errs[: self._size]
            self._recon_errs = errs
            if self._scales is not None:
                scales = np.empty((new_capacity,), dtype=np.float32)
                scales[: self._size] = self._scales[: self._size]
                self._scales = scales

    def _live(self, positions: np.ndarray) -> np.ndarray:
        """``positions`` with tombstoned entries dropped (order preserved)."""
        if self._n_dead == 0:
            return positions
        return positions[self._alive[positions]]

    def _compact(self) -> np.ndarray:
        """Drop tombstoned rows and renumber; returns the old→new remap."""
        live_positions = np.flatnonzero(self._alive[: self._size])
        remap = np.full(self._size, -1, dtype=np.int64)
        remap[live_positions] = np.arange(live_positions.size, dtype=np.int64)
        self._matrix = self._matrix[live_positions]
        self._sq_norms = self._sq_norms[live_positions]
        if self._codes is not None:
            self._codes = self._codes[live_positions]
            self._recon_errs = self._recon_errs[live_positions]
            if self._scales is not None:
                self._scales = self._scales[live_positions]
        self._keys = [self._keys[int(position)] for position in live_positions]
        self._size = live_positions.size
        self._n_dead = 0
        self._alive = np.ones(self._size, dtype=bool)
        self._live_scan = None
        self._rebuild()
        return remap

    # ----------------------------------------------------------- quantization

    def _quantize_block(
        self, block: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """Quantize a float32 block to the scan dtype.

        Returns ``(codes, scales, reconstruction_errors)`` where ``scales``
        is ``None`` for float16 and the errors are per-vector L2 distances
        ``||v - v_hat||`` — the quantity the tier-1 over-fetch bound needs.
        Quantization is a pure function of the float32 values, so
        recomputing it (e.g. when restoring an old snapshot that predates
        quantized persistence) reproduces the codes bit-for-bit.
        """
        block = np.ascontiguousarray(block, dtype=np.float32)
        if self._storage_dtype == "float16":
            codes = np.clip(block, -_F16_MAX, _F16_MAX).astype(np.float16)
            scales = None
            recon = codes.astype(np.float32)
        else:
            peak = np.max(np.abs(block), axis=1) if block.size else np.zeros(block.shape[0])
            scales = np.where(peak > 0.0, peak / 127.0, 1.0).astype(np.float32)
            codes = np.clip(
                np.rint(block / scales[:, None]), -127.0, 127.0
            ).astype(np.int8)
            recon = codes.astype(np.float32) * scales[:, None]
        delta = block - recon
        errs = np.sqrt(np.einsum("ij,ij->i", delta, delta)).astype(np.float32)
        return codes, scales, errs

    def _dequantize_rows(self, rows: np.ndarray) -> np.ndarray:
        """Float32 reconstruction of scan-store rows (any integer fancy index)."""
        codes = self._codes[rows]
        block = codes.astype(np.float32)
        if self._scales is not None:
            block *= self._scales[rows][..., None]
        return block

    # ---------------------------------------------------------------- scoring

    def _score_block(
        self, queries: np.ndarray, positions: Optional[np.ndarray], k: int
    ) -> List[List[SearchResult]]:
        """Score every query against the vectors at ``positions`` at once.

        ``positions=None`` scores against the whole store through the
        contiguous matrix view (no gather copy) — the full-scan hot path.
        With tombstones present the full scan gathers live rows instead.
        In two-tier mode, pools big enough to be worth it go through the
        tier-1 scan + tier-2 re-rank; everything else (and any row whose
        guaranteed slice overflows the over-fetch budget) takes the
        one-tier deterministic scorer.
        """
        if positions is None and self._n_dead:
            if self._live_scan is None:
                self._live_scan = np.flatnonzero(self._alive[: self._size])
            positions = self._live_scan
        pool = self._size if positions is None else int(positions.size)
        if self._scoring_mode == "two_tier" and pool >= max(self.tier1_min_pool, 2):
            budget = self._slice_budget(k)
            if pool >= 2 * budget:
                with get_tracer().span(
                    "index.search",
                    mode="two_tier",
                    pool=pool,
                    k=k,
                    n_queries=queries.shape[0],
                    overfetch_budget=budget,
                ) as span:
                    results = self._score_two_tier(queries, positions, pool, k, budget)
                    if results is not None:
                        return results
                    # Every row's guaranteed slice overflowed the budget;
                    # the one-tier scorer over the shared pool is cheaper.
                    span.set_attribute("mode", "two_tier_overflow")
                    return self._score_exact(queries, positions, k)
        with get_tracer().span(
            "index.search", mode="exact", pool=pool, k=k, n_queries=queries.shape[0]
        ):
            return self._score_exact(queries, positions, k)

    def _score_exact(
        self, queries: np.ndarray, positions: Optional[np.ndarray], k: int
    ) -> List[List[SearchResult]]:
        """The one-tier deterministic scorer over a shared candidate pool."""
        if positions is None:
            matrix = self._matrix[: self._size]
            sq_norms = self._sq_norms[: self._size]
        else:
            matrix = self._matrix[positions]
            sq_norms = self._sq_norms[positions]
        # The cross term deliberately avoids BLAS (``queries @ matrix.T``):
        # sgemm picks different kernels — and different accumulation orders —
        # depending on operand shapes, so the same (query, vector) pair can
        # score a few ULPs apart in pools of different sizes.  Unoptimized
        # einsum accumulates each element in fixed order regardless of shape,
        # which is what lets a sharded corpus (scoring per-shard sub-pools)
        # reproduce a single index's distances bit-for-bit.
        distances = (
            sq_norms[None, :]
            - 2.0 * np.einsum("ij,kj->ik", queries, matrix)
            + np.einsum("ij,ij->i", queries, queries)[:, None]
        )
        np.maximum(distances, 0.0, out=distances)
        results: List[List[SearchResult]] = []
        for row in distances:
            order = np.argsort(row, kind="stable")[:k]
            results.append(
                [
                    SearchResult(
                        self._keys[int(i) if positions is None else int(positions[int(i)])],
                        float(row[int(i)]),
                    )
                    for i in order
                ]
            )
        return results

    def _slice_budget(self, k: int) -> int:
        """Largest slice tier 2 is willing to re-rank for one row."""
        return max(int(math.ceil(k * self._tier1_overfetch)), 16)

    def _tier1_cross(self, queries: np.ndarray, positions: Optional[np.ndarray], pool: int) -> np.ndarray:
        """BLAS cross term ``x @ v_hat.T`` against the scan store.

        Quantized stores are dequantized in bounded chunks so the float32
        temporary never exceeds ``_TIER1_CHUNK_ROWS`` rows; a float32 store
        multiplies straight against the (possibly gathered) matrix.
        """
        if self._codes is None:
            base = self._matrix[: self._size] if positions is None else self._matrix[positions]
            return queries @ base.T
        out = np.empty((queries.shape[0], pool), dtype=np.float32)
        for lo in range(0, pool, _TIER1_CHUNK_ROWS):
            hi = min(pool, lo + _TIER1_CHUNK_ROWS)
            rows = np.arange(lo, hi) if positions is None else positions[lo:hi]
            out[:, lo:hi] = queries @ self._dequantize_rows(rows).T
        return out

    def _tier1_margin(self, qq: np.ndarray, sq_norms: np.ndarray, max_err: float) -> np.ndarray:
        """Per-row bound ``M`` on ``|d_hat - d|`` (quantization + fp slack)."""
        x_norm = np.sqrt(np.maximum(qq, 0.0))
        v_max = math.sqrt(max(float(sq_norms.max()), 0.0)) if sq_norms.size else 0.0
        # Generous cover for float32 rounding in the BLAS dot and the
        # subtract/add chain: length-D accumulations each contribute
        # O(D * eps * magnitude), with an 8x headroom factor.
        slack = 8.0 * self._dimension * _EPS32 * ((x_norm + v_max) ** 2 + 1.0)
        return 2.0 * x_norm * max_err + slack

    def _score_two_tier(
        self,
        queries: np.ndarray,
        positions: Optional[np.ndarray],
        pool: int,
        k: int,
        budget: int,
    ) -> Optional[List[List[SearchResult]]]:
        """Tier-1 scan + per-row guaranteed slice + tier-2 exact re-rank.

        Returns ``None`` when every row's slice overflows ``budget`` (the
        caller then runs the one-tier scorer on the shared pool, which is
        cheaper than gathering per-row full-pool slices).
        """
        kk = min(k, pool)
        with get_tracer().span("index.tier1", pool=pool, k=k) as tier1_span:
            qq = np.einsum("ij,ij->i", queries, queries)
            sq_norms = self._sq_norms[: self._size] if positions is None else self._sq_norms[positions]
            approx = sq_norms[None, :] - 2.0 * self._tier1_cross(queries, positions, pool) + qq[:, None]
            if self._recon_errs is None:
                max_err = 0.0
            else:
                errs = self._recon_errs[: self._size] if positions is None else self._recon_errs[positions]
                max_err = float(errs.max()) if errs.size else 0.0
            margin = self._tier1_margin(qq, sq_norms, max_err)
            kth = np.partition(approx, kk - 1, axis=1)[:, kk - 1]
            # Slice rule (see module docstring): everything within 2M of the
            # tier-1 k-th smallest, plus everything whose exact distance could
            # clamp to zero and tie there (d <= 0 implies d_hat <= M).
            threshold = np.maximum(kth + 2.0 * margin, margin)
            mask = approx <= threshold[:, None]
            counts = mask.sum(axis=1)
            ok = counts <= budget
            tier1_span.set_attribute("max_slice", int(counts.max()))
            if not bool(ok.any()):
                return None
        results: List[Optional[List[SearchResult]]] = [None] * queries.shape[0]
        ok_rows = np.flatnonzero(ok)
        bad_rows = np.flatnonzero(~ok)
        with get_tracer().span(
            "index.tier2",
            n_rows=int(ok_rows.size),
            fallback_rows=int(bad_rows.size),
        ):
            row_index, col_index = np.nonzero(mask[ok_rows])
            ok_counts = counts[ok_rows]
            width = int(ok_counts.max())
            padded = np.zeros((ok_rows.size, width), dtype=np.int64)
            valid = np.zeros((ok_rows.size, width), dtype=bool)
            slot = np.arange(row_index.size) - np.repeat(
                np.concatenate(([0], np.cumsum(ok_counts)[:-1])), ok_counts
            )
            padded[row_index, slot] = col_index
            valid[row_index, slot] = True
            absolute = padded if positions is None else positions[padded]
            for row, hits in zip(ok_rows, self._score_padded(queries[ok_rows], absolute, valid, k)):
                results[int(row)] = hits
            if bad_rows.size:
                for row, hits in zip(bad_rows, self._score_exact(queries[bad_rows], positions, k)):
                    results[int(row)] = hits
        return results  # type: ignore[return-value]

    def _score_padded(
        self, queries: np.ndarray, absolute: np.ndarray, valid: np.ndarray, k: int
    ) -> List[List[SearchResult]]:
        """Deterministic scorer over per-row padded position pools.

        ``absolute[r]`` holds store positions for query row ``r`` in
        ascending pool order with arbitrary (masked-out) padding.  The
        3-operand ``"rd,rld->rl"`` einsum accumulates each element in the
        same fixed order as the shared-pool ``"ij,kj->ik"`` scorer, so the
        per-pair distances are bit-identical to :meth:`_score_exact` —
        which is what lets the vectorized ragged path and the tier-2
        re-rank reproduce the one-tier rankings exactly.
        """
        gathered = self._matrix[absolute]
        distances = (
            self._sq_norms[absolute]
            - 2.0 * np.einsum("rd,rld->rl", queries, gathered)
            + np.einsum("ij,ij->i", queries, queries)[:, None]
        )
        np.maximum(distances, 0.0, out=distances)
        distances[~valid] = np.inf
        results: List[List[SearchResult]] = []
        for r, row in enumerate(distances):
            order = np.argsort(row, kind="stable")[:k]
            hits: List[SearchResult] = []
            for i in order:
                if not valid[r, int(i)]:
                    break
                hits.append(
                    SearchResult(self._keys[int(absolute[r, int(i)])], float(row[int(i)]))
                )
            results.append(hits)
        return results

    def _score_ragged(
        self, queries: np.ndarray, pools: List[np.ndarray], k: int
    ) -> List[List[SearchResult]]:
        """Score rows with private candidate pools in one padded call.

        Replaces the historical one-row-at-a-time loop: pools are padded to
        the widest row and scored through :meth:`_score_padded` (bit-equal
        to scoring each row alone).  In two-tier mode the padded pools are
        first scanned by tier 1 and shrunk to guaranteed slices; rows whose
        slice overflows the budget keep their full pool, which makes the
        re-rank the exact scorer for that row.
        """
        sizes = np.asarray([pool.size for pool in pools], dtype=np.int64)
        width = int(sizes.max())
        padded = np.zeros((len(pools), width), dtype=np.int64)
        valid = np.zeros((len(pools), width), dtype=bool)
        for r, pool in enumerate(pools):
            padded[r, : pool.size] = pool
            valid[r, : pool.size] = True
        if self._scoring_mode == "two_tier" and width >= max(self.tier1_min_pool, 2):
            budget = self._slice_budget(k)
            shrunk = self._tier1_shrink_padded(queries, padded, valid, sizes, k, budget)
            if shrunk is not None:
                padded, valid = shrunk
        return self._score_padded(queries, padded, valid, k)

    def _tier1_shrink_padded(
        self,
        queries: np.ndarray,
        padded: np.ndarray,
        valid: np.ndarray,
        sizes: np.ndarray,
        k: int,
        budget: int,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Tier-1 scan of padded per-row pools → per-row guaranteed slices.

        Rows whose pool is already within the slice budget, or whose
        guaranteed slice overflows it, keep their full pool (the re-rank is
        then exact for those rows).  Returns ``None`` when no row shrank.
        """
        if self._codes is None:
            gathered = self._matrix[padded]
        else:
            gathered = self._dequantize_rows(padded)
        qq = np.einsum("ij,ij->i", queries, queries)
        sq_norms = self._sq_norms[padded]
        cross = np.matmul(gathered, queries[:, :, None])[:, :, 0]
        approx = sq_norms - 2.0 * cross + qq[:, None]
        approx[~valid] = np.inf
        if self._recon_errs is None:
            max_err = 0.0
        else:
            row_errs = np.where(valid, self._recon_errs[padded], 0.0)
            max_err = float(row_errs.max()) if row_errs.size else 0.0
        margin = self._tier1_margin(qq, np.where(valid, sq_norms, 0.0).ravel(), max_err)
        shrinkable = sizes > max(budget, k)
        if not bool(shrinkable.any()):
            return None
        mask = valid.copy()
        for r in np.flatnonzero(shrinkable):
            row = approx[r]
            kth = np.partition(row, k - 1)[k - 1]
            threshold = max(kth + 2.0 * float(margin[r]), float(margin[r]))
            row_mask = (row <= threshold) & valid[r]
            if int(row_mask.sum()) <= budget:
                mask[r] = row_mask
        if bool((mask == valid).all()):
            return None
        counts = mask.sum(axis=1)
        width = int(counts.max())
        new_padded = np.zeros((padded.shape[0], width), dtype=np.int64)
        new_valid = np.zeros((padded.shape[0], width), dtype=bool)
        row_index, col_index = np.nonzero(mask)
        slot = np.arange(row_index.size) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        new_padded[row_index, slot] = padded[row_index, col_index]
        new_valid[row_index, slot] = True
        return new_padded, new_valid

    # ------------------------------------------------------------ observability

    def memory_stats(self) -> Dict[str, object]:
        """JSON-ready resident-byte accounting for the ``/stats`` surface.

        ``bytes`` covers the occupied rows (capacity slack excluded);
        ``scan_bytes`` is what one tier-1 full scan streams (the quantized
        code store when present, the float32 matrix otherwise);
        ``quantization_savings_bytes`` is how much smaller that scan store
        is than a float32 scan would be; ``tombstone_bytes`` is the share
        of all stores pinned by removed-but-uncompacted rows.
        """
        size = self._size
        by_array: Dict[str, int] = {
            "float32_matrix": int(self._matrix[:size].nbytes),
            "sq_norms": int(self._sq_norms[:size].nbytes),
            "alive": int(self._alive[:size].nbytes),
        }
        scan_bytes = by_array["float32_matrix"]
        if self._codes is not None:
            by_array["codes"] = int(self._codes[:size].nbytes)
            by_array["recon_errors"] = int(self._recon_errs[:size].nbytes)
            scan_bytes = by_array["codes"] + by_array["recon_errors"]
            if self._scales is not None:
                by_array["scales"] = int(self._scales[:size].nbytes)
                scan_bytes += by_array["scales"]
        total = sum(by_array.values())
        row_bytes = total // size if size else 0
        return {
            "vectors": int(len(self)),
            "tombstones": int(self._n_dead),
            "dimension": int(self._dimension),
            "scoring_mode": self._scoring_mode,
            "storage_dtype": self._storage_dtype,
            "bytes": dict(by_array, total=int(total)),
            "scan_bytes": int(scan_bytes),
            "quantization_savings_bytes": int(
                max(by_array["float32_matrix"] - scan_bytes, 0) if self._codes is not None else 0
            ),
            "tombstone_bytes": int(self._n_dead * row_bytes),
        }

    # ------------------------------------------------------------- persistence

    def store_state(self) -> Dict[str, np.ndarray]:
        """The raw store, sized to ``_size``, for snapshot serialization.

        Keys are deliberately *not* included: they are caller-provided
        hashables whose encoding the owner of the index knows (stable sheet
        ids, ``(sheet id, local)`` pairs, ...), so the owner serializes
        them alongside these blocks.  ``sq_norms`` is persisted rather than
        recomputed on load — restored distances must be bit-identical to
        the live index's, and recomputation could differ in accumulation
        order.  Quantized stores additionally export their ``codes`` /
        ``scales`` / ``recon_errors`` blocks so a memory-mapped restore can
        page the scan store lazily instead of re-quantizing up front.
        """
        state = {
            "matrix": self._matrix[: self._size],
            "sq_norms": self._sq_norms[: self._size],
            "alive": self._alive[: self._size],
        }
        if self._codes is not None:
            state["codes"] = self._codes[: self._size]
            state["recon_errors"] = self._recon_errs[: self._size]
            if self._scales is not None:
                state["scales"] = self._scales[: self._size]
        return state

    def restore_store(
        self,
        keys: Sequence[Hashable],
        matrix: np.ndarray,
        sq_norms: np.ndarray,
        alive: np.ndarray,
        codes: Optional[np.ndarray] = None,
        scales: Optional[np.ndarray] = None,
        recon_errors: Optional[np.ndarray] = None,
    ) -> None:
        """Adopt a previously exported store (the snapshot-load path).

        ``matrix``, ``sq_norms``, and the quantized blocks may be read-only
        memory-maps: every write path reallocates first (``_ensure_capacity``
        copies on the next add because capacity equals size after a restore,
        and compaction gathers into a fresh array), so the mmap backing is
        never written through.  ``alive`` is copied because removals flip
        its entries in place.  Derived structures (inverted lists, hash
        buckets, quantizers) are rebuilt through the same ``_rebuild``
        hook compaction uses, which is what makes a restored index answer
        exactly like a freshly built one over the same live vectors.

        Quantized blocks are optional: a snapshot written without them
        (or with a different ``storage_dtype``) restores by re-quantizing
        the exact matrix, which reproduces the same codes bit-for-bit
        because quantization is a pure function of the float32 values.
        """
        matrix = np.asanyarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self._dimension:
            raise ValueError(
                f"restored matrix has shape {matrix.shape}, index expects "
                f"(n, {self._dimension})"
            )
        size = matrix.shape[0]
        if len(keys) != size or len(sq_norms) != size or len(alive) != size:
            raise ValueError(
                f"inconsistent restored store: {len(keys)} keys, {size} vectors, "
                f"{len(sq_norms)} norms, {len(alive)} liveness flags"
            )
        if matrix.dtype != np.float32:
            matrix = matrix.astype(np.float32)
        self._matrix = matrix
        self._sq_norms = np.asanyarray(sq_norms)
        if self._sq_norms.dtype != np.float32:
            self._sq_norms = self._sq_norms.astype(np.float32)
        self._alive = np.array(alive, dtype=bool)
        self._keys = list(keys)
        self._size = size
        self._n_dead = size - int(np.count_nonzero(self._alive))
        self._live_scan = None
        if self._storage_dtype != "float32":
            expected = _CODE_DTYPES[self._storage_dtype]
            adoptable = (
                codes is not None
                and recon_errors is not None
                and np.asanyarray(codes).dtype == expected
                and np.asanyarray(codes).shape == (size, self._dimension)
                and len(recon_errors) == size
                and (self._storage_dtype != "int8" or (scales is not None and len(scales) == size))
            )
            if adoptable:
                self._codes = np.asanyarray(codes)
                self._recon_errs = np.asanyarray(recon_errors).astype(np.float32, copy=False)
                self._scales = (
                    np.asanyarray(scales).astype(np.float32, copy=False)
                    if self._storage_dtype == "int8"
                    else None
                )
            else:
                self._codes, self._scales, self._recon_errs = self._quantize_block(
                    np.asarray(self._matrix[:size], dtype=np.float32)
                )
        self._rebuild()

    # --------------------------------------------------------------- subclass

    def _on_add_batch(self, start: int, vectors: np.ndarray) -> None:
        """Hook for subclasses: ``vectors`` were stored at ``start``..."""

    def _on_remove_batch(self, positions: np.ndarray) -> None:
        """Hook for subclasses: ``positions`` were just tombstoned."""

    def _rebuild(self) -> None:
        """Hook for subclasses: compaction renumbered every stored position,
        so position-keyed derived structures (buckets, inverted lists) must
        be rebuilt from the compacted store."""

    @abc.abstractmethod
    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        """Positions of candidate vectors to score (``None`` = score all).

        Implementations must exclude tombstoned positions (``_live``) before
        making any pool-size decisions such as the fall-back-to-exact check,
        so that a store with tombstones behaves exactly like a freshly built
        index over the same live vectors."""
