"""Common vector-index interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """A single nearest-neighbour hit."""

    key: Hashable
    distance: float


class VectorIndex(abc.ABC):
    """Maps user-provided keys to vectors and answers k-NN queries.

    Distances are squared Euclidean; since all embeddings produced by the
    representation models are L2-normalized, the ranking is equivalent to a
    cosine-similarity ranking.

    Vectors live in one contiguous ``float32`` matrix that grows
    geometrically, so both single and batched queries score candidates with
    vectorized slices of that matrix — no per-query re-stacking of Python
    lists.  Ties in distance break deterministically toward the candidate at
    the lowest scored position.

    Removal is tombstone-based: :meth:`remove_batch` marks positions dead,
    every search path excludes dead positions, and once the dead fraction
    exceeds ``compaction_fraction`` the store is compacted in place (the
    caller receives an old-position → new-position remap so any pools it
    holds can be rewritten).
    """

    #: Dead fraction of the store above which ``remove_batch`` compacts.
    compaction_fraction: float = 0.5

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self._dimension = dimension
        self._keys: List[Hashable] = []
        self._matrix = np.empty((0, dimension), dtype=np.float32)
        self._sq_norms = np.empty((0,), dtype=np.float32)
        self._alive = np.empty((0,), dtype=bool)
        self._size = 0
        self._n_dead = 0
        #: Memoized live-position array for full scans over a store with
        #: tombstones (None = stale; rebuilt on demand, invalidated by
        #: add/remove/compaction).
        self._live_scan: Optional[np.ndarray] = None

    # -------------------------------------------------------------- interface

    @property
    def dimension(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dimension

    def __len__(self) -> int:
        """Number of *live* (non-tombstoned) vectors."""
        return self._size - self._n_dead

    @property
    def n_tombstones(self) -> int:
        """Number of removed-but-not-yet-compacted positions."""
        return self._n_dead

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the stored vectors in insertion order.

        The view is a snapshot: it stops tracking the store once the backing
        matrix is reallocated by a later ``add``.  Rows tombstoned by
        :meth:`remove_batch` are still present until compaction.
        """
        view = self._matrix[: self._size]
        view.flags.writeable = False
        return view

    def add(self, key: Hashable, vector: np.ndarray) -> None:
        """Add one vector under ``key``."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self._dimension:
            raise ValueError(
                f"vector has dimension {vector.shape[0]}, index expects {self._dimension}"
            )
        self.add_batch([key], vector[None, :])

    def add_batch(self, keys: Sequence[Hashable], vectors: np.ndarray) -> None:
        """Add many vectors at once (one append plus one subclass hook)."""
        keys = list(keys)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            # A flat array is a single vector (for a single key), never a
            # concatenation to be split across keys.
            vectors = vectors[None, :] if keys else vectors.reshape(0, self._dimension)
        if vectors.ndim != 2 or vectors.shape[1] != self._dimension:
            raise ValueError(
                f"vectors have dimension {vectors.shape[-1] if vectors.ndim else 0}, "
                f"index expects {self._dimension}"
            )
        if vectors.shape[0] != len(keys):
            raise ValueError(f"{len(keys)} keys for {vectors.shape[0]} vectors")
        if not keys:
            return
        count = len(keys)
        self._ensure_capacity(count)
        start = self._size
        self._matrix[start : start + count] = vectors
        block = self._matrix[start : start + count]
        self._sq_norms[start : start + count] = np.einsum("ij,ij->i", block, block)
        self._alive[start : start + count] = True
        self._keys.extend(keys)
        self._size += count
        self._live_scan = None
        self._on_add_batch(start, block)

    def remove_batch(self, positions: Sequence[int]) -> Optional[np.ndarray]:
        """Tombstone the vectors stored at ``positions``.

        Tombstoned positions are excluded from every search path (full
        scans, subclass candidate pools, and caller-provided ``positions``
        pools).  Once the dead fraction of the store exceeds
        ``compaction_fraction`` the store is compacted: live vectors are
        renumbered contiguously and an ``int64`` remap array is returned
        with ``remap[old_position] == new_position`` (``-1`` for removed
        positions) so callers can rewrite any position pools they hold.
        Returns ``None`` when no compaction took place.
        """
        positions = np.asarray(list(positions), dtype=np.int64).reshape(-1)
        if positions.size == 0:
            return None
        if int(positions.min()) < 0 or int(positions.max()) >= self._size:
            raise IndexError(
                f"positions must be in [0, {self._size}), got range "
                f"[{int(positions.min())}, {int(positions.max())}]"
            )
        if np.unique(positions).size != positions.size:
            raise ValueError("duplicate positions in remove_batch")
        if not bool(np.all(self._alive[positions])):
            raise ValueError("remove_batch called on an already-removed position")
        self._alive[positions] = False
        self._n_dead += positions.size
        self._live_scan = None
        self._on_remove_batch(positions)
        if self._n_dead > self.compaction_fraction * self._size:
            return self._compact()
        return None

    def search(self, query: np.ndarray, k: int = 1) -> List[SearchResult]:
        """Return (up to) the ``k`` nearest stored vectors to ``query``."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self._dimension:
            raise ValueError(
                f"query has dimension {query.shape[0]}, index expects {self._dimension}"
            )
        return self.search_batch(query[None, :], k)[0]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        positions: Optional[np.ndarray] = None,
    ) -> List[List[SearchResult]]:
        """Batched k-NN: one result list per query row.

        ``positions`` restricts scoring to the given stored positions (the
        caller's candidate pool, e.g. the formulas of the sheets retrieved in
        an earlier stage); the whole batch is then scored against that pool
        with a single matrix product.  Without ``positions`` each query goes
        through the subclass's candidate selection (cluster probing, hash
        buckets, ...), still scored by vectorized slices.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dimension:
            raise ValueError(
                f"queries must have shape (n, {self._dimension}), got {queries.shape}"
            )
        n_queries = queries.shape[0]
        n_alive = self._size - self._n_dead
        if n_alive == 0 or k <= 0:
            return [[] for __ in range(n_queries)]
        if positions is not None:
            positions = self._live(np.asarray(positions, dtype=np.int64))
            if positions.size == 0:
                return [[] for __ in range(n_queries)]
            return self._score_block(queries, positions, k)
        results: List[Optional[List[SearchResult]]] = [None] * n_queries
        full_rows: List[int] = []
        for row in range(n_queries):
            candidates = self._candidates(queries[row], k)
            if candidates is None or candidates.size >= n_alive:
                full_rows.append(row)
            elif candidates.size == 0:
                results[row] = []
            else:
                results[row] = self._score_block(queries[row : row + 1], candidates, k)[0]
        if full_rows:
            scored = self._score_block(queries[np.asarray(full_rows)], None, k)
            for row, hits in zip(full_rows, scored):
                results[row] = hits
        return [hits if hits is not None else [] for hits in results]

    # --------------------------------------------------------------- internal

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2, 8)
        matrix = np.empty((new_capacity, self._dimension), dtype=np.float32)
        matrix[: self._size] = self._matrix[: self._size]
        self._matrix = matrix
        sq_norms = np.empty((new_capacity,), dtype=np.float32)
        sq_norms[: self._size] = self._sq_norms[: self._size]
        self._sq_norms = sq_norms
        alive = np.zeros((new_capacity,), dtype=bool)
        alive[: self._size] = self._alive[: self._size]
        self._alive = alive

    def _live(self, positions: np.ndarray) -> np.ndarray:
        """``positions`` with tombstoned entries dropped (order preserved)."""
        if self._n_dead == 0:
            return positions
        return positions[self._alive[positions]]

    def _compact(self) -> np.ndarray:
        """Drop tombstoned rows and renumber; returns the old→new remap."""
        live_positions = np.flatnonzero(self._alive[: self._size])
        remap = np.full(self._size, -1, dtype=np.int64)
        remap[live_positions] = np.arange(live_positions.size, dtype=np.int64)
        self._matrix = self._matrix[live_positions]
        self._sq_norms = self._sq_norms[live_positions]
        self._keys = [self._keys[int(position)] for position in live_positions]
        self._size = live_positions.size
        self._n_dead = 0
        self._alive = np.ones(self._size, dtype=bool)
        self._live_scan = None
        self._rebuild()
        return remap

    def _score_block(
        self, queries: np.ndarray, positions: Optional[np.ndarray], k: int
    ) -> List[List[SearchResult]]:
        """Score every query against the vectors at ``positions`` at once.

        ``positions=None`` scores against the whole store through the
        contiguous matrix view (no gather copy) — the full-scan hot path.
        With tombstones present the full scan gathers live rows instead.
        """
        if positions is None and self._n_dead:
            if self._live_scan is None:
                self._live_scan = np.flatnonzero(self._alive[: self._size])
            positions = self._live_scan
        if positions is None:
            matrix = self._matrix[: self._size]
            sq_norms = self._sq_norms[: self._size]
        else:
            matrix = self._matrix[positions]
            sq_norms = self._sq_norms[positions]
        # The cross term deliberately avoids BLAS (``queries @ matrix.T``):
        # sgemm picks different kernels — and different accumulation orders —
        # depending on operand shapes, so the same (query, vector) pair can
        # score a few ULPs apart in pools of different sizes.  Unoptimized
        # einsum accumulates each element in fixed order regardless of shape,
        # which is what lets a sharded corpus (scoring per-shard sub-pools)
        # reproduce a single index's distances bit-for-bit.
        distances = (
            sq_norms[None, :]
            - 2.0 * np.einsum("ij,kj->ik", queries, matrix)
            + np.einsum("ij,ij->i", queries, queries)[:, None]
        )
        np.maximum(distances, 0.0, out=distances)
        results: List[List[SearchResult]] = []
        for row in distances:
            order = np.argsort(row, kind="stable")[:k]
            results.append(
                [
                    SearchResult(
                        self._keys[int(i) if positions is None else int(positions[int(i)])],
                        float(row[int(i)]),
                    )
                    for i in order
                ]
            )
        return results

    # ------------------------------------------------------------- persistence

    def store_state(self) -> Dict[str, np.ndarray]:
        """The raw store, sized to ``_size``, for snapshot serialization.

        Keys are deliberately *not* included: they are caller-provided
        hashables whose encoding the owner of the index knows (stable sheet
        ids, ``(sheet id, local)`` pairs, ...), so the owner serializes
        them alongside these blocks.  ``sq_norms`` is persisted rather than
        recomputed on load — restored distances must be bit-identical to
        the live index's, and recomputation could differ in accumulation
        order.
        """
        return {
            "matrix": self._matrix[: self._size],
            "sq_norms": self._sq_norms[: self._size],
            "alive": self._alive[: self._size],
        }

    def restore_store(
        self,
        keys: Sequence[Hashable],
        matrix: np.ndarray,
        sq_norms: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        """Adopt a previously exported store (the snapshot-load path).

        ``matrix`` and ``sq_norms`` may be read-only memory-maps: every
        write path reallocates first (``_ensure_capacity`` copies on the
        next add because capacity equals size after a restore, and
        compaction gathers into a fresh array), so the mmap backing is
        never written through.  ``alive`` is copied because removals flip
        its entries in place.  Derived structures (inverted lists, hash
        buckets, quantizers) are rebuilt through the same ``_rebuild``
        hook compaction uses, which is what makes a restored index answer
        exactly like a freshly built one over the same live vectors.
        """
        matrix = np.asanyarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self._dimension:
            raise ValueError(
                f"restored matrix has shape {matrix.shape}, index expects "
                f"(n, {self._dimension})"
            )
        size = matrix.shape[0]
        if len(keys) != size or len(sq_norms) != size or len(alive) != size:
            raise ValueError(
                f"inconsistent restored store: {len(keys)} keys, {size} vectors, "
                f"{len(sq_norms)} norms, {len(alive)} liveness flags"
            )
        if matrix.dtype != np.float32:
            matrix = matrix.astype(np.float32)
        self._matrix = matrix
        self._sq_norms = np.asanyarray(sq_norms)
        if self._sq_norms.dtype != np.float32:
            self._sq_norms = self._sq_norms.astype(np.float32)
        self._alive = np.array(alive, dtype=bool)
        self._keys = list(keys)
        self._size = size
        self._n_dead = size - int(np.count_nonzero(self._alive))
        self._live_scan = None
        self._rebuild()

    # --------------------------------------------------------------- subclass

    def _on_add_batch(self, start: int, vectors: np.ndarray) -> None:
        """Hook for subclasses: ``vectors`` were stored at ``start``..."""

    def _on_remove_batch(self, positions: np.ndarray) -> None:
        """Hook for subclasses: ``positions`` were just tombstoned."""

    def _rebuild(self) -> None:
        """Hook for subclasses: compaction renumbered every stored position,
        so position-keyed derived structures (buckets, inverted lists) must
        be rebuilt from the compacted store."""

    @abc.abstractmethod
    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        """Positions of candidate vectors to score (``None`` = score all).

        Implementations must exclude tombstoned positions (``_live``) before
        making any pool-size decisions such as the fall-back-to-exact check,
        so that a store with tombstones behaves exactly like a freshly built
        index over the live vectors."""
