"""Brute-force exact nearest-neighbour index."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ann.base import VectorIndex


class ExactIndex(VectorIndex):
    """Scores every stored vector; exact but O(n) per query."""

    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        return None
