"""Brute-force exact nearest-neighbour index."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ann.base import VectorIndex


class ExactIndex(VectorIndex):
    """Scores every stored vector; exact but O(n) per query.

    Scoring-mode / storage keyword arguments are inherited from
    :class:`VectorIndex` — in ``two_tier`` mode even the "exact" index
    scans with tier-1 BLAS and re-ranks the guaranteed slice exactly.
    """

    def _candidates(self, query: np.ndarray, k: int) -> Optional[np.ndarray]:
        return None
