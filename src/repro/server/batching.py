"""The micro-batching serve loop: coalesce, dispatch, attribute.

One :class:`WorkspaceBatcher` runs per workspace.  Requests admitted by
the admission controller are appended to the workspace's ingress queue;
the batcher's collector task takes the first request, then keeps
collecting until either ``max_batch_size`` requests are in hand or
``max_batch_wait_s`` has elapsed since the batch opened, and dispatches
the whole batch as *one* ``workspace.serve_batch`` call on the shared
thread-pool executor.  Concurrently arriving requests for one workspace
therefore ride the engine's vectorized batch path (shared featurization
and retrieval) instead of paying per-request serving N times.

Dispatch does not block collection: each flush runs as its own task, so
while one batch executes in the pool the collector is already filling
the next (the workspace read-lock admits any number of concurrent
serves).  ``max_batch_size=1`` degenerates to one-request-at-a-time
serving — the benchmark baseline — with everything else unchanged.

Coalescing also enables *duplicate collapsing*: the sheet interner
content-addresses request sheets, so two wire requests carrying the same
sheet bytes and target cell resolve to one ``(sheet identity, cell)``
key.  A batch computes each distinct key once and fans the result out to
every duplicate (classic request coalescing, as in cache-stampede
protection) — sound here because serving is read-only and predictions
are a pure function of ``(corpus, sheet, cell)``.  Duplicates differ
only in their echoed ``request_id``.

Each response is resolved onto its request's future together with the
batch size it rode in and its queue wait, so latency attribution
(queue + amortized predictor share) survives coalescing.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import get_tracer
from repro.obs.tracing import Span
from repro.server.metrics import (
    ADMITTED_TO_BATCHER,
    COLLAPSED_DUPLICATES,
    COMPLETED_BY_BATCHER,
    SERVED,
    SERVER_ERRORS,
    ServerMetrics,
)
from repro.service.types import RecommendationRequest, RecommendationResponse

#: Queue sentinel that tells a collector task to finish and exit.
_STOP = object()

#: Reusable stand-in when a batch has no traced leader to host a span.
_NULL_CONTEXT = contextlib.nullcontext()


@dataclass(frozen=True)
class ServedResult:
    """One request's outcome, annotated with serving attribution."""

    response: RecommendationResponse
    batch_size: int
    queue_seconds: float


@dataclass
class _Pending:
    """A queued request and the future its connection awaits.

    ``span`` is the submitting request's active span, captured at submit
    time: ``run_in_executor`` does not copy the submitting context, so
    the batch's flush carries the trace context across the thread hop
    explicitly (the batch *leader*'s trace hosts the flush span; every
    rider's span is stamped with its batch attribution).
    """

    request: RecommendationRequest
    future: "asyncio.Future[ServedResult]"
    enqueued_at: float = field(default_factory=time.monotonic)
    span: Optional[Span] = None


class WorkspaceBatcher:
    """Coalesces one workspace's serving requests into engine batches."""

    def __init__(
        self,
        workspace,
        executor: Executor,
        metrics: ServerMetrics,
        max_batch_size: int = 16,
        max_batch_wait_s: float = 0.002,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_batch_wait_s < 0:
            raise ValueError("max_batch_wait_s must be non-negative")
        self.workspace = workspace
        self._executor = executor
        self._metrics = metrics
        self.max_batch_size = max_batch_size
        self.max_batch_wait_s = max_batch_wait_s
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._inflight: set = set()
        self._outstanding = 0
        self._collector: Optional[asyncio.Task] = None
        self._stopped = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start the collector task (idempotent)."""
        if self._collector is None:
            self._collector = asyncio.get_running_loop().create_task(self._run())

    def queue_depth(self) -> int:
        """Admitted requests not yet answered (queued + in-flight).

        This — not the raw queue size — is the backpressure signal the
        admission controller bounds: the collector pops the queue the
        moment it opens a batch, so raw queue size would read ~0 even
        with the executor saturated and batches stacked up behind it.
        """
        return self._outstanding

    async def drain(self) -> None:
        """Finish everything queued, then stop the collector.

        The caller must have stopped admission first; anything enqueued
        before the drain is still served, which is what makes shutdown
        graceful rather than request-dropping.
        """
        if self._stopped:
            return
        self._stopped = True
        self._queue.put_nowait(_STOP)
        if self._collector is not None:
            await self._collector
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    # --------------------------------------------------------------- ingress

    def submit(self, request: RecommendationRequest) -> "asyncio.Future[ServedResult]":
        """Enqueue one admitted request; resolves when its batch completes."""
        if self._stopped:
            raise RuntimeError("batcher is draining")
        future: "asyncio.Future[ServedResult]" = asyncio.get_running_loop().create_future()
        self._outstanding += 1
        self._metrics.count(ADMITTED_TO_BATCHER)
        self._queue.put_nowait(
            _Pending(
                request=request,
                future=future,
                span=get_tracer().current_span(),
            )
        )
        return future

    # ------------------------------------------------------------ collection

    async def _run(self) -> None:
        while True:
            head = await self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            stop_seen = await self._fill(batch)
            self._flush(batch)
            if stop_seen:
                return

    async def _fill(self, batch: List[_Pending]) -> bool:
        """Collect up to the batch cap within the coalescing window.

        Returns whether the stop sentinel was consumed while collecting
        (the current batch is still flushed — drain never drops work).
        """
        if self.max_batch_size == 1:
            return False
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_batch_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Window closed: sweep whatever is already queued, no wait.
                while len(batch) < self.max_batch_size and not self._queue.empty():
                    item = self._queue.get_nowait()
                    if item is _STOP:
                        return True
                    batch.append(item)
                return False
            try:
                item = await asyncio.wait_for(self._queue.get(), remaining)
            except asyncio.TimeoutError:
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    # ------------------------------------------------------------- dispatch

    def _flush(self, batch: List[_Pending]) -> None:
        task = asyncio.get_running_loop().create_task(self._execute(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _execute(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        # Collapse duplicates: requests whose sheet (interned, so identity
        # equals content) and cell coincide are computed once; everyone
        # else in the batch gets the shared result fanned back out.
        slot_of: Dict[tuple, int] = {}
        slots: List[int] = []
        requests: List[RecommendationRequest] = []
        for pending in batch:
            key = (id(pending.request.sheet), pending.request.cell.row, pending.request.cell.col)
            slot = slot_of.get(key)
            if slot is None:
                slot = slot_of[key] = len(requests)
                requests.append(pending.request)
            slots.append(slot)
        if len(requests) < len(batch):
            self._metrics.count(COLLAPSED_DUPLICATES, len(batch) - len(requests))
        dispatched_at = time.monotonic()
        self._metrics.observe_batch(len(batch))
        for pending in batch:
            queue_seconds = dispatched_at - pending.enqueued_at
            self._metrics.observe_queue_wait(queue_seconds)
            if pending.span is not None:
                pending.span.set_attribute("batch_size", len(batch))
                pending.span.set_attribute("queue_seconds", queue_seconds)

        # The flush span lives in the batch leader's trace: coalesced
        # riders each have their own trace, and a span can only nest in
        # one of them.  Riders carry batch_size/queue_seconds attributes
        # instead, which is enough to join against the leader's flush.
        tracer = get_tracer()
        leader_span = batch[0].span

        def _serve_in_leader_context() -> List[RecommendationResponse]:
            with tracer.attach(leader_span):
                with tracer.span(
                    "batch.flush",
                    batch_size=len(batch),
                    unique_requests=len(requests),
                ) if leader_span is not None else _NULL_CONTEXT:
                    return self.workspace.serve_batch(requests)

        try:
            responses = await loop.run_in_executor(
                self._executor, _serve_in_leader_context
            )
        except Exception as exc:
            self._metrics.count(SERVER_ERRORS, len(batch))
            for pending in batch:
                if not pending.future.cancelled():
                    pending.future.set_exception(exc)
            return
        finally:
            self._outstanding -= len(batch)
            self._metrics.count(COMPLETED_BY_BATCHER, len(batch))
        self._metrics.count(SERVED, len(batch))
        for pending, slot in zip(batch, slots):
            if pending.future.cancelled():
                continue
            response = responses[slot]
            if response.request is not pending.request:
                # A collapsed duplicate: same outcome, its own request echo.
                response = dataclasses.replace(response, request=pending.request)
            pending.future.set_result(
                ServedResult(
                    response=response,
                    batch_size=len(batch),
                    queue_seconds=dispatched_at - pending.enqueued_at,
                )
            )


class BatcherPool:
    """Lazily-created :class:`WorkspaceBatcher` per served workspace."""

    def __init__(
        self,
        executor: Executor,
        metrics: ServerMetrics,
        max_batch_size: int = 16,
        max_batch_wait_s: float = 0.002,
    ) -> None:
        self._executor = executor
        self._metrics = metrics
        self._max_batch_size = max_batch_size
        self._max_batch_wait_s = max_batch_wait_s
        self._batchers: Dict[str, WorkspaceBatcher] = {}

    def batcher_for(self, name: str, workspace) -> WorkspaceBatcher:
        batcher = self._batchers.get(name)
        if batcher is None or batcher.workspace is not workspace:
            batcher = WorkspaceBatcher(
                workspace,
                self._executor,
                self._metrics,
                max_batch_size=self._max_batch_size,
                max_batch_wait_s=self._max_batch_wait_s,
            )
            batcher.start()
            self._metrics.register_queue_gauge(name, batcher.queue_depth)
            self._batchers[name] = batcher
        return batcher

    def queue_depth(self, name: str) -> int:
        batcher = self._batchers.get(name)
        return batcher.queue_depth() if batcher is not None else 0

    async def drain_all(self) -> None:
        await asyncio.gather(*(batcher.drain() for batcher in self._batchers.values()))
