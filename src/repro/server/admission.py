"""Admission control: per-tenant rate limiting, backpressure, drain.

Every serving request passes through one :class:`AdmissionController`
before it may enter a workspace's ingress queue.  Three gates, in order:

1. **drain** — a draining server admits nothing new (HTTP 503 with a
   short ``Retry-After``), while already-queued requests finish;
2. **per-tenant token bucket** — sustained request rate per workspace is
   bounded (HTTP 429, ``Retry-After`` = time until the bucket refills
   enough), so one hot tenant cannot starve the rest;
3. **bounded ingress queue** — when a workspace's queue is at its limit
   the request is shed instead of queued (HTTP 503), keeping queueing
   delay bounded under overload (load-shedding beats unbounded latency).

The controller is pure policy: it never sleeps, never touches sockets,
and takes the clock as a parameter, so tests drive it deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class Rejection:
    """Why a request was refused, plus what the client should do about it.

    ``status`` is the HTTP status the protocol layer must answer with
    (429 for rate limiting, 503 for shed/drain) and ``retry_after_seconds``
    the value of the ``Retry-After`` header.
    """

    status: int
    reason: str
    retry_after_seconds: float


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s, burst capacity ``burst``.

    ``try_acquire`` either takes the tokens and returns ``None`` or leaves
    the bucket untouched and returns the seconds until enough tokens will
    have accumulated (the ``Retry-After`` hint).

    The refill watermark is *clamped*: it never moves backwards.  A clock
    that rewinds (an NTP step on a wall clock, a mocked clock in tests)
    must not make the bucket re-grant an interval it already credited —
    with an unclamped watermark, ``t=100 → t=0 → t=100`` would hand out
    ``100 * rate`` phantom tokens.  Time observably stands still until
    the clock passes the watermark again.  ``now`` defaults to
    ``clock()`` (:func:`time.monotonic` unless overridden), so direct
    callers get a non-rewinding clock without plumbing one.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last_refill: Optional[float] = None

    def try_acquire(self, now: Optional[float] = None, n: float = 1.0) -> Optional[float]:
        if now is None:
            now = self._clock()
        if self._last_refill is None:
            self._last_refill = now
        elif now > self._last_refill:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_refill) * self.rate
            )
            self._last_refill = now
        if self._tokens >= n:
            self._tokens -= n
            return None
        return (n - self._tokens) / self.rate


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission policy knobs (``None`` rate = no per-tenant limiting)."""

    #: Sustained per-tenant request rate (requests/second), or ``None``.
    rate_limit_per_tenant: Optional[float] = None
    #: Bucket capacity; defaults to one second's worth of rate (min 1).
    rate_limit_burst: Optional[float] = None
    #: Per-workspace ingress-queue bound (requests, not batches).
    queue_limit: int = 128
    #: ``Retry-After`` hint handed out while draining.
    drain_retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.rate_limit_per_tenant is not None and self.rate_limit_per_tenant <= 0:
            raise ValueError("rate_limit_per_tenant must be positive when set")


class AdmissionController:
    """Applies :class:`AdmissionConfig` to every incoming serving request."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._draining = False
        self._mutex = threading.Lock()

    @property
    def draining(self) -> bool:
        return self._draining

    def start_drain(self) -> None:
        """Flip into drain mode: all subsequent admissions are refused."""
        self._draining = True

    def admit(self, tenant: str, queue_depth: int, n: int = 1) -> Optional[Rejection]:
        """Admit ``n`` requests for ``tenant`` or say why not.

        ``queue_depth`` is the tenant's current ingress backlog; the caller
        samples it immediately before enqueueing (both happen on the event
        loop thread, so the check-then-enqueue pair cannot race).
        """
        if self._draining:
            return Rejection(
                status=503,
                reason="draining",
                retry_after_seconds=self.config.drain_retry_after_seconds,
            )
        rate = self.config.rate_limit_per_tenant
        if rate is not None:
            with self._mutex:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    burst = self.config.rate_limit_burst or max(rate, 1.0)
                    bucket = TokenBucket(rate, burst)
                    self._buckets[tenant] = bucket
                wait = bucket.try_acquire(self._clock(), float(n))
            if wait is not None:
                return Rejection(
                    status=429, reason="rate_limited", retry_after_seconds=wait
                )
        if queue_depth + n > self.config.queue_limit:
            return Rejection(
                status=503,
                reason="queue_full",
                retry_after_seconds=self.config.drain_retry_after_seconds,
            )
        return None
