"""The asyncio JSON-over-HTTP front-end of :class:`FormulaService`.

A deliberately small HTTP/1.1 server built directly on ``asyncio``
streams (stdlib only, keep-alive, ``Content-Length`` bodies) exposing
the serving layer over the wire:

==========  =========================================      ==============
method      path                                           meaning
==========  =========================================      ==============
GET         ``/health``                                    liveness + drain state
GET         ``/stats``                                     the full metrics snapshot
GET         ``/metrics``                                   Prometheus text exposition
GET         ``/traces``                                    recent + slow trace trees
POST        ``/v1/workspaces/{ws}/recommend``              one request or a batch
POST        ``/v1/workspaces/{ws}/edit-cell``              live single-cell edit
POST        ``/v1/workspaces/{ws}/workbooks``              add (index) workbooks
DELETE      ``/v1/workspaces/{ws}/workbooks/{name}``       remove a workbook
==========  =========================================      ==============

Every dispatched request runs under an ``http.request`` root span of the
process-global tracer (:mod:`repro.obs`): an incoming ``X-Trace-Id``
header seeds the trace id (so upstream callers and future process-shard
workers share one trace), the response always echoes ``X-Trace-Id``
back, and 4xx/5xx bodies carry ``trace_id`` so client-side failures are
joinable against the server-side trace.

Serving requests flow admission control → per-workspace micro-batcher →
``serve_batch`` on a thread-pool executor (see ``repro.server.batching``);
mutations run directly on the executor, serialized against serving by the
workspace's own reader-writer lock.  Rejections carry ``Retry-After``.

:func:`start_server_in_background` runs the whole event loop on a daemon
thread and hands back a :class:`ServerHandle` — the shape tests, examples
and benchmarks use: start, talk over real sockets, ``shutdown()`` (which
drains gracefully: queued requests finish, new ones get 503).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import get_tracer
from repro.server.admission import AdmissionConfig, AdmissionController
from repro.server.batching import BatcherPool
from repro.server.metrics import (
    ACCEPTED,
    REJECTED_DRAINING,
    REJECTED_QUEUE_FULL,
    REJECTED_RATE_LIMITED,
    SERVER_ERRORS,
    ServerMetrics,
)
from repro.server.schemas import (
    EditCellRequest,
    SchemaError,
    SheetInterner,
    decode_recommend_payload,
    decode_workbooks_payload,
    encode_error,
    encode_recalc_report,
    encode_response,
)
from repro.service.facade import FormulaService

_REASON_COUNTERS = {
    "rate_limited": REJECTED_RATE_LIMITED,
    "queue_full": REJECTED_QUEUE_FULL,
    "draining": REJECTED_DRAINING,
}

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about the serving front-end."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``ServerHandle.port``).
    port: int = 0
    #: Coalescing cap: requests per ``serve_batch`` dispatch (1 = off).
    max_batch_size: int = 16
    #: Coalescing window: how long an open batch waits for company.
    max_batch_wait_s: float = 0.002
    #: Admission policy (queue bound, per-tenant rate limit, drain hint).
    admission: AdmissionConfig = AdmissionConfig()
    #: Thread-pool width for serve/mutation execution.
    executor_workers: int = 4
    #: Interned-sheet cache entries (content-addressed request sheets).
    sheet_cache_entries: int = 256
    #: Hard cap on request bodies (a workbook corpus can be sizeable).
    max_body_bytes: int = 32 * 1024 * 1024
    #: Budget :meth:`FormulaServer.stop` allows the drain before closing.
    drain_timeout_s: float = 10.0
    #: Index scoring architecture override ("deterministic"/"two_tier");
    #: ``None`` keeps the service's own config.  Applied via
    #: :meth:`FormulaService.configure_scoring` at server construction, so
    #: it affects workspaces created through the server's endpoints.
    scoring_mode: Optional[str] = None
    #: Tier-1 scan store dtype override ("float32"/"float16"/"int8");
    #: ``None`` keeps the service's own config.
    storage_dtype: Optional[str] = None
    #: Enable request tracing (the process-global ``repro.obs`` tracer is
    #: configured from these knobs at server construction).
    tracing_enabled: bool = True
    #: Fraction of traces admitted to the sampled ring (systematic 1-in-N;
    #: slow traces are always captured regardless).
    trace_sample_rate: float = 1.0
    #: Root spans at least this slow land in the always-capture slow log
    #: (0 disables slow capture).
    slow_trace_threshold_s: float = 0.25


@dataclass(frozen=True)
class _HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool


class _HttpError(Exception):
    """Protocol-level failure answered without reaching a route handler."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.status = status
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class _RawBody:
    """A non-JSON response body (the Prometheus text exposition)."""

    text: str
    content_type: str = "text/plain; charset=utf-8"


class FormulaServer:
    """Serves one :class:`FormulaService` over JSON/HTTP (see module doc)."""

    def __init__(self, service: FormulaService, config: Optional[ServerConfig] = None) -> None:
        self.service = service
        self.config = config or ServerConfig()
        if self.config.scoring_mode is not None or self.config.storage_dtype is not None:
            service.configure_scoring(
                scoring_mode=self.config.scoring_mode,
                storage_dtype=self.config.storage_dtype,
            )
        self.metrics = ServerMetrics()
        self.tracer = get_tracer().configure(
            enabled=self.config.tracing_enabled,
            sample_rate=self.config.trace_sample_rate,
            slow_threshold_s=self.config.slow_trace_threshold_s,
        )
        self.admission = AdmissionController(self.config.admission)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers, thread_name_prefix="repro-serve"
        )
        self._batchers = BatcherPool(
            self._executor,
            self.metrics,
            max_batch_size=self.config.max_batch_size,
            max_batch_wait_s=self.config.max_batch_wait_s,
        )
        self._interner = SheetInterner(self.config.sheet_cache_entries)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._started_at = time.monotonic()

    # -------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, finish queued work, close.

        With ``drain=False`` queued requests are abandoned along with
        their connections (crash-stop semantics, for tests).
        """
        self.admission.start_drain()
        if drain:
            try:
                await asyncio.wait_for(
                    self._batchers.drain_all(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            # Handlers whose batch just completed still need a few loop
            # passes to write their responses before transports close.
            await asyncio.sleep(0.05)
        # Kept-alive connections idle in a read; close their transports so
        # the handler tasks unwind before the loop goes away.
        for writer in list(self._connections):
            writer.close()
        for __ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=drain)

    # ------------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, encode_error(exc.reason, exc.detail), {}, False
                    )
                    break
                if request is None:
                    break
                status, body, headers = await self._dispatch(request)
                await self._write_response(writer, status, body, headers, request.keep_alive)
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_HttpRequest]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between keep-alive requests
            raise _HttpError(400, "bad_request", "truncated request head")
        except asyncio.LimitOverrunError:
            raise _HttpError(400, "bad_request", "request head too large")
        try:
            head = header_blob.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, path, version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "bad_request", "malformed request line")
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            content_length = int(length_text)
        except ValueError:
            raise _HttpError(400, "bad_request", f"bad Content-Length {length_text!r}")
        if content_length < 0:
            raise _HttpError(400, "bad_request", "negative Content-Length")
        if content_length > self.config.max_body_bytes:
            raise _HttpError(413, "payload_too_large", f"body exceeds {self.config.max_body_bytes} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        keep_alive = headers.get("connection", "").lower() != "close" and version != "HTTP/1.0"
        return _HttpRequest(
            method=method.upper(), path=path, headers=headers, body=body, keep_alive=keep_alive
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, object],
        headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        if isinstance(body, _RawBody):
            payload = body.text.encode("utf-8")
            content_type = body.content_type
        else:
            payload = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()

    # ---------------------------------------------------------------- routing

    async def _dispatch(
        self, request: _HttpRequest
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """Trace wrapper around :meth:`_route`.

        Opens the ``http.request`` root span (seeded from an incoming
        ``X-Trace-Id``, if any), stamps endpoint/status attributes, echoes
        the trace id on the response and into 4xx/5xx bodies.
        """
        trace_header = request.headers.get("x-trace-id") or None
        with self.tracer.span(
            "http.request",
            trace_id=trace_header,
            method=request.method,
            path=request.path,
        ) as span:
            status, body, headers = await self._route(request, span)
            span.set_attribute("status", status)
            trace = span.trace
            if trace is not None:
                headers = dict(headers)
                headers.setdefault("X-Trace-Id", trace.trace_id)
                if status >= 400 and isinstance(body, dict):
                    body.setdefault("trace_id", trace.trace_id)
            return status, body, headers

    async def _route(
        self, request: _HttpRequest, span
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        started = time.perf_counter()
        endpoint = "unknown"
        try:
            segments = [segment for segment in request.path.split("?")[0].split("/") if segment]
            if segments == ["health"] and request.method == "GET":
                endpoint = "health"
                return 200, self._health_body(), {}
            if segments == ["stats"] and request.method == "GET":
                endpoint = "stats"
                return 200, self._stats_body(), {}
            if segments == ["metrics"] and request.method == "GET":
                endpoint = "metrics"
                return (
                    200,
                    _RawBody(
                        self.metrics.registry.render_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    ),
                    {},
                )
            if segments == ["traces"] and request.method == "GET":
                endpoint = "traces"
                return 200, self._traces_body(), {}
            if len(segments) >= 3 and segments[0] == "v1" and segments[1] == "workspaces":
                workspace_name = segments[2]
                tail = segments[3:]
                if tail == ["recommend"] and request.method == "POST":
                    endpoint = "recommend"
                    return await self._handle_recommend(workspace_name, request)
                if tail == ["edit-cell"] and request.method == "POST":
                    endpoint = "edit_cell"
                    return await self._handle_edit_cell(workspace_name, request)
                if tail == ["workbooks"] and request.method == "POST":
                    endpoint = "add_workbooks"
                    return await self._handle_add_workbooks(workspace_name, request)
                if len(tail) == 2 and tail[0] == "workbooks" and request.method == "DELETE":
                    endpoint = "remove_workbook"
                    return await self._handle_remove_workbook(workspace_name, tail[1])
            return 404, encode_error("not_found", f"no route for {request.method} {request.path}"), {}
        except SchemaError as exc:
            return 400, encode_error("schema_error", str(exc)), {}
        except KeyError as exc:
            return 404, encode_error("not_found", f"unknown resource: {exc}"), {}
        except ValueError as exc:
            return 400, encode_error("invalid_request", str(exc)), {}
        except Exception as exc:  # pragma: no cover - defensive 500 path
            self.metrics.count(SERVER_ERRORS)
            return 500, encode_error("internal_error", f"{type(exc).__name__}: {exc}"), {}
        finally:
            span.set_attribute("endpoint", endpoint)
            self.metrics.record_endpoint(endpoint, time.perf_counter() - started)

    def _parse_json(self, request: _HttpRequest) -> object:
        if not request.body:
            raise SchemaError("request body is required")
        try:
            return json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"body is not valid JSON: {exc}") from exc

    def _workspace(self, name: str):
        try:
            return self.service.workspace(name)
        except KeyError:
            raise KeyError(f"workspace {name!r}")

    # --------------------------------------------------------------- handlers

    async def _handle_recommend(
        self, workspace_name: str, request: _HttpRequest
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        workspace = self._workspace(workspace_name)
        requests, single = decode_recommend_payload(self._parse_json(request), self._interner)
        rejection = self.admission.admit(
            workspace_name, self._batchers.queue_depth(workspace_name), n=len(requests)
        )
        if rejection is not None:
            self.metrics.count(_REASON_COUNTERS.get(rejection.reason, rejection.reason), len(requests))
            return (
                rejection.status,
                encode_error(rejection.reason, retry_after=rejection.retry_after_seconds),
                {"Retry-After": f"{max(rejection.retry_after_seconds, 0.0):.3f}"},
            )
        self.metrics.count(ACCEPTED, len(requests))
        batcher = self._batchers.batcher_for(workspace_name, workspace)
        futures = [batcher.submit(req) for req in requests]
        results = await asyncio.gather(*futures)
        encoded = [
            encode_response(result.response, result.batch_size, result.queue_seconds)
            for result in results
        ]
        if single:
            return 200, encoded[0], {}
        return 200, {"responses": encoded}, {}

    async def _handle_edit_cell(
        self, workspace_name: str, request: _HttpRequest
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        workspace = self._workspace(workspace_name)
        edit = EditCellRequest.from_wire(self._parse_json(request))
        loop = asyncio.get_running_loop()

        def apply_edit():
            if edit.formula is not None:
                return workspace.edit_cell(edit.workbook, edit.sheet, edit.cell, formula=edit.formula)
            return workspace.edit_cell(edit.workbook, edit.sheet, edit.cell, value=edit.value)

        report = await loop.run_in_executor(self._executor, apply_edit)
        return 200, {"workspace": workspace_name, "recalc": encode_recalc_report(report)}, {}

    async def _handle_add_workbooks(
        self, workspace_name: str, request: _HttpRequest
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        workspace = self._workspace(workspace_name)
        workbooks = decode_workbooks_payload(self._parse_json(request))
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._executor, workspace.add_workbooks, workbooks)
        except ValueError as exc:
            # Duplicate workbook names are a conflict, not a malformed body.
            return 409, encode_error("conflict", str(exc)), {}
        return (
            200,
            {
                "workspace": workspace_name,
                "added": [workbook.name for workbook in workbooks],
                "indexed_workbooks": len(workspace),
            },
            {},
        )

    async def _handle_remove_workbook(
        self, workspace_name: str, workbook_name: str
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        workspace = self._workspace(workspace_name)
        loop = asyncio.get_running_loop()

        def remove():
            try:
                workspace.remove_workbook(workbook_name)
                return True
            except KeyError:
                return False

        removed = await loop.run_in_executor(self._executor, remove)
        if not removed:
            return 404, encode_error("not_found", f"workbook {workbook_name!r} is not indexed"), {}
        return (
            200,
            {
                "workspace": workspace_name,
                "removed": workbook_name,
                "indexed_workbooks": len(workspace),
            },
            {},
        )

    # ------------------------------------------------------------- read-onlys

    def _health_body(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "workspaces": self.service.workspace_names(),
        }

    def _stats_body(self) -> Dict[str, object]:
        # Memory gauges are (re-)registered lazily: workspaces appear and
        # disappear through the service API, and registration by name is
        # idempotent, so /stats always reports the current registry.
        names = self.service.workspace_names()
        for name in names:
            workspace = self.service.workspace(name)
            stats = getattr(workspace, "memory_stats", None)
            if stats is not None:
                self.metrics.register_memory_gauge(name, stats)
            # Adopt the workspace's serving-latency recorder into the
            # registry so /metrics exposes it without double recording.
            recorder = getattr(workspace, "latency", None)
            if recorder is not None:
                self.metrics.registry.histogram(
                    "workspace.latency", labels={"workspace": name}, recorder=recorder
                )
        self.metrics.prune_memory_gauges(names)
        body = self.metrics.snapshot()
        body["tracing"] = self.tracer.stats()
        body["sheet_cache"] = {
            "entries": len(self._interner),
            "hits": self._interner.hits,
            "misses": self._interner.misses,
        }
        body["workspaces"] = {
            name: self.service.workspace(name).latency.summary()
            for name in self.service.workspace_names()
        }
        scoring = self.service.effective_config
        body["config"] = {
            "max_batch_size": self.config.max_batch_size,
            "max_batch_wait_s": self.config.max_batch_wait_s,
            "queue_limit": self.config.admission.queue_limit,
            "rate_limit_per_tenant": self.config.admission.rate_limit_per_tenant,
            "scoring_mode": scoring.scoring_mode,
            "storage_dtype": scoring.storage_dtype,
            "reuse_query_embeddings": scoring.reuse_query_embeddings,
            "collapse_duplicate_cells": scoring.collapse_duplicate_cells,
        }
        return body

    def _traces_body(self) -> Dict[str, object]:
        """Recent (sampled) and slow traces as JSON trees plus config."""
        return {
            "recent": self.tracer.recent_traces(),
            "slow": self.tracer.slow_traces(),
            "stats": self.tracer.stats(),
        }


# ------------------------------------------------------------------ threaded


class ServerHandle:
    """A running server on a background event-loop thread.

    Context-manager friendly::

        with start_server_in_background(service) as handle:
            client = FormulaClient("127.0.0.1", handle.port)
            ...
        # exiting drains gracefully and joins the thread
    """

    def __init__(self, server: FormulaServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run_coroutine(self, coroutine, timeout: Optional[float] = 30.0):
        """Run a coroutine on the server's loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Drain (optionally), close the server, stop the loop, join."""
        if self._stopped:
            return
        self._stopped = True
        asyncio.run_coroutine_threadsafe(self.server.stop(drain=drain), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def start_server_in_background(
    service: FormulaService, config: Optional[ServerConfig] = None
) -> ServerHandle:
    """Start a :class:`FormulaServer` on a daemon thread; returns its handle.

    Blocks until the listening socket is bound, so ``handle.port`` is
    immediately valid (bind failures re-raise here, on the caller).
    """
    server = FormulaServer(service, config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-server", daemon=True)
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
