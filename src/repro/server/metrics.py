"""Server observability: admission counters, batch shape, queue depth.

One :class:`ServerMetrics` instance per server fronts everything the
``/stats`` endpoint reports, but since PR 10 it is a thin facade over a
:class:`repro.obs.MetricsRegistry` — every counter, gauge and histogram
lives in the registry's dotted-name tree, so the same instruments feed
``/stats`` (via :meth:`snapshot`), the Prometheus ``/metrics``
exposition (via ``registry.render_prometheus()``) and ad-hoc debugging
through ``registry.snapshot()``:

* admission counters (``server.<key>``) — accepted / rejected (by
  reason) / shed-on-drain / served / errored requests;
* the micro-batcher's batch-size distribution (labeled counter
  ``server.batch_size{size=N}``) and the derived *coalescing ratio*
  (requests served per ``serve_batch`` dispatch);
* an **in-flight gauge** (``server.inflight``): requests admitted to a
  batcher minus requests completed.  The old per-batcher "queue depth"
  read ``qsize()`` which was always ~0 because the collector pops
  immediately; admitted-minus-completed counts work that has been
  accepted but whose future has not resolved, which is the number an
  operator actually wants under a stalled flush;
* per-endpoint wall-clock latency as registry histograms
  (``server.endpoint{endpoint=...}``) backed by bounded-memory
  reservoir :class:`~repro.evaluation.latency.LatencyRecorder`
  instances — the serving front-end and the offline benchmarks report
  latency through one code path.

Counters are touched from the event loop *and* from executor threads
(batch completion); the registry's instruments are individually
mutex-guarded so no shared big lock is needed.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence

from repro.evaluation.latency import LatencyRecorder
from repro.obs import Histogram, MetricsRegistry

#: Counter keys with defined meanings (others may be counted ad hoc).
ACCEPTED = "accepted"
SERVED = "served"
REJECTED_RATE_LIMITED = "rejected_rate_limited"
REJECTED_QUEUE_FULL = "rejected_queue_full"
REJECTED_DRAINING = "rejected_draining"
SERVER_ERRORS = "server_errors"
BATCHES = "batches"
BATCHED_REQUESTS = "batched_requests"
COLLAPSED_DUPLICATES = "collapsed_duplicates"

#: In-flight accounting (satellite: the true queue-depth fix).
ADMITTED_TO_BATCHER = "batch_admitted"
COMPLETED_BY_BATCHER = "batch_completed"


class ServerMetrics:
    """Thread-safe aggregate of the serving front-end's vital signs."""

    def __init__(
        self,
        latency_window: int = 8192,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._mutex = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._latency_window = latency_window
        # Key sets drive snapshot() shape; values always come from the
        # registry so there is exactly one copy of every number.
        self._counter_keys = set()
        self._queue_gauge_names = set()
        self._memory_gauges: Dict[str, Callable[[], Dict[str, object]]] = {}
        self._queue_wait = self.registry.histogram(
            "server.queue_wait", reservoir_size=latency_window
        )
        self.registry.gauge(
            "server.inflight",
            fn=lambda: self.counter(ADMITTED_TO_BATCHER)
            - self.counter(COMPLETED_BY_BATCHER),
        )

    # ------------------------------------------------------------- recording

    def count(self, key: str, n: int = 1) -> None:
        with self._mutex:
            self._counter_keys.add(key)
        self.registry.counter(f"server.{key}").inc(n)

    def counter(self, key: str) -> int:
        return self.registry.counter_value(f"server.{key}")

    def observe_batch(self, size: int) -> None:
        """One ``serve_batch`` dispatch that carried ``size`` requests."""
        self.count(BATCHES)
        self.count(BATCHED_REQUESTS, size)
        self.registry.counter("server.batch_size", labels={"size": str(size)}).inc()

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(max(seconds, 0.0))

    def endpoint_recorder(self, endpoint: str) -> Histogram:
        """The (lazily created) latency histogram for one endpoint label."""
        return self.registry.histogram(
            "server.endpoint",
            labels={"endpoint": endpoint},
            reservoir_size=self._latency_window,
        )

    def record_endpoint(self, endpoint: str, seconds: float) -> None:
        self.endpoint_recorder(endpoint).observe(max(seconds, 0.0))

    def register_queue_gauge(self, name: str, depth: Callable[[], int]) -> None:
        """Register a live in-flight-depth callback (one per workspace batcher).

        The callback should report *admitted minus completed* (see
        :meth:`repro.server.batching.WorkspaceBatcher.queue_depth`), not a
        raw queue ``qsize`` — the collector pops eagerly so ``qsize`` is
        ~0 even while dozens of requests sit in a stalled flush.
        """
        with self._mutex:
            self._queue_gauge_names.add(name)
        self.registry.gauge(
            "server.queue_depth", labels={"workspace": name}, fn=depth
        )

    def register_memory_gauge(
        self, name: str, stats: Callable[[], Dict[str, object]]
    ) -> None:
        """Register an index-memory-footprint callback (one per workspace).

        The callback returns a JSON-ready dict (see
        :meth:`repro.service.workspace.Workspace.memory_stats` — bytes by
        array/dtype, tombstone overhead, quantization savings) and is
        sampled at snapshot time so ``/stats`` reports the live footprint.
        A scalar ``workspace.index_bytes{workspace=...}`` gauge mirrors
        the ``total_bytes`` field into the registry for Prometheus.
        Re-registering a name replaces the callback.
        """
        with self._mutex:
            self._memory_gauges[name] = stats

        def total_bytes() -> int:
            return int(stats().get("total_bytes", 0))  # type: ignore[call-overload]

        self.registry.gauge(
            "workspace.index_bytes", labels={"workspace": name}, fn=total_bytes
        )

    def prune_memory_gauges(self, keep: Sequence[str]) -> None:
        """Drop memory gauges for workspaces that no longer exist."""
        keep_set = set(keep)
        with self._mutex:
            stale = [name for name in self._memory_gauges if name not in keep_set]
            for name in stale:
                del self._memory_gauges[name]
        for name in stale:
            self.registry.remove("workspace.index_bytes", labels={"workspace": name})

    # ------------------------------------------------------------- reporting

    @property
    def coalescing_ratio(self) -> float:
        """Mean requests per dispatched batch (0.0 before the first batch)."""
        batches = self.counter(BATCHES)
        if not batches:
            return 0.0
        return self.counter(BATCHED_REQUESTS) / batches

    def inflight(self) -> int:
        """Requests admitted to batchers whose futures have not resolved."""
        return self.counter(ADMITTED_TO_BATCHER) - self.counter(COMPLETED_BY_BATCHER)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of every metric (the ``/stats`` body)."""
        with self._mutex:
            counter_keys = sorted(self._counter_keys)
            gauge_names = sorted(self._queue_gauge_names)
            memory_gauges = dict(self._memory_gauges)
        counters = {key: self.counter(key) for key in counter_keys}
        batch_sizes = {
            labels[0][1]: count
            for labels, count in self.registry.counter_values("server.batch_size").items()
        }
        batch_sizes = {
            size: batch_sizes[size] for size in sorted(batch_sizes, key=int)
        }
        depths = {
            labels[0][1]: int(value)
            for labels, value in self.registry.gauge_values("server.queue_depth").items()
        }
        batches = counters.get(BATCHES, 0)
        coalescing = counters.get(BATCHED_REQUESTS, 0) / batches if batches else 0.0
        return {
            "counters": counters,
            "batch_size_histogram": batch_sizes,
            "coalescing_ratio": coalescing,
            "queue_depths": {name: depths.get(name, 0) for name in gauge_names},
            "in_flight": self.inflight(),
            "queue_wait": self._queue_wait.summary(),
            "index_memory": {name: stats() for name, stats in memory_gauges.items()},
            "endpoints": self._endpoint_summaries(),
        }

    def _endpoint_summaries(self) -> Dict[str, Dict[str, float]]:
        snapshot = self.registry.snapshot()
        server_tree = snapshot.get("server", {})
        endpoint_tree = server_tree.get("endpoint", {}) if isinstance(server_tree, dict) else {}
        summaries: Dict[str, Dict[str, float]] = {}
        if isinstance(endpoint_tree, dict):
            for label_text, summary in endpoint_tree.items():
                # label_text looks like "endpoint=recommend".
                name = label_text.split("=", 1)[1] if "=" in label_text else label_text
                summaries[name] = summary
        return summaries
