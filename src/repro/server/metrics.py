"""Server observability: admission counters, batch shape, queue depth.

One :class:`ServerMetrics` instance per server aggregates everything the
``/stats`` endpoint reports:

* admission counters — accepted / rejected (by reason) / shed-on-drain /
  served / errored requests;
* the micro-batcher's batch-size histogram and the derived *coalescing
  ratio* (requests served per ``serve_batch`` dispatch — 1.0 means no
  coalescing happened, N means N requests amortized one dispatch);
* queue-depth gauges, registered per workspace batcher and sampled at
  snapshot time, so ``/stats`` shows live backlog;
* per-endpoint wall-clock latency, recorded on
  :class:`~repro.evaluation.latency.LatencyRecorder` instances whose
  :meth:`~repro.evaluation.latency.LatencyRecorder.summary` (count /
  window_count / p50 / p95 / p99 / max, the percentiles window-scoped
  and ``window_count`` saying over how many samples) is reused verbatim
  — the serving front-end and
  the offline benchmarks report latency through one code path.

Counters are touched from the event loop *and* from executor threads
(batch completion), so all mutation goes through one mutex.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable, Dict, Sequence

from repro.evaluation.latency import LatencyRecorder

#: Counter keys with defined meanings (others may be counted ad hoc).
ACCEPTED = "accepted"
SERVED = "served"
REJECTED_RATE_LIMITED = "rejected_rate_limited"
REJECTED_QUEUE_FULL = "rejected_queue_full"
REJECTED_DRAINING = "rejected_draining"
SERVER_ERRORS = "server_errors"
BATCHES = "batches"
BATCHED_REQUESTS = "batched_requests"
COLLAPSED_DUPLICATES = "collapsed_duplicates"


class ServerMetrics:
    """Thread-safe aggregate of the serving front-end's vital signs."""

    def __init__(self, latency_window: int = 8192) -> None:
        self._mutex = threading.Lock()
        self._counters: Counter = Counter()
        self._batch_sizes: Counter = Counter()
        self._latency_window = latency_window
        self._endpoints: Dict[str, LatencyRecorder] = {}
        self._queue_wait = LatencyRecorder(window_size=latency_window)
        self._queue_gauges: Dict[str, Callable[[], int]] = {}
        self._memory_gauges: Dict[str, Callable[[], Dict[str, object]]] = {}

    # ------------------------------------------------------------- recording

    def count(self, key: str, n: int = 1) -> None:
        with self._mutex:
            self._counters[key] += n

    def counter(self, key: str) -> int:
        with self._mutex:
            return self._counters[key]

    def observe_batch(self, size: int) -> None:
        """One ``serve_batch`` dispatch that carried ``size`` requests."""
        with self._mutex:
            self._counters[BATCHES] += 1
            self._counters[BATCHED_REQUESTS] += size
            self._batch_sizes[size] += 1

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.record(max(seconds, 0.0))

    def endpoint_recorder(self, endpoint: str) -> LatencyRecorder:
        """The (lazily created) latency recorder for one endpoint label."""
        with self._mutex:
            recorder = self._endpoints.get(endpoint)
            if recorder is None:
                recorder = LatencyRecorder(window_size=self._latency_window)
                self._endpoints[endpoint] = recorder
            return recorder

    def record_endpoint(self, endpoint: str, seconds: float) -> None:
        self.endpoint_recorder(endpoint).record(max(seconds, 0.0))

    def register_queue_gauge(self, name: str, depth: Callable[[], int]) -> None:
        """Register a live queue-depth callback (one per workspace batcher)."""
        with self._mutex:
            self._queue_gauges[name] = depth

    def register_memory_gauge(
        self, name: str, stats: Callable[[], Dict[str, object]]
    ) -> None:
        """Register an index-memory-footprint callback (one per workspace).

        The callback returns a JSON-ready dict (see
        :meth:`repro.service.workspace.Workspace.memory_stats` — bytes by
        array/dtype, tombstone overhead, quantization savings) and is
        sampled at snapshot time so ``/stats`` reports the live footprint.
        Re-registering a name replaces the callback.
        """
        with self._mutex:
            self._memory_gauges[name] = stats

    def prune_memory_gauges(self, keep: Sequence[str]) -> None:
        """Drop memory gauges for workspaces that no longer exist."""
        keep_set = set(keep)
        with self._mutex:
            for name in [name for name in self._memory_gauges if name not in keep_set]:
                del self._memory_gauges[name]

    # ------------------------------------------------------------- reporting

    @property
    def coalescing_ratio(self) -> float:
        """Mean requests per dispatched batch (0.0 before the first batch)."""
        with self._mutex:
            batches = self._counters[BATCHES]
            if not batches:
                return 0.0
            return self._counters[BATCHED_REQUESTS] / batches

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of every metric (the ``/stats`` body)."""
        with self._mutex:
            counters = dict(self._counters)
            batch_sizes = {str(size): count for size, count in sorted(self._batch_sizes.items())}
            gauges = dict(self._queue_gauges)
            memory_gauges = dict(self._memory_gauges)
            endpoints = dict(self._endpoints)
        batches = counters.get(BATCHES, 0)
        coalescing = counters.get(BATCHED_REQUESTS, 0) / batches if batches else 0.0
        return {
            "counters": counters,
            "batch_size_histogram": batch_sizes,
            "coalescing_ratio": coalescing,
            "queue_depths": {name: int(depth()) for name, depth in gauges.items()},
            "queue_wait": self._queue_wait.summary(),
            "index_memory": {name: stats() for name, stats in memory_gauges.items()},
            "endpoints": {name: recorder.summary() for name, recorder in endpoints.items()},
        }
