"""Clients for the serving front-end: blocking, async, and a swarm driver.

:class:`FormulaClient` is the ergonomic blocking client (stdlib
``http.client``, keep-alive) used by examples and tests.
:class:`AsyncFormulaClient` speaks the same protocol over ``asyncio``
streams; :func:`run_client_swarm` drives N of them concurrently against
one endpoint and reports wall-clock, per-request latencies and status
codes — the measurement harness behind the coalesced-vs-sequential
serving benchmark (``benchmarks/test_fig_serving.py``) and the CI smoke
test.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.evaluation.latency import LatencyRecorder
from repro.sheet.io import sheet_to_dict, workbook_to_dict
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

SheetLike = Union[Sheet, Dict[str, object]]


def _sheet_payload(sheet: SheetLike) -> Dict[str, object]:
    return sheet_to_dict(sheet) if isinstance(sheet, Sheet) else sheet


class ServerError(RuntimeError):
    """A non-2xx answer from the server, with its decoded error body."""

    def __init__(self, status: int, body: Dict[str, object], retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', 'unknown')}")
        self.status = status
        self.body = body
        self.retry_after = retry_after
        self.trace_id: Optional[str] = body.get("trace_id")  # type: ignore[assignment]


class FormulaClient:
    """Blocking JSON/HTTP client for one server (keep-alive connection)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ----------------------------------------------------------------- plumbing

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "FormulaClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """One round trip; returns (status, headers, decoded JSON body)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        connection = self._connect()
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # The server may have closed a kept-alive connection (drain,
            # restart); retry once on a fresh one before giving up.
            self.close()
            connection = self._connect()
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, dict(response.getheaders()), decoded

    def _checked(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        trace_id: Optional[str] = None,
    ):
        status, headers, decoded = self.request(method, path, body, trace_id=trace_id)
        if status != 200:
            retry_after = headers.get("Retry-After")
            raise ServerError(status, decoded, float(retry_after) if retry_after else None)
        return decoded

    # ---------------------------------------------------------------- endpoints

    def health(self) -> Dict[str, object]:
        return self._checked("GET", "/health")

    def stats(self) -> Dict[str, object]:
        return self._checked("GET", "/stats")

    def traces(self) -> Dict[str, object]:
        """Recent + slow trace trees and tracer stats (``GET /traces``)."""
        return self._checked("GET", "/traces")

    def metrics_text(self) -> str:
        """The Prometheus exposition body (``GET /metrics``), as text."""
        connection = self._connect()
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            connection = self._connect()
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
        if response.status != 200:
            raise ServerError(response.status, {"error": raw.decode("utf-8", "replace")})
        return raw.decode("utf-8")

    def recommend(
        self,
        workspace: str,
        sheet: SheetLike,
        cell: str,
        request_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"sheet": _sheet_payload(sheet), "cell": cell}
        if request_id is not None:
            body["request_id"] = request_id
        return self._checked(
            "POST", f"/v1/workspaces/{workspace}/recommend", body, trace_id=trace_id
        )

    def recommend_batch(
        self, workspace: str, items: Sequence[Tuple[SheetLike, str]]
    ) -> List[Dict[str, object]]:
        body = {
            "requests": [
                {"sheet": _sheet_payload(sheet), "cell": cell} for sheet, cell in items
            ]
        }
        return self._checked("POST", f"/v1/workspaces/{workspace}/recommend", body)["responses"]

    def edit_cell(
        self,
        workspace: str,
        workbook: str,
        sheet: str,
        cell: str,
        value: object = None,
        formula: Optional[str] = None,
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"workbook": workbook, "sheet": sheet, "cell": cell}
        if formula is not None:
            body["formula"] = formula
        else:
            body["value"] = value
        return self._checked("POST", f"/v1/workspaces/{workspace}/edit-cell", body)

    def add_workbooks(self, workspace: str, workbooks: Sequence[Workbook]) -> Dict[str, object]:
        body = {"workbooks": [workbook_to_dict(workbook) for workbook in workbooks]}
        return self._checked("POST", f"/v1/workspaces/{workspace}/workbooks", body)

    def remove_workbook(self, workspace: str, workbook_name: str) -> Dict[str, object]:
        return self._checked(
            "DELETE", f"/v1/workspaces/{workspace}/workbooks/{workbook_name}"
        )


# --------------------------------------------------------------------- async


class AsyncFormulaClient:
    """Minimal async HTTP/1.1 client over one keep-alive connection."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncFormulaClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        body_bytes: Optional[bytes] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """One round trip.  ``body_bytes`` sends pre-encoded JSON verbatim —
        callers issuing many requests over the same payload (the swarm
        driver) serialize once instead of per request."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        if body_bytes is not None:
            payload = body_bytes
        else:
            payload = b"" if body is None else json.dumps(body).encode("utf-8")
        trace_header = f"X-Trace-Id: {trace_id}\r\n" if trace_id is not None else ""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{trace_header}"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()

        status_line = (await self._reader.readline()).decode("latin-1")
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = (await self._reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        return status, headers, decoded

    async def recommend(
        self,
        workspace: str,
        sheet: SheetLike,
        cell: str,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, object]]:
        body: Dict[str, object] = {"sheet": _sheet_payload(sheet), "cell": cell}
        if request_id is not None:
            body["request_id"] = request_id
        status, __, decoded = await self.request(
            "POST", f"/v1/workspaces/{workspace}/recommend", body
        )
        return status, decoded


# --------------------------------------------------------------------- swarm


@dataclass
class SwarmResult:
    """What a client swarm observed end to end."""

    wall_seconds: float
    statuses: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    responses: List[Dict[str, object]] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.statuses)

    @property
    def n_ok(self) -> int:
        return sum(1 for status in self.statuses if status == 200)

    @property
    def requests_per_second(self) -> float:
        return self.n_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_summary(self) -> Dict[str, float]:
        """count/p50/p95/p99/max over the client-observed latencies."""
        recorder = LatencyRecorder(window_size=max(len(self.latencies), 1))
        for seconds in self.latencies:
            recorder.record(seconds)
        return recorder.summary()


async def run_swarm(
    host: str,
    port: int,
    workspace: str,
    tasks: Sequence[Tuple[Dict[str, object], str]],
    concurrency: int = 8,
) -> SwarmResult:
    """Fire ``tasks`` (sheet payload, cell) through ``concurrency`` workers.

    Every worker owns one keep-alive connection and walks its share of the
    task list sequentially, so at any instant up to ``concurrency``
    requests are in flight — the arrival pattern the micro-batcher is
    built to coalesce.  Latency is measured per request, client-side.
    """
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    result = SwarmResult(wall_seconds=0.0)
    lock = asyncio.Lock()
    path = f"/v1/workspaces/{workspace}/recommend"
    # Serialize every request body up front, outside the timed window: a
    # real client encodes a payload once and reuses the bytes, and the
    # benchmark should measure the server, not the harness's json.dumps.
    bodies = [
        json.dumps(
            {"sheet": sheet_payload, "cell": cell, "request_id": str(position)}
        ).encode("utf-8")
        for position, (sheet_payload, cell) in enumerate(tasks)
    ]

    async def worker(worker_index: int) -> None:
        client = AsyncFormulaClient(host, port)
        try:
            for position in range(worker_index, len(tasks), concurrency):
                begin = time.perf_counter()
                status, __, body = await client.request(
                    "POST", path, body_bytes=bodies[position]
                )
                elapsed = time.perf_counter() - begin
                async with lock:
                    result.statuses.append(status)
                    result.latencies.append(elapsed)
                    result.responses.append(body)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker(index) for index in range(min(concurrency, len(tasks)))))
    result.wall_seconds = time.perf_counter() - started
    return result


def run_client_swarm(
    host: str,
    port: int,
    workspace: str,
    tasks: Sequence[Tuple[Dict[str, object], str]],
    concurrency: int = 8,
) -> SwarmResult:
    """Blocking wrapper around :func:`run_swarm` (runs its own loop)."""
    return asyncio.run(run_swarm(host, port, workspace, tasks, concurrency=concurrency))
