"""Wire schemas of the network serving front-end.

Everything that crosses the socket is JSON; this module owns the mapping
between wire dictionaries and the service layer's typed objects
(:class:`~repro.service.types.RecommendationRequest` /
:class:`~repro.service.types.RecommendationResponse`,
:class:`~repro.formula.engine.RecalcReport`, workbooks).  Malformed
payloads raise :class:`SchemaError`, which the protocol layer answers
with HTTP 400 — schema violations never reach the serving core.

Sheets are the bulky part of a recommendation request, and concurrently
arriving requests from one client session usually carry the *same* sheet
bytes.  :class:`SheetInterner` canonicalizes incoming sheet payloads to a
shared :class:`~repro.sheet.sheet.Sheet` instance keyed by content hash,
which is what lets the micro-batcher group wire requests into one
``predict_batch`` call (the workspace groups by sheet identity) and lets
the predictor's per-sheet featurization caches hit across requests.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.formula.engine import RecalcReport
from repro.obs import current_trace_id, get_tracer
from repro.service.types import RecommendationRequest, RecommendationResponse
from repro.sheet.addressing import parse_cell_address
from repro.sheet.io import sheet_from_dict, workbook_from_dict
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


class SchemaError(ValueError):
    """A wire payload that does not satisfy the protocol schema (HTTP 400).

    When raised inside a traced request, the active ``trace_id`` is
    stamped onto the exception (``.trace_id``) and appended to the
    message, so a client-side schema failure is joinable against the
    server-side trace that produced it.
    """

    def __init__(self, message: str) -> None:
        self.trace_id = current_trace_id()
        if self.trace_id is not None:
            message = f"{message} [trace_id={self.trace_id}]"
        super().__init__(message)


def _require(data: Dict[str, object], key: str, kind, what: str):
    value = data.get(key)
    if not isinstance(value, kind):
        raise SchemaError(
            f"{what}: field {key!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}"
        )
    return value


def _json_safe(value):
    """Coerce provenance/detail values to JSON-encodable equivalents.

    NumPy scalars expose ``item()`` (``np.float32`` distances ride along in
    provenance); everything else non-primitive is stringified rather than
    rejected, so new provenance keys can never break the wire format.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):
        try:
            return _json_safe(value.item())
        except Exception:
            return str(value)
    if isinstance(value, dict):
        return {str(key): _json_safe(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return str(value)


# ------------------------------------------------------------------ interning


class SheetInterner:
    """Content-addressed cache of deserialized sheets (bounded LRU).

    Two wire requests carrying byte-identical sheet payloads resolve to the
    *same* ``Sheet`` object, so the workspace's by-sheet-identity batch
    grouping and the featurization caches see one sheet, not N copies.
    Interned sheets are served read-only by construction: the server never
    mutates a request sheet, and edits go through the workbook endpoints.

    The interner is confined to the server's event-loop thread (requests
    are decoded before they are handed to the executor), so it needs no
    lock.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, Sheet]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def intern(self, sheet_data: Dict[str, object]) -> Sheet:
        """The shared ``Sheet`` for this payload (deserializing on miss)."""
        key = hashlib.sha256(
            json.dumps(sheet_data, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        sheet = self._entries.get(key)
        if sheet is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return sheet
        self.misses += 1
        try:
            sheet = sheet_from_dict(sheet_data)
        except SchemaError:
            raise
        except Exception as exc:
            raise SchemaError(f"malformed sheet payload: {exc}") from exc
        # Stamp the content hash so query-embedding caches downstream can
        # recognize byte-identical sheets even across interner evictions.
        sheet.content_key = key
        self._entries[key] = sheet
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return sheet


# ---------------------------------------------------------------- recommend


def decode_recommend_payload(
    data: object, interner: SheetInterner
) -> Tuple[List[RecommendationRequest], bool]:
    """Decode a recommend body into typed requests.

    Accepts either one request object (``{"sheet": ..., "cell": "D41"}``)
    or a batch (``{"requests": [...]}``).  Returns the requests plus
    whether the caller used the single-object shape (the response mirrors
    the request shape).
    """
    with get_tracer().span("wire.decode") as span:
        if not isinstance(data, dict):
            raise SchemaError("recommend body must be a JSON object")
        hits_before = interner.hits
        if "requests" in data:
            raw_requests = _require(data, "requests", list, "recommend body")
            if not raw_requests:
                raise SchemaError("recommend body: 'requests' must not be empty")
            decoded = [_decode_one_request(item, interner) for item in raw_requests], False
        else:
            decoded = [_decode_one_request(data, interner)], True
        span.set_attribute("n_requests", len(decoded[0]))
        span.set_attribute("interner_hits", interner.hits - hits_before)
        return decoded


def _decode_one_request(
    data: object, interner: SheetInterner
) -> RecommendationRequest:
    if not isinstance(data, dict):
        raise SchemaError("recommend request must be a JSON object")
    sheet_data = _require(data, "sheet", dict, "recommend request")
    cell = _require(data, "cell", str, "recommend request")
    request_id = data.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise SchemaError("recommend request: 'request_id' must be a string")
    try:
        address = parse_cell_address(cell)
    except Exception as exc:
        raise SchemaError(f"recommend request: bad cell address {cell!r}: {exc}") from exc
    return RecommendationRequest(
        sheet=interner.intern(sheet_data), cell=address, request_id=request_id
    )


def encode_response(
    response: RecommendationResponse,
    batch_size: int = 1,
    queue_seconds: float = 0.0,
) -> Dict[str, object]:
    """Serialize a served response, with server-side serving attribution.

    ``batch_size`` is the size of the coalesced batch this request rode in
    and ``queue_seconds`` the time it spent in the ingress queue before
    dispatch — together with ``latency_seconds`` (the amortized predictor
    share) a client can attribute its end-to-end time.
    """
    return {
        "request_id": response.request.request_id,
        "workspace": response.workspace,
        "method": response.method,
        "formula": response.formula,
        "confidence": _json_safe(response.confidence),
        "abstain_reason": (
            response.abstain_reason.value if response.abstain_reason is not None else None
        ),
        "provenance": _json_safe(response.provenance),
        "latency_seconds": _json_safe(response.latency_seconds),
        "batch_size": batch_size,
        "queue_seconds": queue_seconds,
    }


# ----------------------------------------------------------------- mutations


@dataclass(frozen=True)
class EditCellRequest:
    """Wire form of :meth:`Workspace.edit_cell` (exactly one operand)."""

    workbook: str
    sheet: str
    cell: str
    value: Optional[object] = None
    formula: Optional[str] = None

    @classmethod
    def from_wire(cls, data: object) -> "EditCellRequest":
        if not isinstance(data, dict):
            raise SchemaError("edit-cell body must be a JSON object")
        workbook = _require(data, "workbook", str, "edit-cell body")
        sheet = _require(data, "sheet", str, "edit-cell body")
        cell = _require(data, "cell", str, "edit-cell body")
        has_value = "value" in data
        formula = data.get("formula")
        if has_value == (formula is not None):
            raise SchemaError("edit-cell body: provide exactly one of 'value'/'formula'")
        if formula is not None and not isinstance(formula, str):
            raise SchemaError("edit-cell body: 'formula' must be a string")
        try:
            parse_cell_address(cell)
        except Exception as exc:
            raise SchemaError(f"edit-cell body: bad cell address {cell!r}: {exc}") from exc
        return cls(
            workbook=workbook,
            sheet=sheet,
            cell=cell,
            value=data.get("value"),
            formula=formula,
        )


def encode_recalc_report(report: RecalcReport) -> Dict[str, object]:
    """Serialize the engine's recalculation outcome."""
    return {
        "recalculated": int(report.recalculated),
        "errored": int(report.errored),
        "total": int(report.total),
    }


def decode_workbooks_payload(data: object) -> List[Workbook]:
    """Decode an add-workbooks body (``{"workbooks": [...]}``)."""
    if not isinstance(data, dict):
        raise SchemaError("workbooks body must be a JSON object")
    raw_workbooks = _require(data, "workbooks", list, "workbooks body")
    if not raw_workbooks:
        raise SchemaError("workbooks body: 'workbooks' must not be empty")
    workbooks = []
    for item in raw_workbooks:
        if not isinstance(item, dict):
            raise SchemaError("workbooks body: each workbook must be a JSON object")
        try:
            workbooks.append(workbook_from_dict(item))
        except Exception as exc:
            raise SchemaError(f"malformed workbook payload: {exc}") from exc
    return workbooks


def encode_error(
    reason: str,
    detail: str = "",
    retry_after: Optional[float] = None,
    trace_id: Optional[str] = None,
) -> Dict[str, object]:
    """The uniform error body (``error`` is a machine-readable slug).

    ``trace_id`` (when a trace is active) lets a client join its failure
    against the server-side trace; the dispatcher also stamps it onto
    any error body it builds from an exception.
    """
    body: Dict[str, object] = {"error": reason}
    if detail:
        body["detail"] = detail
    if retry_after is not None:
        body["retry_after_seconds"] = retry_after
    if trace_id is not None:
        body["trace_id"] = trace_id
    return body
