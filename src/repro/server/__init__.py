"""The network serving front-end: ``FormulaService`` over JSON/HTTP.

A stdlib-only (``asyncio``) subsystem that puts the in-process serving
layer behind a wire protocol, following the api / schemas / middleware /
services layering of production serving systems:

* ``repro.server.app`` — the HTTP/1.1 protocol layer and routing
  (:class:`FormulaServer`, :class:`ServerConfig`,
  :func:`start_server_in_background`);
* ``repro.server.schemas`` — typed wire schemas and the content-addressed
  :class:`~repro.server.schemas.SheetInterner` that lets identical request
  sheets coalesce;
* ``repro.server.batching`` — the per-workspace micro-batching serve loop
  that turns concurrently arriving requests into one vectorized
  ``serve_batch`` call;
* ``repro.server.admission`` — per-tenant token-bucket rate limiting,
  bounded ingress queues with load shedding, graceful drain;
* ``repro.server.metrics`` — queue depth, batch-size histogram,
  coalescing ratio and per-endpoint latency behind ``/stats``;
* ``repro.server.client`` — blocking and async clients plus the
  concurrent swarm driver used by benchmarks and CI smoke tests.

See ``DESIGN.md`` ("Network serving") for protocol and policy details.
"""

from repro.server.admission import AdmissionConfig, AdmissionController, Rejection, TokenBucket
from repro.server.app import (
    FormulaServer,
    ServerConfig,
    ServerHandle,
    start_server_in_background,
)
from repro.server.batching import BatcherPool, ServedResult, WorkspaceBatcher
from repro.server.client import (
    AsyncFormulaClient,
    FormulaClient,
    ServerError,
    SwarmResult,
    run_client_swarm,
    run_swarm,
)
from repro.server.metrics import ServerMetrics
from repro.server.schemas import SchemaError, SheetInterner

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AsyncFormulaClient",
    "BatcherPool",
    "FormulaClient",
    "FormulaServer",
    "Rejection",
    "SchemaError",
    "ServedResult",
    "ServerConfig",
    "ServerError",
    "ServerHandle",
    "ServerMetrics",
    "SheetInterner",
    "SwarmResult",
    "TokenBucket",
    "WorkspaceBatcher",
    "run_client_swarm",
    "run_swarm",
    "start_server_in_background",
]
