"""View-window extraction: regions and whole sheets as input tensors."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.features.cell_features import CellFeaturizer
from repro.features.config import FeatureConfig
from repro.sheet.addressing import CellAddress
from repro.sheet.cell import EMPTY_CELL
from repro.sheet.sheet import Sheet


def region_window_bounds(
    center: CellAddress, window_rows: int, window_cols: int
) -> Tuple[int, int]:
    """Top-left ``(row, col)`` of a window centered on ``center``.

    The window is *always* centered on the cell, even near the sheet
    boundary: positions that fall outside the sheet (negative rows/columns
    or past the used extent) are represented as invalid padding cells,
    mirroring Figure 5 of the paper.  Keeping the center fixed is what makes
    the fine-grained representation sensitive to one-cell shifts near the
    edges of a sheet.
    """
    top = center.row - window_rows // 2
    left = center.col - window_cols // 2
    return top, left


def sheet_window_bounds() -> Tuple[int, int]:
    """Top-left of the window representing a whole sheet (always (0, 0))."""
    return 0, 0


class WindowFeaturizer:
    """Builds ``(window_rows, window_cols, cell_dim)`` tensors from sheets.

    Windows on the same sheet overlap heavily (every formula cell gets its
    own region window), so per-cell feature vectors are memoized per sheet
    object.  The cache holds a strong reference to each sheet it has seen so
    ``id()`` values cannot be recycled; call :meth:`clear_cache` between
    unrelated workloads to release memory.
    """

    def __init__(self, config: Optional[FeatureConfig] = None, featurizer: Optional[CellFeaturizer] = None) -> None:
        self.config = config or FeatureConfig()
        self.cell_featurizer = featurizer or CellFeaturizer(self.config)
        self._cell_cache: dict = {}
        self._cached_sheets: dict = {}
        self._padding_vector: Optional[np.ndarray] = None

    @property
    def window_shape(self) -> Tuple[int, int, int]:
        """Shape of a single window tensor."""
        return (self.config.window_rows, self.config.window_cols, self.cell_featurizer.dimension)

    def clear_cache(self) -> None:
        """Drop all memoized per-cell feature vectors."""
        self._cell_cache.clear()
        self._cached_sheets.clear()

    def _padding_features(self) -> np.ndarray:
        if self._padding_vector is None:
            self._padding_vector = self.cell_featurizer.featurize(EMPTY_CELL, valid=False)
        return self._padding_vector

    def _cell_features(self, sheet: Sheet, row: int, col: int) -> np.ndarray:
        key = (id(sheet), row, col)
        cached = self._cell_cache.get(key)
        if cached is not None:
            return cached
        vector = self.cell_featurizer.featurize(sheet.get((row, col)), valid=True)
        self._cell_cache[key] = vector
        self._cached_sheets[id(sheet)] = sheet
        return vector

    def _window_from(self, sheet: Sheet, top: int, left: int) -> np.ndarray:
        rows, cols = self.config.window_rows, self.config.window_cols
        tensor = np.zeros(self.window_shape, dtype=np.float32)
        n_rows, n_cols = sheet.n_rows, sheet.n_cols
        padding = self._padding_features()
        for row_offset in range(rows):
            row = top + row_offset
            for col_offset in range(cols):
                col = left + col_offset
                if 0 <= row < n_rows and 0 <= col < n_cols:
                    tensor[row_offset, col_offset] = self._cell_features(sheet, row, col)
                else:
                    tensor[row_offset, col_offset] = padding
        return tensor

    def featurize_region(
        self, sheet: Sheet, center: CellAddress, blank_center: bool = False
    ) -> np.ndarray:
        """Window tensor for the region centered on ``center``.

        ``blank_center=True`` replaces the center cell's features with the
        invalid-padding vector.  The online pipeline uses this for the S2
        formula-region comparison: the target cell is empty (the user has not
        written the formula yet) while the reference cell holds a computed
        value, so masking the center on both sides makes their surrounding
        regions directly comparable.
        """
        top, left = region_window_bounds(center, self.config.window_rows, self.config.window_cols)
        window = self._window_from(sheet, top, left)
        if blank_center:
            window = window.copy()
            window[center.row - top, center.col - left] = self._padding_features()
        return window

    def featurize_sheet(self, sheet: Sheet) -> np.ndarray:
        """Window tensor representing the whole sheet (top-left anchored)."""
        top, left = sheet_window_bounds()
        return self._window_from(sheet, top, left)

    def featurize_regions(self, sheet: Sheet, centers, blank_center: bool = False) -> np.ndarray:
        """Stack of window tensors, one per center address."""
        if not centers:
            rows, cols, dim = self.window_shape
            return np.zeros((0, rows, cols, dim), dtype=np.float32)
        return np.stack(
            [self.featurize_region(sheet, center, blank_center=blank_center) for center in centers]
        )
