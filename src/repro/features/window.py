"""View-window extraction: regions and whole sheets as input tensors."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.features.cell_features import CellFeaturizer
from repro.features.config import FeatureConfig
from repro.sheet.addressing import CellAddress
from repro.sheet.cell import EMPTY_CELL
from repro.sheet.sheet import Sheet

#: Padded-tensor byte budget above which a sheet is featurized window by
#: window instead of densified.  Counted in bytes of the dense tensor (cells
#: x feature dim x 4), so both huge extents and sparse sheets with far-flung
#: cells (tiny stored count, enormous bounding box) fall back to the sparse
#: path instead of materializing hundreds of megabytes.
_MAX_DENSE_BYTES = 1 << 25  # 32 MiB per sheet tensor


class SheetKeyedLRU:
    """Bounded LRU of per-sheet values keyed by ``id(sheet)``.

    Each entry pins the sheet object, so an ``id()`` can never be recycled
    while its entry is alive; eviction is deterministic (least recently
    used first).  Shared by every sheet-keyed cache in the system (feature
    tensors, reduced tensors, target-region embeddings).

    Access is guarded by an internal mutex so one cache can be shared by
    concurrent serving threads (e.g. the shards of a
    ``ShardedWorkspace`` featurizing the same target sheet through one
    encoder).  Cached values are deterministic functions of their sheet, so
    a miss raced by two threads at worst computes the value twice — the
    entries themselves never get corrupted.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, Tuple[Sheet, object]]" = OrderedDict()
        self._mutex = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, sheet: Sheet):
        """The cached value for ``sheet`` (refreshing recency), or ``None``."""
        with self._mutex:
            entry = self._entries.get(id(sheet))
            if entry is None or entry[0] is not sheet:
                return None
            self._entries.move_to_end(id(sheet))
            return entry[1]

    def put(self, sheet: Sheet, value) -> None:
        """Insert/refresh ``sheet``'s value, evicting LRU entries over bound."""
        with self._mutex:
            self._entries[id(sheet)] = (sheet, value)
            self._entries.move_to_end(id(sheet))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def sheets(self):
        """Cached sheets, least recently used first."""
        with self._mutex:
            return [entry[0] for entry in self._entries.values()]

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()


def region_window_bounds(
    center: CellAddress, window_rows: int, window_cols: int
) -> Tuple[int, int]:
    """Top-left ``(row, col)`` of a window centered on ``center``.

    The window is *always* centered on the cell, even near the sheet
    boundary: positions that fall outside the sheet (negative rows/columns
    or past the used extent) are represented as invalid padding cells,
    mirroring Figure 5 of the paper.  Keeping the center fixed is what makes
    the fine-grained representation sensitive to one-cell shifts near the
    edges of a sheet.
    """
    top = center.row - window_rows // 2
    left = center.col - window_cols // 2
    return top, left


def sheet_window_bounds() -> Tuple[int, int]:
    """Top-left of the window representing a whole sheet (always (0, 0))."""
    return 0, 0


def window_from_padded(
    tensor: np.ndarray,
    row0: int,
    col0: int,
    window_rows: int,
    window_cols: int,
    padding_vector: np.ndarray,
) -> np.ndarray:
    """One window whose top-left sits at padded coordinates (row0, col0).

    Parts of the window that fall outside the tensor read as
    ``padding_vector``.  Works for any per-sheet tensor in any vector space
    (raw cell features or model-reduced features).
    """
    window = np.empty((window_rows, window_cols, tensor.shape[-1]), dtype=np.float32)
    window[:] = padding_vector
    row_lo, row_hi = max(row0, 0), min(row0 + window_rows, tensor.shape[0])
    col_lo, col_hi = max(col0, 0), min(col0 + window_cols, tensor.shape[1])
    if row_lo < row_hi and col_lo < col_hi:
        window[row_lo - row0 : row_hi - row0, col_lo - col0 : col_hi - col0] = tensor[
            row_lo:row_hi, col_lo:col_hi
        ]
    return window


def gather_windows(
    tensor: np.ndarray,
    centers,
    n_rows: int,
    n_cols: int,
    window_rows: int,
    window_cols: int,
    padding_vector: np.ndarray,
) -> np.ndarray:
    """All windows in one vectorized gather from a padded per-sheet tensor.

    ``tensor`` must have a ``window_rows // 2`` / ``window_cols // 2`` border
    around the sheet's ``n_rows`` x ``n_cols`` used extent, so a window
    centered on an in-extent cell is exactly the tensor block whose top-left
    padded coordinate equals the center's sheet coordinate — the common case
    is a single fancy-indexed slice of ``sliding_window_view``.  Centers
    outside the used extent (a query on an empty part of the sheet) fall
    back to a per-window rectangle copy against the same tensor.
    """
    count = len(centers)
    dim = tensor.shape[-1]
    center_rows = np.fromiter((center.row for center in centers), dtype=np.int64, count=count)
    center_cols = np.fromiter((center.col for center in centers), dtype=np.int64, count=count)
    in_extent = (
        (center_rows >= 0) & (center_rows < n_rows) & (center_cols >= 0) & (center_cols < n_cols)
    )
    windows = np.empty((count, window_rows, window_cols, dim), dtype=np.float32)
    if in_extent.any():
        view = sliding_window_view(tensor, (window_rows, window_cols), axis=(0, 1))
        gathered = view[center_rows[in_extent], center_cols[in_extent]]
        windows[in_extent] = np.moveaxis(gathered, 1, -1)
    for position in np.flatnonzero(~in_extent):
        top, left = region_window_bounds(centers[int(position)], window_rows, window_cols)
        windows[position] = window_from_padded(
            tensor,
            top + window_rows // 2,
            left + window_cols // 2,
            window_rows,
            window_cols,
            padding_vector,
        )
    return windows


class WindowFeaturizer:
    """Builds ``(window_rows, window_cols, cell_dim)`` tensors from sheets.

    Windows on the same sheet overlap heavily (every formula cell gets its
    own region window), so each sheet is featurized *once* into a padded
    per-sheet feature tensor — interior cells carry their real features,
    the border carries invalid-padding features — and every window is then
    a vectorized gather from that tensor.  Tensors live in a bounded LRU
    keyed per sheet; the LRU entry pins the sheet object so ``id()`` values
    cannot be recycled while cached, and eviction is deterministic (least
    recently used first).  Call :meth:`clear_cache` between unrelated
    workloads to release memory early.
    """

    def __init__(
        self,
        config: Optional[FeatureConfig] = None,
        featurizer: Optional[CellFeaturizer] = None,
        max_cached_sheets: int = 64,
    ) -> None:
        if max_cached_sheets <= 0:
            raise ValueError("max_cached_sheets must be positive")
        self.config = config or FeatureConfig()
        self.cell_featurizer = featurizer or CellFeaturizer(self.config)
        #: Padded per-sheet feature tensors, LRU-bounded.
        self._tensor_cache = SheetKeyedLRU(max_cached_sheets)
        self._padding_vector: Optional[np.ndarray] = None
        self._empty_vector: Optional[np.ndarray] = None

    @property
    def window_shape(self) -> Tuple[int, int, int]:
        """Shape of a single window tensor."""
        return (self.config.window_rows, self.config.window_cols, self.cell_featurizer.dimension)

    def clear_cache(self) -> None:
        """Drop all memoized per-sheet feature tensors."""
        self._tensor_cache.clear()

    def _padding_features(self) -> np.ndarray:
        if self._padding_vector is None:
            self._padding_vector = self.cell_featurizer.featurize(EMPTY_CELL, valid=False)
        return self._padding_vector

    def padding_features(self) -> np.ndarray:
        """Feature vector of an out-of-bounds (invalid) padding cell."""
        return self._padding_features()

    def _empty_features(self) -> np.ndarray:
        if self._empty_vector is None:
            self._empty_vector = self.cell_featurizer.featurize(EMPTY_CELL, valid=True)
        return self._empty_vector

    # ------------------------------------------------------- per-sheet tensor

    def _padded_shape(self, sheet: Sheet) -> Tuple[int, int]:
        rows, cols = self.config.window_rows, self.config.window_cols
        return sheet.n_rows + rows - 1, sheet.n_cols + cols - 1

    def _build_tensor(self, sheet: Sheet) -> np.ndarray:
        """Padded feature tensor: a ``window_rows//2`` / ``window_cols//2``
        border of invalid-padding cells around the sheet's used extent."""
        rows, cols = self.config.window_rows, self.config.window_cols
        pad_row, pad_col = rows // 2, cols // 2
        height, width = self._padded_shape(sheet)
        tensor = np.empty((height, width, self.cell_featurizer.dimension), dtype=np.float32)
        tensor[:] = self._padding_features()
        interior = tensor[pad_row : pad_row + sheet.n_rows, pad_col : pad_col + sheet.n_cols]
        interior[:] = self._empty_features()
        for address, cell in sheet.cells():
            interior[address.row, address.col] = self.cell_featurizer.featurize(cell, valid=True)
        return tensor

    def _sheet_tensor(self, sheet: Sheet) -> np.ndarray:
        tensor = self._tensor_cache.get(sheet)
        if tensor is None:
            tensor = self._build_tensor(sheet)
            self._tensor_cache.put(sheet, tensor)
        return tensor

    def _densifiable(self, sheet: Sheet) -> bool:
        height, width = self._padded_shape(sheet)
        return height * width * self.cell_featurizer.dimension * 4 <= _MAX_DENSE_BYTES

    def padded_sheet_tensor(self, sheet: Sheet) -> Optional[np.ndarray]:
        """The cached padded feature tensor of ``sheet``, or ``None`` when
        the sheet exceeds the densification budget.

        Exposed so callers can derive their own per-sheet tensors (e.g. the
        pipeline's model-reduced tensors) from the same featurization.
        """
        if not self._densifiable(sheet):
            return None
        return self._sheet_tensor(sheet)

    def _window_sparse(self, sheet: Sheet, top: int, left: int) -> np.ndarray:
        """Cell-by-cell assembly for sheets too large to densify."""
        rows, cols = self.config.window_rows, self.config.window_cols
        tensor = np.zeros(self.window_shape, dtype=np.float32)
        n_rows, n_cols = sheet.n_rows, sheet.n_cols
        padding = self._padding_features()
        empty = self._empty_features()
        for row_offset in range(rows):
            row = top + row_offset
            for col_offset in range(cols):
                col = left + col_offset
                if 0 <= row < n_rows and 0 <= col < n_cols:
                    cell = sheet.get((row, col))
                    if cell is EMPTY_CELL:
                        tensor[row_offset, col_offset] = empty
                    else:
                        tensor[row_offset, col_offset] = self.cell_featurizer.featurize(
                            cell, valid=True
                        )
                else:
                    tensor[row_offset, col_offset] = padding
        return tensor

    # -------------------------------------------------------------- windowing

    def featurize_region(
        self, sheet: Sheet, center: CellAddress, blank_center: bool = False
    ) -> np.ndarray:
        """Window tensor for the region centered on ``center``.

        ``blank_center=True`` replaces the center cell's features with the
        invalid-padding vector.  The online pipeline uses this for the S2
        formula-region comparison: the target cell is empty (the user has not
        written the formula yet) while the reference cell holds a computed
        value, so masking the center on both sides makes their surrounding
        regions directly comparable.
        """
        return self.featurize_regions(sheet, [center], blank_center=blank_center)[0]

    def featurize_sheet(self, sheet: Sheet) -> np.ndarray:
        """Window tensor representing the whole sheet (top-left anchored)."""
        top, left = sheet_window_bounds()
        rows, cols = self.config.window_rows, self.config.window_cols
        if not self._densifiable(sheet):
            return self._window_sparse(sheet, top, left)
        tensor = self._sheet_tensor(sheet)
        # Padded coordinates of a window are its sheet coordinates shifted by
        # the border width.
        return window_from_padded(
            tensor, top + rows // 2, left + cols // 2, rows, cols, self._padding_features()
        )

    def featurize_regions(self, sheet: Sheet, centers, blank_center: bool = False) -> np.ndarray:
        """Stack of window tensors, one per center address."""
        centers = list(centers)
        rows, cols, dim = self.window_shape
        if not centers:
            return np.zeros((0, rows, cols, dim), dtype=np.float32)
        if not self._densifiable(sheet):
            windows = np.stack(
                [
                    self._window_sparse(sheet, *region_window_bounds(center, rows, cols))
                    for center in centers
                ]
            )
        else:
            windows = gather_windows(
                self._sheet_tensor(sheet),
                centers,
                sheet.n_rows,
                sheet.n_cols,
                rows,
                cols,
                self._padding_features(),
            )
        if blank_center:
            windows[:, rows // 2, cols // 2] = self._padding_features()
        return windows
