"""Feature-extraction configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embedding import CachingEmbedder, TextEmbedder, create_embedder


@dataclass
class FeatureConfig:
    """Controls window geometry and which cell features are used.

    ``use_content_features`` / ``use_style_features`` switch off whole
    feature groups for the Figure 13 ablation.  The paper uses a
    100 x 10 view window; tests and benchmarks default to a smaller window
    so that NumPy training stays fast, which is a pure scale knob.
    """

    window_rows: int = 20
    window_cols: int = 8
    embedder_name: str = "sbert"
    content_embedding_dim: int = 32
    use_content_features: bool = True
    use_style_features: bool = True

    #: Paper-scale values, for reference / EXPERIMENTS.md.
    PAPER_WINDOW_ROWS = 100
    PAPER_WINDOW_COLS = 10

    def create_embedder(self) -> TextEmbedder:
        """Instantiate (and cache) the configured content embedder."""
        return CachingEmbedder(create_embedder(self.embedder_name, self.content_embedding_dim))

    @property
    def window_cells(self) -> int:
        """Number of cells in a view window."""
        return self.window_rows * self.window_cols
