"""Featurization: cells -> feature vectors, windows -> input tensors.

Implements Section 4.4.1 of the paper: each cell is represented by a
concatenation of *content features* (a semantic text embedding plus
syntactic type/pattern features) and *style features* (colors, font,
sizes).  A fixed ``n_rows x n_cols`` *view window* stacks the cell vectors
of a spreadsheet region into a 3-D input tensor for the representation
models; the window can be centered on a cell (region representation) or
anchored at the sheet's top-left corner (whole-sheet representation).
"""

from repro.features.config import FeatureConfig
from repro.features.cell_features import CellFeaturizer
from repro.features.window import (
    WindowFeaturizer,
    region_window_bounds,
    sheet_window_bounds,
)

__all__ = [
    "FeatureConfig",
    "CellFeaturizer",
    "WindowFeaturizer",
    "region_window_bounds",
    "sheet_window_bounds",
]
