"""Per-cell feature vectors: content features and style features."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from repro.embedding import TextEmbedder
from repro.features.config import FeatureConfig
from repro.sheet.cell import Cell, CellType, syntactic_pattern

#: Fixed ordering of cell types for the one-hot type feature.
_CELL_TYPES = [
    CellType.EMPTY,
    CellType.NUMERIC,
    CellType.TEXT,
    CellType.DATE,
    CellType.BOOLEAN,
    CellType.FORMULA,
    CellType.ERROR,
]

#: Number of syntactic-pattern summary features.
_N_PATTERN_FEATURES = 8
#: Number of style features.
_N_STYLE_FEATURES = 16
#: Extra indicator features (cell validity inside the sheet bounds).
_N_INDICATOR_FEATURES = 1


class CellFeaturizer:
    """Turns a :class:`Cell` into a fixed-length feature vector.

    Layout of the feature vector (in order):

    1. semantic content embedding (``content_embedding_dim`` floats),
    2. cell-type one-hot (7),
    3. syntactic pattern summary (8),
    4. style features (16),
    5. validity indicator (1): 1.0 for real cells, 0.0 for out-of-bounds
       padding cells in a view window.

    Disabled feature groups (ablations) are zeroed rather than removed so
    the model input dimensionality — and hence trained weights — stay
    compatible across ablation runs.
    """

    def __init__(
        self,
        config: FeatureConfig,
        embedder: Optional[TextEmbedder] = None,
        max_cached_cells: int = 100_000,
    ) -> None:
        self._config = config
        self._embedder = embedder or config.create_embedder()
        self._content_dim = config.content_embedding_dim
        self._max_cached_cells = max_cached_cells
        #: LRU over full feature vectors, keyed by the cell *content* that
        #: determines them: (value, has-formula, style, validity).  Corpora
        #: repeat the same headers, labels and styles across thousands of
        #: cells, so this removes most per-cell Python work.  Guarded by a
        #: mutex: one featurizer is shared by every concurrent serving
        #: thread driving the same encoder.
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._cache_mutex = threading.Lock()

    # ----------------------------------------------------------------- layout

    @property
    def dimension(self) -> int:
        """Total length of the per-cell feature vector."""
        return (
            self._content_dim
            + len(_CELL_TYPES)
            + _N_PATTERN_FEATURES
            + _N_STYLE_FEATURES
            + _N_INDICATOR_FEATURES
        )

    @property
    def embedder(self) -> TextEmbedder:
        """The content embedder in use."""
        return self._embedder

    def content_feature_slice(self) -> slice:
        """Indices of the content-feature block (embedding + type + pattern)."""
        return slice(0, self._content_dim + len(_CELL_TYPES) + _N_PATTERN_FEATURES)

    def style_feature_slice(self) -> slice:
        """Indices of the style-feature block."""
        start = self._content_dim + len(_CELL_TYPES) + _N_PATTERN_FEATURES
        return slice(start, start + _N_STYLE_FEATURES)

    # --------------------------------------------------------------- features

    def _semantic_features(self, cell: Cell) -> np.ndarray:
        text = cell.display_text()
        if not text:
            return np.zeros(self._content_dim, dtype=np.float32)
        vector = self._embedder.embed(text)
        if vector.shape[0] == self._content_dim:
            return vector
        if vector.shape[0] > self._content_dim:
            return vector[: self._content_dim]
        padded = np.zeros(self._content_dim, dtype=np.float32)
        padded[: vector.shape[0]] = vector
        return padded

    @staticmethod
    def _type_features(cell: Cell) -> np.ndarray:
        one_hot = np.zeros(len(_CELL_TYPES), dtype=np.float32)
        one_hot[_CELL_TYPES.index(cell.cell_type)] = 1.0
        return one_hot

    @staticmethod
    def _pattern_features(cell: Cell) -> np.ndarray:
        pattern = syntactic_pattern(cell.value)
        features = np.zeros(_N_PATTERN_FEATURES, dtype=np.float32)
        if not pattern:
            return features
        length = len(pattern)
        features[0] = min(length / 32.0, 1.0)
        features[1] = pattern.count("D") / length
        features[2] = pattern.count("L") / length
        features[3] = pattern.count("S") / length
        features[4] = 1.0 if "-" in pattern or "/" in pattern else 0.0
        features[5] = 1.0 if "." in pattern else 0.0
        features[6] = 1.0 if "$" in pattern or "%" in pattern else 0.0
        features[7] = 1.0 if pattern and pattern[0] == "D" else 0.0
        return features

    @staticmethod
    def _style_features(cell: Cell) -> np.ndarray:
        style = cell.style
        features = np.zeros(_N_STYLE_FEATURES, dtype=np.float32)
        features[0:3] = style.background_rgb()
        features[3:6] = style.font_rgb()
        features[6] = 1.0 if style.bold else 0.0
        features[7] = 1.0 if style.italic else 0.0
        features[8] = 1.0 if style.underline else 0.0
        features[9] = min(style.font_size / 24.0, 2.0)
        features[10] = min(style.height / 60.0, 2.0)
        features[11] = min(style.width / 200.0, 2.0)
        features[12] = 1.0 if style.border_top else 0.0
        features[13] = 1.0 if style.border_bottom else 0.0
        features[14] = 1.0 if style.border_left else 0.0
        features[15] = 1.0 if style.border_right else 0.0
        return features

    def featurize(self, cell: Cell, valid: bool = True) -> np.ndarray:
        """Full feature vector for a single cell.

        The returned array is shared through a content-keyed cache and
        marked read-only; copy it before mutating.
        """
        try:
            # type(value) disambiguates 1 / 1.0 / True, which compare (and
            # hash) equal as dict keys but featurize differently.
            key = (type(cell.value), cell.value, bool(cell.formula), cell.style, valid)
            hash(key)
        except TypeError:  # unhashable exotic value; compute uncached
            key = None
        if key is not None:
            with self._cache_mutex:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    return cached
        vector = self._featurize_uncached(cell, valid)
        vector.setflags(write=False)
        if key is not None:
            with self._cache_mutex:
                existing = self._cache.get(key)
                if existing is not None:
                    return existing
                self._cache[key] = vector
                if len(self._cache) > self._max_cached_cells:
                    self._cache.popitem(last=False)
        return vector

    def _featurize_uncached(self, cell: Cell, valid: bool) -> np.ndarray:
        parts: List[np.ndarray] = []
        if self._config.use_content_features:
            parts.append(self._semantic_features(cell))
            parts.append(self._type_features(cell))
            parts.append(self._pattern_features(cell))
        else:
            parts.append(
                np.zeros(
                    self._content_dim + len(_CELL_TYPES) + _N_PATTERN_FEATURES,
                    dtype=np.float32,
                )
            )
        if self._config.use_style_features:
            parts.append(self._style_features(cell))
        else:
            parts.append(np.zeros(_N_STYLE_FEATURES, dtype=np.float32))
        parts.append(np.array([1.0 if valid else 0.0], dtype=np.float32))
        return np.concatenate(parts)
