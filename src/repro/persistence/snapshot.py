"""On-disk snapshot layout: manifest + raw array blocks + corpus JSON.

A snapshot is one directory::

    <snapshot>/
        manifest.json        # format_version, workspace kind, bookkeeping
        workbooks/000.json   # corpus workbooks, in corpus order
        workbooks/001.json
        arrays/<name>.npy    # raw index stores and position maps
        mutations.log        # append-only mutation log (see persistence.log)

The array blocks are plain ``.npy`` files written with :func:`numpy.save`
so loaders can memory-map them (:func:`load_arrays` does, by default):
the index stores adopt the maps read-only and only copy on the next
write, which is what makes reloading a large corpus cheap — the
cold-start benchmark (``benchmarks/test_fig_coldstart.py``) measures
exactly this against a fresh fit.

``format_version`` is enforced, not decorative: :func:`read_manifest`
raises :class:`SnapshotFormatError` on a missing, malformed or
future-version manifest instead of deserializing garbage, and the corpus
workbooks go through ``sheet/io.py``'s typed
:class:`~repro.sheet.io.WorkbookFormatError` validation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.sheet.io import load_workbook_json, save_workbook_json
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

#: Version of the snapshot directory layout (manifest + blocks + corpus).
SNAPSHOT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_DIR = "arrays"
WORKBOOKS_DIR = "workbooks"
MUTATION_LOG_NAME = "mutations.log"


class SnapshotFormatError(ValueError):
    """A snapshot directory is missing, corrupt, or of an unknown version."""


def write_manifest(directory: Union[str, Path], manifest: Dict[str, object]) -> Path:
    """Write ``manifest.json`` (stamping the current format version)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = dict(manifest)
    body["format_version"] = SNAPSHOT_FORMAT_VERSION
    path = directory / MANIFEST_NAME
    with path.open("w", encoding="utf-8") as handle:
        json.dump(body, handle, ensure_ascii=False)
    return path


def read_manifest(directory: Union[str, Path]) -> Dict[str, object]:
    """Read and validate ``manifest.json``; the format version is enforced."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise SnapshotFormatError(f"no snapshot manifest at {path}")
    try:
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(f"unreadable snapshot manifest {path}: {error}") from error
    if not isinstance(manifest, dict):
        raise SnapshotFormatError(f"snapshot manifest {path} is not a JSON object")
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot {path} has format_version {version!r}; this build reads "
            f"version {SNAPSHOT_FORMAT_VERSION}"
        )
    return manifest


def save_arrays(directory: Union[str, Path], arrays: Dict[str, np.ndarray]) -> List[str]:
    """Write every array as ``arrays/<name>.npy``; returns the names written."""
    arrays_dir = Path(directory) / ARRAYS_DIR
    arrays_dir.mkdir(parents=True, exist_ok=True)
    for name, block in arrays.items():
        np.save(arrays_dir / f"{name}.npy", np.ascontiguousarray(block))
    return sorted(arrays)


def load_arrays(
    directory: Union[str, Path], names: Sequence[str], mmap: bool = True
) -> Dict[str, np.ndarray]:
    """Load the named ``.npy`` blocks, memory-mapped read-only by default."""
    arrays_dir = Path(directory) / ARRAYS_DIR
    arrays: Dict[str, np.ndarray] = {}
    for name in names:
        path = arrays_dir / f"{name}.npy"
        if not path.exists():
            raise SnapshotFormatError(f"snapshot is missing array block {path}")
        arrays[name] = np.load(path, mmap_mode="r" if mmap else None)
    return arrays


def save_corpus(directory: Union[str, Path], workbooks: Sequence[Workbook]) -> List[str]:
    """Write the corpus workbooks in order as ``workbooks/NNN.json``.

    Files are numbered rather than named after the workbooks (names are
    user data and may not be filesystem-safe); the workbook name lives
    inside each JSON document and corpus order is the numbering.
    """
    corpus_dir = Path(directory) / WORKBOOKS_DIR
    corpus_dir.mkdir(parents=True, exist_ok=True)
    files = []
    for position, workbook in enumerate(workbooks):
        filename = f"{position:03d}.json"
        save_workbook_json(workbook, corpus_dir / filename)
        files.append(filename)
    return files


def load_corpus(directory: Union[str, Path], files: Sequence[str]) -> List[Workbook]:
    """Load the corpus workbooks named by the manifest, in corpus order."""
    corpus_dir = Path(directory) / WORKBOOKS_DIR
    workbooks = []
    for filename in files:
        path = corpus_dir / str(filename)
        if not path.exists():
            raise SnapshotFormatError(f"snapshot is missing corpus workbook {path}")
        workbooks.append(load_workbook_json(path))
    return workbooks


def sheet_resolver(workbooks: Sequence[Workbook]) -> Callable[[str, str], Sheet]:
    """A ``(workbook name, sheet name) -> Sheet`` resolver over a corpus.

    Used to re-wire a restored predictor's reference-sheet registry onto
    the restored corpus's *live* sheet objects, so the workspace serves
    and edits the same objects its predictor indexed.  Live stable ids
    name (workbook, sheet) pairs uniquely — a remove always tombstones
    the old id before a re-add assigns a new one — so the lookup is
    unambiguous.
    """
    by_name: Dict[str, Workbook] = {workbook.name: workbook for workbook in workbooks}

    def resolve(workbook_name: str, sheet_name: str) -> Sheet:
        workbook = by_name.get(workbook_name)
        if workbook is None or sheet_name not in workbook:
            raise SnapshotFormatError(
                f"snapshot references sheet {workbook_name!r}/{sheet_name!r}, "
                "which the stored corpus does not contain"
            )
        return workbook.get_sheet(sheet_name)

    return resolve


def mutation_log_path(directory: Union[str, Path]) -> Path:
    """The snapshot directory's mutation-log path."""
    return Path(directory) / MUTATION_LOG_NAME
