"""The append-only mutation log: add/remove/edit ops since a snapshot.

A snapshot freezes a workspace at one corpus version; the mutation log
records what happened after.  Each line is one JSON object — a header
line first, then one entry per corpus mutation using the same op
vocabulary as :data:`repro.testing.workload.OP_KINDS`'s mutating subset
(``add`` / ``remove`` / ``edit``)::

    {"kind": "mutation-log", "format_version": 1}
    {"op": "add", "workbook": {...workbook_to_dict...}}
    {"op": "edit", "workbook_name": "wb", "sheet_name": "S",
     "address": "B2", "cell": {"value": 3.5}}
    {"op": "remove", "workbook_name": "wb"}

Loading replays the entries, in order, through the workspace's public
mutation API (:func:`apply_mutation`) — the same writer-preferring lock
path live traffic takes — so a restore-from-snapshot+log reaches a state
bit-identical to a fresh fit on the equivalent corpus.  ``save()``
*compacts*: it writes a fresh snapshot of the current state and
truncates the log back to its header.

Edit values are encoded through :meth:`repro.sheet.Cell.to_dict` /
``from_dict`` so dates and typed error values survive the round trip
with the exact semantics of the corpus serialization format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.sheet.cell import Cell
from repro.sheet.io import workbook_from_dict, workbook_to_dict

#: Version of the mutation-log line format.
LOG_FORMAT_VERSION = 1

_HEADER = {"kind": "mutation-log", "format_version": LOG_FORMAT_VERSION}

#: The mutating subset of the workload generator's op vocabulary.
MUTATION_OPS = ("add", "remove", "edit")


class MutationLogError(ValueError):
    """A mutation log is corrupt or of an unknown version."""


def add_entry(workbook) -> Dict[str, object]:
    """Log entry for an ``add`` of one workbook (state at add time)."""
    return {"op": "add", "workbook": workbook_to_dict(workbook)}


def remove_entry(workbook_name: str) -> Dict[str, object]:
    """Log entry for a ``remove`` of one workbook."""
    return {"op": "remove", "workbook_name": workbook_name}


def edit_entry(
    workbook_name: str,
    sheet_name: str,
    address,
    value=None,
    formula=None,
) -> Dict[str, object]:
    """Log entry for an ``edit_cell`` call (exactly one of value/formula)."""
    entry: Dict[str, object] = {
        "op": "edit",
        "workbook_name": workbook_name,
        "sheet_name": sheet_name,
        "address": address.to_a1() if hasattr(address, "to_a1") else str(address),
    }
    if formula is not None:
        entry["formula"] = formula
    else:
        # Cell's value codec handles dates and typed error values; "" (the
        # explicit blank) survives as-is.
        entry["cell"] = Cell(value=value).to_dict()
    return entry


def apply_mutation(workspace, entry: Dict[str, object]) -> None:
    """Replay one log entry through a workspace's public mutation API."""
    op = entry.get("op")
    if op == "add":
        workspace.add_workbook(workbook_from_dict(entry["workbook"]))
    elif op == "remove":
        workspace.remove_workbook(str(entry["workbook_name"]))
    elif op == "edit":
        if "formula" in entry:
            workspace.edit_cell(
                str(entry["workbook_name"]),
                str(entry["sheet_name"]),
                str(entry["address"]),
                formula=str(entry["formula"]),
            )
        else:
            value = Cell.from_dict(entry.get("cell", {})).value
            workspace.edit_cell(
                str(entry["workbook_name"]),
                str(entry["sheet_name"]),
                str(entry["address"]),
                value="" if value is None else value,
            )
    else:
        raise MutationLogError(f"unknown mutation op {op!r}")


def replay_pending_mutations(workspace) -> None:
    """Apply a loaded workspace's pending log entries, exactly once.

    The lazy half of restore: :meth:`Workspace.load` parses the log but
    defers applying it until the first public operation, which calls this
    helper *before* taking the workspace's read/write lock.  Entries are
    swapped out under ``_replay_mutex`` so concurrent first operations
    replay once (later arrivals block until the replay finishes, then see
    an empty pending list); each entry then goes through the public
    mutation API and therefore the existing writer-preferring lock.
    ``_log_suspended`` keeps the replayed ops from being re-appended to
    the very log they came from.
    """
    if not workspace._pending_ops:
        return
    with workspace._replay_mutex:
        pending = workspace._pending_ops
        if not pending:
            return
        workspace._pending_ops = []
        workspace._log_suspended = True
        try:
            for entry in pending:
                apply_mutation(workspace, entry)
        finally:
            workspace._log_suspended = False


class MutationLog:
    """One append-only JSONL mutation log on disk.

    The log is line-buffered durable: every :meth:`append` opens, writes
    and closes the file, so a crash loses at most the entry being
    written, never earlier ones.  Reading validates the header line's
    ``format_version`` and every entry's op kind, raising
    :class:`MutationLogError` rather than replaying garbage into an
    index.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, entry: Dict[str, object]) -> None:
        """Append one mutation entry (writing the header first if new)."""
        if entry.get("op") not in MUTATION_OPS:
            raise MutationLogError(f"unknown mutation op {entry.get('op')!r}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        with self.path.open("a", encoding="utf-8") as handle:
            if fresh:
                handle.write(json.dumps(_HEADER) + "\n")
            handle.write(json.dumps(entry, ensure_ascii=False) + "\n")

    def read(self) -> List[Dict[str, object]]:
        """All logged mutation entries, in append order (header validated)."""
        if not self.path.exists():
            return []
        entries: List[Dict[str, object]] = []
        with self.path.open("r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise MutationLogError(f"corrupt mutation-log header: {error}") from error
        if not isinstance(header, dict) or header.get("kind") != "mutation-log":
            raise MutationLogError(f"{self.path} is not a mutation log")
        if header.get("format_version") != LOG_FORMAT_VERSION:
            raise MutationLogError(
                f"mutation log {self.path} has format_version "
                f"{header.get('format_version')!r}; this build reads version "
                f"{LOG_FORMAT_VERSION}"
            )
        for number, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise MutationLogError(
                    f"corrupt mutation log {self.path} at line {number}: {error}"
                ) from error
            if not isinstance(entry, dict) or entry.get("op") not in MUTATION_OPS:
                raise MutationLogError(
                    f"mutation log {self.path} line {number} has unknown op "
                    f"{entry.get('op') if isinstance(entry, dict) else entry!r}"
                )
            entries.append(entry)
        return entries

    def __len__(self) -> int:
        return len(self.read())

    def clear(self) -> None:
        """Truncate back to a bare header (the compaction step of save)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(_HEADER) + "\n")
