"""Durable workspaces: snapshots plus an append-only mutation log.

Everything the serving layer builds in memory — the contiguous float32
index stores, the stable-sheet-id bookkeeping, tombstone state, the
corpus workbooks — dies with the process.  This package makes a
workspace reloadable:

* **Snapshots** (:mod:`repro.persistence.snapshot`) serialize a
  workspace to an mmap-friendly on-disk layout: raw ``.npy`` matrix
  blocks under ``arrays/``, corpus workbooks as ``sheet/io.py`` JSON
  under ``workbooks/``, and one ``manifest.json`` tying them together
  with an *enforced* ``format_version``.
* **The mutation log** (:mod:`repro.persistence.log`) is an append-only
  JSONL stream of the add/remove/edit operations applied since the last
  snapshot — the same op vocabulary as :mod:`repro.testing`'s workload
  generator — replayed on load and *compacted* into a fresh snapshot by
  ``save()``.
* **Restore wiring** lives on the workspaces themselves:
  :meth:`~repro.service.Workspace.save` /
  :meth:`~repro.service.Workspace.load` (and the sharded counterparts,
  including :meth:`~repro.service.ShardedWorkspace.load_shard` for
  per-process shard workers) rebuild serving state whose answers are
  bit-identical to a fresh fit on the equivalent corpus — the
  fresh-fit-parity invariant checker in ``repro.testing`` is the
  acceptance harness.
"""

from repro.persistence.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotFormatError,
    load_arrays,
    load_corpus,
    read_manifest,
    save_arrays,
    save_corpus,
    sheet_resolver,
    write_manifest,
)
from repro.persistence.log import (
    LOG_FORMAT_VERSION,
    MutationLog,
    MutationLogError,
    apply_mutation,
    edit_entry,
    add_entry,
    remove_entry,
    replay_pending_mutations,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotFormatError",
    "load_arrays",
    "load_corpus",
    "read_manifest",
    "save_arrays",
    "save_corpus",
    "sheet_resolver",
    "write_manifest",
    "LOG_FORMAT_VERSION",
    "MutationLog",
    "MutationLogError",
    "apply_mutation",
    "add_entry",
    "edit_entry",
    "remove_entry",
]
