"""The :class:`Workbook`: an ordered collection of named sheets.

Workbooks correspond to ``.xlsx`` files in the paper.  The ordered sequence
of sheet names is the signal used by the weak-supervision hypothesis test
(Section 4.2), so the workbook preserves insertion order and exposes the
name sequence directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.sheet.sheet import Sheet


class Workbook:
    """An ordered collection of :class:`Sheet` objects with unique names."""

    def __init__(self, name: str = "workbook", last_modified: float = 0.0) -> None:
        #: Workbook (file) name, e.g. ``"fy23_budget.xlsx"``.
        self.name = name
        #: Last-modified timestamp (seconds); used for timestamp-based splits.
        self.last_modified = last_modified
        self._sheets: Dict[str, Sheet] = {}

    # ------------------------------------------------------------------ sheets

    def add_sheet(self, sheet_or_name) -> Sheet:
        """Add a sheet (or create one by name) and return it."""
        sheet = sheet_or_name if isinstance(sheet_or_name, Sheet) else Sheet(str(sheet_or_name))
        if sheet.name in self._sheets:
            raise ValueError(f"duplicate sheet name: {sheet.name!r}")
        self._sheets[sheet.name] = sheet
        return sheet

    def get_sheet(self, name: str) -> Sheet:
        """Return the sheet called ``name`` (raises ``KeyError`` if missing)."""
        return self._sheets[name]

    def remove_sheet(self, name: str) -> None:
        """Remove the sheet called ``name`` if present."""
        self._sheets.pop(name, None)

    def __getitem__(self, name: str) -> Sheet:
        return self.get_sheet(name)

    def __contains__(self, name: str) -> bool:
        return name in self._sheets

    def __iter__(self) -> Iterator[Sheet]:
        return iter(self._sheets.values())

    def __len__(self) -> int:
        return len(self._sheets)

    @property
    def sheets(self) -> List[Sheet]:
        """Sheets in insertion order."""
        return list(self._sheets.values())

    @property
    def sheet_names(self) -> List[str]:
        """Sheet names in insertion order (the weak-supervision signal)."""
        return list(self._sheets.keys())

    def copy(self, name: Optional[str] = None) -> "Workbook":
        """A deep-enough copy: fresh sheets and cells, shared styles.

        The workload replay harness edits its workbooks in place; copying
        at indexing time keeps the generator's shared pools pristine, so
        two replays of one workload start from identical corpus state.
        """
        clone = Workbook(name or self.name, last_modified=self.last_modified)
        for sheet in self:
            clone.add_sheet(sheet.copy())
        return clone

    # ------------------------------------------------------------------- stats

    def n_formulas(self) -> int:
        """Total number of formula cells across all sheets."""
        return sum(sheet.n_formulas() for sheet in self._sheets.values())

    def n_cells(self) -> int:
        """Total number of stored cells across all sheets."""
        return sum(sheet.n_cells for sheet in self._sheets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workbook(name={self.name!r}, sheets={self.sheet_names})"
