"""Cell style attributes.

Spreadsheets carry rich non-textual styling (background colors, fonts,
borders, sizes) that the paper uses as "style features" for its
computer-vision-inspired representation.  :class:`CellStyle` captures the
attributes enumerated in Section 4.4.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Optional, Tuple

#: Default row height / column width, in arbitrary display units.
DEFAULT_HEIGHT = 15.0
DEFAULT_WIDTH = 64.0


def _parse_hex_color(color: Optional[str]) -> Tuple[float, float, float]:
    """Convert a ``"#RRGGBB"`` string into normalized (r, g, b) in [0, 1].

    ``None`` (no fill / automatic color) maps to white for backgrounds and
    is handled by the caller for font colors.
    """
    if not color:
        return (1.0, 1.0, 1.0)
    text = color.lstrip("#")
    if len(text) != 6:
        raise ValueError(f"expected #RRGGBB color, got {color!r}")
    red = int(text[0:2], 16) / 255.0
    green = int(text[2:4], 16) / 255.0
    blue = int(text[4:6], 16) / 255.0
    return (red, green, blue)


@dataclass(frozen=True)
class CellStyle:
    """Visual attributes of a spreadsheet cell.

    Attributes mirror the style features listed in the paper: background
    color, font color, font style (bold / italic / underline), font size and
    cell size (height and width).
    """

    background_color: Optional[str] = None
    font_color: Optional[str] = None
    bold: bool = False
    italic: bool = False
    underline: bool = False
    font_size: float = 11.0
    height: float = DEFAULT_HEIGHT
    width: float = DEFAULT_WIDTH
    border_top: bool = False
    border_bottom: bool = False
    border_left: bool = False
    border_right: bool = False

    def background_rgb(self) -> Tuple[float, float, float]:
        """Background color as normalized RGB (defaults to white)."""
        return _parse_hex_color(self.background_color)

    def font_rgb(self) -> Tuple[float, float, float]:
        """Font color as normalized RGB (defaults to black)."""
        if self.font_color is None:
            return (0.0, 0.0, 0.0)
        return _parse_hex_color(self.font_color)

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a plain dictionary (JSON friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellStyle":
        """Reconstruct a style from :meth:`to_dict` output."""
        known = {field: data[field] for field in cls.__dataclass_fields__ if field in data}
        return cls(**known)  # type: ignore[arg-type]


#: A plain, unstyled cell.
DEFAULT_STYLE = CellStyle()

#: Typical header styling used by the synthetic corpus generator.
HEADER_STYLE = CellStyle(
    background_color="#4472C4",
    font_color="#FFFFFF",
    bold=True,
    font_size=12.0,
    border_bottom=True,
)

#: Typical "total row" styling used by the synthetic corpus generator.
TOTAL_STYLE = CellStyle(bold=True, border_top=True)
