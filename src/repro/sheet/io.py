"""JSON (de)serialization of workbooks.

The paper operates on ``.xlsx`` files; this reproduction stores workbooks in
a simple JSON layout so corpora can be persisted and reloaded without any
binary spreadsheet tooling.  The format keeps only non-empty cells keyed by
their A1 address.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.sheet.addressing import parse_cell_address
from repro.sheet.cell import Cell
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

FORMAT_VERSION = 1


def sheet_to_dict(sheet: Sheet) -> Dict[str, object]:
    """Serialize a :class:`Sheet` to a JSON-friendly dictionary."""
    return {
        "name": sheet.name,
        "cells": {addr.to_a1(): cell.to_dict() for addr, cell in sheet.cells()},
    }


def sheet_from_dict(data: Dict[str, object]) -> Sheet:
    """Reconstruct a :class:`Sheet` from :func:`sheet_to_dict` output."""
    sheet = Sheet(str(data.get("name", "Sheet1")))
    cells = data.get("cells", {})
    if isinstance(cells, dict):
        for a1, cell_data in cells.items():
            sheet.set_cell(parse_cell_address(a1), Cell.from_dict(cell_data))
    return sheet


def workbook_to_dict(workbook: Workbook) -> Dict[str, object]:
    """Serialize a :class:`Workbook` to a JSON-friendly dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": workbook.name,
        "last_modified": workbook.last_modified,
        "sheets": [sheet_to_dict(sheet) for sheet in workbook],
    }


def workbook_from_dict(data: Dict[str, object]) -> Workbook:
    """Reconstruct a :class:`Workbook` from :func:`workbook_to_dict` output."""
    workbook = Workbook(
        name=str(data.get("name", "workbook")),
        last_modified=float(data.get("last_modified", 0.0)),
    )
    for sheet_data in data.get("sheets", []):
        workbook.add_sheet(sheet_from_dict(sheet_data))
    return workbook


def save_workbook_json(workbook: Workbook, path: Union[str, Path]) -> None:
    """Write a workbook to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(workbook_to_dict(workbook), handle, ensure_ascii=False)


def load_workbook_json(path: Union[str, Path]) -> Workbook:
    """Read a workbook previously written by :func:`save_workbook_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return workbook_from_dict(json.load(handle))
