"""JSON (de)serialization of workbooks.

The paper operates on ``.xlsx`` files; this reproduction stores workbooks in
a simple JSON layout so corpora can be persisted and reloaded without any
binary spreadsheet tooling.  The format keeps only non-empty cells keyed by
their A1 address, plus the sheet extent (``n_rows`` x ``n_cols``) — the
extent can exceed the max written cell after deletes, so re-deriving it
from the cells would not round-trip.

Deserialization is *validating*: a ``format_version`` stamp that is
present but not this module's :data:`FORMAT_VERSION`, or a malformed
``cells`` container / cell record, raises the typed
:class:`WorkbookFormatError` instead of silently dropping data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.sheet.addressing import parse_cell_address
from repro.sheet.cell import Cell
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

FORMAT_VERSION = 1


class WorkbookFormatError(ValueError):
    """A workbook/sheet payload is malformed or of an unknown version."""


def sheet_to_dict(sheet: Sheet) -> Dict[str, object]:
    """Serialize a :class:`Sheet` to a JSON-friendly dictionary."""
    return {
        "name": sheet.name,
        "n_rows": sheet.n_rows,
        "n_cols": sheet.n_cols,
        "cells": {addr.to_a1(): cell.to_dict() for addr, cell in sheet.cells()},
    }


def sheet_from_dict(data: Dict[str, object]) -> Sheet:
    """Reconstruct a :class:`Sheet` from :func:`sheet_to_dict` output.

    Raises :class:`WorkbookFormatError` if the payload is not a JSON
    object, its ``cells`` entry is not address->record mapping, or any
    cell record/address cannot be decoded.
    """
    if not isinstance(data, dict):
        raise WorkbookFormatError(
            f"sheet payload must be a JSON object, got {type(data).__name__}"
        )
    sheet = Sheet(str(data.get("name", "Sheet1")))
    cells = data.get("cells", {})
    if not isinstance(cells, dict):
        raise WorkbookFormatError(
            f"sheet {sheet.name!r} has a malformed 'cells' entry: expected an "
            f"object mapping A1 addresses to cell records, got {type(cells).__name__}"
        )
    for a1, cell_data in cells.items():
        if not isinstance(cell_data, dict):
            raise WorkbookFormatError(
                f"sheet {sheet.name!r} cell {a1!r} has a malformed record: "
                f"expected an object, got {type(cell_data).__name__}"
            )
        try:
            address = parse_cell_address(a1)
        except (TypeError, ValueError) as error:
            raise WorkbookFormatError(
                f"sheet {sheet.name!r} has an invalid cell address {a1!r}: {error}"
            ) from error
        try:
            cell = Cell.from_dict(cell_data)
        except (TypeError, ValueError, KeyError) as error:
            raise WorkbookFormatError(
                f"sheet {sheet.name!r} cell {a1!r} cannot be decoded: {error}"
            ) from error
        sheet.set_cell(address, cell)
    # Restore the stored extent, which may exceed the max written cell
    # (deletes never shrink it); writing the private fields mirrors
    # Sheet.copy().  Older payloads without the fields keep the derived
    # extent.
    sheet._n_rows = max(sheet.n_rows, int(data.get("n_rows", 0)))
    sheet._n_cols = max(sheet.n_cols, int(data.get("n_cols", 0)))
    return sheet


def workbook_to_dict(workbook: Workbook) -> Dict[str, object]:
    """Serialize a :class:`Workbook` to a JSON-friendly dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": workbook.name,
        "last_modified": workbook.last_modified,
        "sheets": [sheet_to_dict(sheet) for sheet in workbook],
    }


def workbook_from_dict(data: Dict[str, object]) -> Workbook:
    """Reconstruct a :class:`Workbook` from :func:`workbook_to_dict` output.

    The ``format_version`` stamp is enforced: a payload carrying a version
    other than :data:`FORMAT_VERSION` raises :class:`WorkbookFormatError`
    (payloads without the stamp are accepted for compatibility with bare
    hand-written fixtures).  Malformed ``sheets`` containers and cell
    records raise too — see :func:`sheet_from_dict`.
    """
    if not isinstance(data, dict):
        raise WorkbookFormatError(
            f"workbook payload must be a JSON object, got {type(data).__name__}"
        )
    if "format_version" in data and data["format_version"] != FORMAT_VERSION:
        raise WorkbookFormatError(
            f"workbook payload has format_version {data['format_version']!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    workbook = Workbook(
        name=str(data.get("name", "workbook")),
        last_modified=float(data.get("last_modified", 0.0)),
    )
    sheets = data.get("sheets", [])
    if not isinstance(sheets, list):
        raise WorkbookFormatError(
            f"workbook {workbook.name!r} has a malformed 'sheets' entry: "
            f"expected a list, got {type(sheets).__name__}"
        )
    for sheet_data in sheets:
        workbook.add_sheet(sheet_from_dict(sheet_data))
    return workbook


def save_workbook_json(workbook: Workbook, path: Union[str, Path]) -> None:
    """Write a workbook to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(workbook_to_dict(workbook), handle, ensure_ascii=False)


def load_workbook_json(path: Union[str, Path]) -> Workbook:
    """Read a workbook previously written by :func:`save_workbook_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return workbook_from_dict(json.load(handle))
