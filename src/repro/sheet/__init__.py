"""Spreadsheet substrate: cells, styles, sheets and workbooks.

This package provides the in-memory spreadsheet model that every other part
of the reproduction builds on.  It plays the role of the ``.xlsx`` files and
the Excel object model used by the paper: a :class:`Workbook` holds named
:class:`Sheet` objects, each sheet is a sparse two-dimensional grid of
:class:`Cell` objects, and each cell carries a value, an optional formula
string and a :class:`CellStyle` with the visual attributes (colors, fonts,
sizes) that the representation models consume.
"""

from repro.sheet.addressing import (
    CellAddress,
    RangeAddress,
    column_index_to_letters,
    column_letters_to_index,
    parse_cell_address,
    parse_range_address,
)
from repro.sheet.style import CellStyle
from repro.sheet.cell import Cell, CellType, infer_cell_type
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.sheet.io import (
    WorkbookFormatError,
    workbook_from_dict,
    workbook_to_dict,
    load_workbook_json,
    save_workbook_json,
)

__all__ = [
    "CellAddress",
    "RangeAddress",
    "column_index_to_letters",
    "column_letters_to_index",
    "parse_cell_address",
    "parse_range_address",
    "CellStyle",
    "Cell",
    "CellType",
    "infer_cell_type",
    "Sheet",
    "Workbook",
    "WorkbookFormatError",
    "workbook_from_dict",
    "workbook_to_dict",
    "load_workbook_json",
    "save_workbook_json",
]
