"""The :class:`Cell` value object and cell data-type inference."""

from __future__ import annotations

import datetime as _dt
import enum
import numbers
import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.sheet.style import CellStyle, DEFAULT_STYLE

CellValue = Union[None, bool, int, float, str, _dt.date]

_DATE_RE = re.compile(r"^\d{4}[-/]\d{1,2}[-/]\d{1,2}$")
_NUMERIC_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?%?$")


class CellType(enum.Enum):
    """Coarse data type of a cell, used as a categorical syntactic feature."""

    EMPTY = "empty"
    NUMERIC = "numeric"
    TEXT = "text"
    DATE = "date"
    BOOLEAN = "boolean"
    FORMULA = "formula"
    ERROR = "error"


def infer_cell_type(value: CellValue, formula: Optional[str] = None) -> CellType:
    """Infer the :class:`CellType` of a value (and optional formula).

    A cell that carries a formula is typed :attr:`CellType.FORMULA`
    regardless of its cached value, matching how the featurizer treats
    formula cells as a distinct category.
    """
    if formula:
        return CellType.FORMULA
    if value is None or (isinstance(value, str) and value == ""):
        return CellType.EMPTY
    if isinstance(value, bool):
        return CellType.BOOLEAN
    if isinstance(value, (_dt.date, _dt.datetime)):
        return CellType.DATE
    if isinstance(value, numbers.Number):
        return CellType.NUMERIC
    if isinstance(value, str):
        text = value.strip()
        if text.startswith("#") and text.endswith(("!", "?")):
            return CellType.ERROR
        if _DATE_RE.match(text):
            return CellType.DATE
        if _NUMERIC_RE.match(text):
            return CellType.NUMERIC
        return CellType.TEXT
    return CellType.TEXT


def syntactic_pattern(value: CellValue) -> str:
    """Return the character-class pattern of a value, e.g. ``"DDDD-DD-DD"``.

    Digits map to ``D``, letters to ``L``, whitespace to ``S`` and any other
    character is kept verbatim, mirroring the syntactic-pattern feature in
    Section 4.4.1.
    """
    if value is None:
        return ""
    text = str(value)
    out = []
    for char in text:
        if char.isdigit():
            out.append("D")
        elif char.isalpha():
            out.append("L")
        elif char.isspace():
            out.append("S")
        else:
            out.append(char)
    return "".join(out)


@dataclass
class Cell:
    """A single spreadsheet cell: a value, an optional formula and a style."""

    value: CellValue = None
    formula: Optional[str] = None
    style: CellStyle = field(default_factory=lambda: DEFAULT_STYLE)

    @property
    def cell_type(self) -> CellType:
        """The inferred :class:`CellType` of this cell."""
        return infer_cell_type(self.value, self.formula)

    @property
    def has_formula(self) -> bool:
        """Whether the cell contains a formula."""
        return bool(self.formula)

    @property
    def is_empty(self) -> bool:
        """Whether the cell has neither a value nor a formula."""
        return self.value in (None, "") and not self.formula

    def display_text(self) -> str:
        """Text shown in the grid (the cached value, or empty string)."""
        if self.value is None:
            return ""
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)

    def pattern(self) -> str:
        """Syntactic pattern of the displayed value."""
        return syntactic_pattern(self.value)

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-friendly dictionary."""
        data: Dict[str, object] = {}
        if self.value is not None:
            if isinstance(self.value, (_dt.date, _dt.datetime)):
                data["value"] = self.value.isoformat()
                data["value_kind"] = "date"
            else:
                data["value"] = self.value
        if self.formula:
            data["formula"] = self.formula
        if self.style != DEFAULT_STYLE:
            data["style"] = self.style.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Cell":
        """Reconstruct a cell from :meth:`to_dict` output.

        Strings matching a known Excel-style error code are rehydrated as
        :class:`~repro.formula.errors.ErrorValue`, so a committed error
        keeps its type-based error identity (propagation through the
        engine, ``is_error_value``) across a serialization round-trip.
        """
        value = data.get("value")
        if data.get("value_kind") == "date" and isinstance(value, str):
            value = _dt.date.fromisoformat(value)
        elif isinstance(value, str) and value.startswith("#"):
            # Imported lazily: at module-import time repro.formula (which
            # pulls in this module) may still be mid-initialization.
            from repro.formula.errors import ALL_ERROR_VALUES, ErrorValue

            if value in ALL_ERROR_VALUES:
                value = ErrorValue(value)
        style_data = data.get("style")
        style = CellStyle.from_dict(style_data) if isinstance(style_data, dict) else DEFAULT_STYLE
        return cls(value=value, formula=data.get("formula"), style=style)


#: Shared immutable representation of an empty, unstyled cell.
EMPTY_CELL = Cell()
