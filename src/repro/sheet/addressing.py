"""A1-style cell and range addressing.

Spreadsheet formulas reference other cells using the familiar ``A1``
notation (column letters followed by a 1-based row number) and ranges such
as ``C7:C37``.  Internally the library works with 0-based ``(row, col)``
integer coordinates; this module converts between the two representations
and provides small value objects for addresses and ranges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Tuple

_CELL_RE = re.compile(r"^(\$?)([A-Za-z]{1,3})(\$?)([0-9]+)$")
_RANGE_RE = re.compile(
    r"^(\$?[A-Za-z]{1,3}\$?[0-9]+):(\$?[A-Za-z]{1,3}\$?[0-9]+)$"
)


class AddressError(ValueError):
    """Raised when a cell or range reference cannot be parsed."""


def column_letters_to_index(letters: str) -> int:
    """Convert column letters (``"A"``, ``"AB"``) to a 0-based column index.

    >>> column_letters_to_index("A")
    0
    >>> column_letters_to_index("Z")
    25
    >>> column_letters_to_index("AA")
    26
    """
    if not letters or not letters.isalpha():
        raise AddressError(f"invalid column letters: {letters!r}")
    index = 0
    for char in letters.upper():
        index = index * 26 + (ord(char) - ord("A") + 1)
    return index - 1


def column_index_to_letters(index: int) -> str:
    """Convert a 0-based column index to column letters.

    >>> column_index_to_letters(0)
    'A'
    >>> column_index_to_letters(26)
    'AA'
    """
    if index < 0:
        raise AddressError(f"column index must be non-negative, got {index}")
    letters = []
    remaining = index + 1
    while remaining > 0:
        remaining, digit = divmod(remaining - 1, 26)
        letters.append(chr(ord("A") + digit))
    return "".join(reversed(letters))


@dataclass(frozen=True, order=True)
class CellAddress:
    """A single cell location as 0-based ``(row, col)`` coordinates."""

    row: int
    col: int

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise AddressError(
                f"cell coordinates must be non-negative, got ({self.row}, {self.col})"
            )

    @classmethod
    def from_a1(cls, text: str) -> "CellAddress":
        """Parse an A1-style reference such as ``"C41"`` or ``"$C$41"``."""
        return parse_cell_address(text)

    def to_a1(self) -> str:
        """Render the address in A1 notation."""
        return f"{column_index_to_letters(self.col)}{self.row + 1}"

    def shifted(self, row_delta: int, col_delta: int) -> "CellAddress":
        """Return a new address displaced by the given row/column deltas."""
        return CellAddress(self.row + row_delta, self.col + col_delta)

    def offset_from(self, other: "CellAddress") -> Tuple[int, int]:
        """Return ``(row_delta, col_delta)`` from ``other`` to this address."""
        return (self.row - other.row, self.col - other.col)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.to_a1()


@dataclass(frozen=True)
class RangeAddress:
    """A rectangular cell range, normalized so start <= end on both axes."""

    start: CellAddress
    end: CellAddress

    def __post_init__(self) -> None:
        if self.start.row > self.end.row or self.start.col > self.end.col:
            normalized_start = CellAddress(
                min(self.start.row, self.end.row), min(self.start.col, self.end.col)
            )
            normalized_end = CellAddress(
                max(self.start.row, self.end.row), max(self.start.col, self.end.col)
            )
            object.__setattr__(self, "start", normalized_start)
            object.__setattr__(self, "end", normalized_end)

    @classmethod
    def from_a1(cls, text: str) -> "RangeAddress":
        """Parse an A1-style range such as ``"C7:C37"``."""
        return parse_range_address(text)

    def to_a1(self) -> str:
        """Render the range in A1 notation."""
        return f"{self.start.to_a1()}:{self.end.to_a1()}"

    @property
    def n_rows(self) -> int:
        return self.end.row - self.start.row + 1

    @property
    def n_cols(self) -> int:
        return self.end.col - self.start.col + 1

    @property
    def size(self) -> int:
        return self.n_rows * self.n_cols

    def contains(self, address: CellAddress) -> bool:
        """Whether ``address`` falls inside this range."""
        return (
            self.start.row <= address.row <= self.end.row
            and self.start.col <= address.col <= self.end.col
        )

    def cells(self) -> Iterator[CellAddress]:
        """Iterate over all cell addresses in row-major order."""
        for row in range(self.start.row, self.end.row + 1):
            for col in range(self.start.col, self.end.col + 1):
                yield CellAddress(row, col)

    def shifted(self, row_delta: int, col_delta: int) -> "RangeAddress":
        """Return a new range displaced by the given row/column deltas."""
        return RangeAddress(
            self.start.shifted(row_delta, col_delta),
            self.end.shifted(row_delta, col_delta),
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.to_a1()


def parse_cell_address(text: str) -> CellAddress:
    """Parse ``"C41"`` (optionally with ``$`` anchors) into a :class:`CellAddress`."""
    match = _CELL_RE.match(text.strip())
    if not match:
        raise AddressError(f"invalid cell reference: {text!r}")
    __, letters, __, row_digits = match.groups()
    row = int(row_digits) - 1
    if row < 0:
        raise AddressError(f"row numbers are 1-based, got {text!r}")
    return CellAddress(row, column_letters_to_index(letters))


def parse_range_address(text: str) -> RangeAddress:
    """Parse ``"C7:C37"`` into a :class:`RangeAddress`."""
    match = _RANGE_RE.match(text.strip())
    if not match:
        raise AddressError(f"invalid range reference: {text!r}")
    start_text, end_text = match.groups()
    return RangeAddress(parse_cell_address(start_text), parse_cell_address(end_text))


def is_cell_reference(text: str) -> bool:
    """Whether ``text`` looks like a single-cell A1 reference."""
    return bool(_CELL_RE.match(text.strip()))


def is_range_reference(text: str) -> bool:
    """Whether ``text`` looks like an A1 range reference."""
    return bool(_RANGE_RE.match(text.strip()))
