"""The :class:`Sheet`: a sparse two-dimensional grid of cells."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.sheet.addressing import CellAddress, RangeAddress, parse_cell_address
from repro.sheet.cell import Cell, CellType, CellValue, EMPTY_CELL
from repro.sheet.style import CellStyle

AddressLike = Union[str, CellAddress, Tuple[int, int]]


def _to_address(address: AddressLike) -> CellAddress:
    """Normalize the accepted address spellings to a :class:`CellAddress`."""
    if isinstance(address, CellAddress):
        return address
    if isinstance(address, str):
        return parse_cell_address(address)
    row, col = address
    return CellAddress(int(row), int(col))


class Sheet:
    """A single sheet: a named, sparse grid of :class:`Cell` objects.

    Cells are stored in a dictionary keyed by :class:`CellAddress`; any
    address not present reads as an empty cell.  The sheet tracks its used
    extent (``n_rows`` x ``n_cols``) which grows as cells are written.
    """

    def __init__(self, name: str = "Sheet1") -> None:
        self.name = name
        self._cells: Dict[CellAddress, Cell] = {}
        self._n_rows = 0
        self._n_cols = 0
        self._version = 0
        #: Content hash stamped by the wire layer's ``SheetInterner`` on
        #: decoded sheets (``None`` for locally built sheets).  Paired with
        #: :attr:`version`, it lets query-embedding caches recognize two
        #: distinct sheet objects with byte-identical content.
        self.content_key: Optional[str] = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped by every structural write.

        Consumers that derive state from the sheet (notably the formula
        recalculation engine's dependency graph) watermark this counter to
        detect mutations made behind their back and resynchronize instead
        of serving stale values.  In-place edits of a :class:`Cell` object
        obtained from :meth:`get` are *not* observable here — mutate
        through :meth:`set`/:meth:`set_cell` (or the engine) instead.
        """
        return self._version

    # ------------------------------------------------------------------ access

    def get(self, address: AddressLike) -> Cell:
        """Return the cell at ``address`` (an empty cell if unset)."""
        return self._cells.get(_to_address(address), EMPTY_CELL)

    def set(
        self,
        address: AddressLike,
        value: CellValue = None,
        formula: Optional[str] = None,
        style: Optional[CellStyle] = None,
    ) -> Cell:
        """Create or replace the cell at ``address`` and return it."""
        addr = _to_address(address)
        cell = Cell(value=value, formula=formula, style=style or CellStyle())
        self._cells[addr] = cell
        self._n_rows = max(self._n_rows, addr.row + 1)
        self._n_cols = max(self._n_cols, addr.col + 1)
        self._version += 1
        return cell

    def set_cell(self, address: AddressLike, cell: Cell) -> None:
        """Place an already-constructed :class:`Cell` at ``address``."""
        addr = _to_address(address)
        self._cells[addr] = cell
        self._n_rows = max(self._n_rows, addr.row + 1)
        self._n_cols = max(self._n_cols, addr.col + 1)
        self._version += 1

    def delete(self, address: AddressLike) -> None:
        """Remove the cell at ``address`` if present (extent is not shrunk)."""
        if self._cells.pop(_to_address(address), None) is not None:
            self._version += 1

    def __getitem__(self, address: AddressLike) -> Cell:
        return self.get(address)

    def __contains__(self, address: AddressLike) -> bool:
        return _to_address(address) in self._cells

    # ------------------------------------------------------------------ extent

    @property
    def n_rows(self) -> int:
        """Number of rows in the used extent."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """Number of columns in the used extent."""
        return self._n_cols

    @property
    def n_cells(self) -> int:
        """Number of non-empty (stored) cells."""
        return len(self._cells)

    def used_range(self) -> Optional[RangeAddress]:
        """The bounding range of all stored cells, or ``None`` if empty."""
        if not self._cells:
            return None
        rows = [addr.row for addr in self._cells]
        cols = [addr.col for addr in self._cells]
        return RangeAddress(
            CellAddress(min(rows), min(cols)), CellAddress(max(rows), max(cols))
        )

    # --------------------------------------------------------------- iteration

    def cells(self) -> Iterator[Tuple[CellAddress, Cell]]:
        """Iterate ``(address, cell)`` pairs for all stored cells."""
        return iter(sorted(self._cells.items()))

    def formula_cells(self) -> List[Tuple[CellAddress, Cell]]:
        """All cells that contain formulas, sorted by address."""
        return [(addr, cell) for addr, cell in self.cells() if cell.has_formula]

    def cells_in_range(self, cell_range: RangeAddress) -> Iterator[Tuple[CellAddress, Cell]]:
        """Iterate ``(address, cell)`` for every address in ``cell_range``.

        Empty addresses yield the shared empty cell, so the iteration always
        covers the full rectangle.
        """
        for addr in cell_range.cells():
            yield addr, self._cells.get(addr, EMPTY_CELL)

    def values_in_range(self, cell_range: RangeAddress) -> List[CellValue]:
        """The values of every cell in ``cell_range`` in row-major order."""
        return [cell.value for __, cell in self.cells_in_range(cell_range)]

    def row_values(self, row: int) -> List[CellValue]:
        """Values in a row across the used column extent."""
        return [self.get((row, col)).value for col in range(self._n_cols)]

    def column_values(self, col: int) -> List[CellValue]:
        """Values in a column across the used row extent."""
        return [self.get((row, col)).value for row in range(self._n_rows)]

    # ------------------------------------------------------------ modification

    def insert_rows(self, at_row: int, count: int = 1) -> None:
        """Insert ``count`` empty rows starting at ``at_row`` (shifts cells down)."""
        if count <= 0:
            return
        moved: Dict[CellAddress, Cell] = {}
        for addr, cell in self._cells.items():
            if addr.row >= at_row:
                moved[addr.shifted(count, 0)] = cell
            else:
                moved[addr] = cell
        self._cells = moved
        self._n_rows += count
        self._version += 1

    def delete_rows(self, at_row: int, count: int = 1) -> None:
        """Delete ``count`` rows starting at ``at_row`` (shifts cells up)."""
        if count <= 0:
            return
        moved: Dict[CellAddress, Cell] = {}
        for addr, cell in self._cells.items():
            if addr.row < at_row:
                moved[addr] = cell
            elif addr.row >= at_row + count:
                moved[addr.shifted(-count, 0)] = cell
        self._cells = moved
        self._n_rows = max(0, self._n_rows - count)
        self._version += 1

    def insert_cols(self, at_col: int, count: int = 1) -> None:
        """Insert ``count`` empty columns starting at ``at_col``."""
        if count <= 0:
            return
        moved: Dict[CellAddress, Cell] = {}
        for addr, cell in self._cells.items():
            if addr.col >= at_col:
                moved[addr.shifted(0, count)] = cell
            else:
                moved[addr] = cell
        self._cells = moved
        self._n_cols += count
        self._version += 1

    def delete_cols(self, at_col: int, count: int = 1) -> None:
        """Delete ``count`` columns starting at ``at_col``."""
        if count <= 0:
            return
        moved: Dict[CellAddress, Cell] = {}
        for addr, cell in self._cells.items():
            if addr.col < at_col:
                moved[addr] = cell
            elif addr.col >= at_col + count:
                moved[addr.shifted(0, -count)] = cell
        self._cells = moved
        self._n_cols = max(0, self._n_cols - count)
        self._version += 1

    def copy(self, name: Optional[str] = None) -> "Sheet":
        """Return a shallow-per-cell copy of this sheet."""
        clone = Sheet(name or self.name)
        for addr, cell in self._cells.items():
            clone.set_cell(addr, Cell(value=cell.value, formula=cell.formula, style=cell.style))
        clone._n_rows = self._n_rows
        clone._n_cols = self._n_cols
        return clone

    # ------------------------------------------------------------------ counts

    def count_by_type(self) -> Dict[CellType, int]:
        """Histogram of stored cells by :class:`CellType`."""
        counts: Dict[CellType, int] = {}
        for __, cell in self._cells.items():
            counts[cell.cell_type] = counts.get(cell.cell_type, 0) + 1
        return counts

    def n_formulas(self) -> int:
        """Number of formula cells in the sheet."""
        return sum(1 for __, cell in self._cells.items() if cell.has_formula)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Sheet(name={self.name!r}, rows={self._n_rows}, cols={self._n_cols}, "
            f"cells={len(self._cells)})"
        )
