"""Neural-network layers with manual forward/backward passes.

Conventions
-----------
* All tensors are ``float32`` NumPy arrays with a leading batch dimension.
* ``forward(x, training)`` caches whatever the backward pass needs.
* ``backward(grad_output)`` returns the gradient with respect to the layer
  input and *accumulates* parameter gradients into ``layer.grads`` (so the
  same layer can be traversed several times per step, as triplet training
  requires, before the optimizer consumes the accumulated gradients).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        #: Learnable parameters by name.
        self.params: Dict[str, np.ndarray] = {}
        #: Accumulated gradients, same keys as :attr:`params`.
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for name, value in self.params.items():
            self.grads[name] = np.zeros_like(value)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def _he_init(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """He-normal initialization, appropriate for ReLU networks."""
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.standard_normal(shape) * scale).astype(np.float32)


class Linear(Layer):
    """Fully-connected layer: ``y = x @ W + b`` on the last dimension."""

    def __init__(self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = _he_init(rng, in_features, (in_features, out_features))
        self.params["b"] = np.zeros(out_features, dtype=np.float32)
        self.zero_grad()
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None, "backward called before forward"
        x = self._input
        flat_x = x.reshape(-1, self.in_features)
        flat_grad = grad_output.reshape(-1, self.out_features)
        self.grads["W"] += (flat_x.T @ flat_grad).astype(np.float32)
        self.grads["b"] += flat_grad.sum(axis=0).astype(np.float32)
        return (grad_output @ self.params["W"].T).reshape(x.shape)


class PerCellLinear(Linear):
    """Linear layer applied independently to every cell of a window.

    Input shape ``(batch, rows, cols, in_features)``; output shape
    ``(batch, rows, cols, out_features)``.  This is the "dimension
    reduction" stage of the paper's architecture: the same MLP weights are
    shared across all cells of the view window.
    """

    # Linear already broadcasts over leading dimensions; the subclass exists
    # to make the architectural role explicit in model definitions.


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad_output, 0.0).astype(np.float32)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(x).astype(np.float32)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return (grad_output * (1.0 - self._output**2)).astype(np.float32)


class Dropout(Layer):
    """Inverted dropout (identity at inference time)."""

    def __init__(self, rate: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return (grad_output * self._mask).astype(np.float32)


class Flatten(Layer):
    """Flattens everything but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad_output.reshape(self._shape)


class Conv2D(Layer):
    """2-D convolution with 'same' padding and stride 1 (channels-last).

    Input shape ``(batch, rows, cols, in_channels)``; output shape
    ``(batch, rows, cols, out_channels)``.  Implemented with im2col so the
    heavy lifting is a single matrix multiply.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = _he_init(rng, fan_in, (fan_in, out_channels))
        self.params["b"] = np.zeros(out_channels, dtype=np.float32)
        self.zero_grad()
        self._columns: Optional[np.ndarray] = None
        self._input_shape: Optional[tuple] = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, rows, cols, channels = x.shape
        k = self.kernel_size
        pad = k // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        columns = np.empty((batch, rows, cols, k * k * channels), dtype=np.float32)
        for di in range(k):
            for dj in range(k):
                patch = padded[:, di : di + rows, dj : dj + cols, :]
                start = (di * k + dj) * channels
                columns[..., start : start + channels] = patch
        return columns

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        self._columns = self._im2col(x.astype(np.float32))
        return self._columns @ self.params["W"] + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._columns is not None and self._input_shape is not None
        batch, rows, cols, __ = self._input_shape
        k = self.kernel_size
        channels = self.in_channels
        fan_in = k * k * channels

        flat_columns = self._columns.reshape(-1, fan_in)
        flat_grad = grad_output.reshape(-1, self.out_channels)
        self.grads["W"] += (flat_columns.T @ flat_grad).astype(np.float32)
        self.grads["b"] += flat_grad.sum(axis=0).astype(np.float32)

        grad_columns = (grad_output @ self.params["W"].T).reshape(
            batch, rows, cols, fan_in
        )
        pad = k // 2
        grad_padded = np.zeros((batch, rows + 2 * pad, cols + 2 * pad, channels), dtype=np.float32)
        for di in range(k):
            for dj in range(k):
                start = (di * k + dj) * channels
                grad_padded[:, di : di + rows, dj : dj + cols, :] += grad_columns[
                    ..., start : start + channels
                ]
        if pad:
            return grad_padded[:, pad:-pad, pad:-pad, :]
        return grad_padded


class AvgPool2D(Layer):
    """Average pooling with a square window and matching stride.

    Input rows/cols are truncated to a multiple of the pool size (matching
    common framework behaviour with ``floor`` output sizing).
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        batch, rows, cols, channels = x.shape
        p = self.pool_size
        out_rows, out_cols = rows // p, cols // p
        trimmed = x[:, : out_rows * p, : out_cols * p, :]
        reshaped = trimmed.reshape(batch, out_rows, p, out_cols, p, channels)
        return reshaped.mean(axis=(2, 4)).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input_shape is not None
        batch, rows, cols, channels = self._input_shape
        p = self.pool_size
        out_rows, out_cols = rows // p, cols // p
        grad_input = np.zeros(self._input_shape, dtype=np.float32)
        expanded = (
            grad_output[:, :, None, :, None, :]
            * np.float32(1.0 / (p * p))
        )
        expanded = np.broadcast_to(
            expanded, (batch, out_rows, p, out_cols, p, channels)
        ).reshape(batch, out_rows * p, out_cols * p, channels)
        grad_input[:, : out_rows * p, : out_cols * p, :] = expanded
        return grad_input


class L2Normalize(Layer):
    """L2-normalizes each row of a ``(batch, features)`` matrix."""

    def __init__(self, epsilon: float = 1e-8) -> None:
        super().__init__()
        self.epsilon = epsilon
        self._input: Optional[np.ndarray] = None
        self._norms: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x
        self._norms = np.sqrt(np.sum(x**2, axis=-1, keepdims=True)) + self.epsilon
        return (x / self._norms).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None and self._norms is not None
        x, norms = self._input, self._norms
        normalized = x / norms
        dot = np.sum(grad_output * normalized, axis=-1, keepdims=True)
        return ((grad_output - normalized * dot) / norms).astype(np.float32)
