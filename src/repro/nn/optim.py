"""Optimizers: plain SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.nn.sequential import Sequential


class Optimizer:
    """Base optimizer: updates a :class:`Sequential` model in place."""

    def __init__(self, model: Sequential, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.model = model
        self.learning_rate = learning_rate

    def step(self) -> None:
        """Apply one update using the gradients accumulated in the model."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear the model's accumulated gradients."""
        self.model.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        model: Sequential,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        for name, param, grad in self.model.parameter_gradients():
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + update
                self._velocity[name] = velocity
                update = velocity
            param -= self.learning_rate * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        model: Sequential,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[str, np.ndarray] = {}
        self._second_moment: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        for name, param, grad in self.model.parameter_gradients():
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            first = self._first_moment.get(name)
            second = self._second_moment.get(name)
            if first is None:
                first = np.zeros_like(param)
                second = np.zeros_like(param)
            first = self.beta1 * first + (1 - self.beta1) * grad
            second = self.beta2 * second + (1 - self.beta2) * (grad * grad)
            self._first_moment[name] = first
            self._second_moment[name] = second
            first_hat = first / (1 - self.beta1**self._step_count)
            second_hat = second / (1 - self.beta2**self._step_count)
            param -= self.learning_rate * first_hat / (np.sqrt(second_hat) + self.epsilon)
