"""Triplet loss (Equation 1 of the paper) and helpers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pairwise_squared_distances(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between all rows of ``left`` and ``right``."""
    left_sq = np.sum(left**2, axis=1, keepdims=True)
    right_sq = np.sum(right**2, axis=1, keepdims=True)
    cross = left @ right.T
    distances = left_sq + right_sq.T - 2.0 * cross
    return np.maximum(distances, 0.0)


def triplet_loss_and_grad(
    anchor: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    margin: float = 0.5,
) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Batch triplet loss and its gradients with respect to the embeddings.

    Implements  ``l = max(||phi_A - phi_P||^2 - ||phi_A - phi_N||^2 + m, 0)``
    averaged over the batch, returning ``(loss, d_anchor, d_positive,
    d_negative)``.  Triplets already satisfying the margin contribute zero
    loss and zero gradient.
    """
    if anchor.shape != positive.shape or anchor.shape != negative.shape:
        raise ValueError("anchor, positive and negative must have identical shapes")
    batch = anchor.shape[0]
    if batch == 0:
        zeros = np.zeros_like(anchor)
        return 0.0, zeros, zeros, zeros

    diff_ap = anchor - positive
    diff_an = anchor - negative
    dist_ap = np.sum(diff_ap**2, axis=1)
    dist_an = np.sum(diff_an**2, axis=1)
    per_triplet = dist_ap - dist_an + margin
    active = per_triplet > 0.0
    loss = float(np.sum(np.maximum(per_triplet, 0.0)) / batch)

    scale = (active.astype(np.float32) * (2.0 / batch))[:, None]
    d_anchor = scale * (diff_ap - diff_an)
    d_positive = scale * (-diff_ap)
    d_negative = scale * diff_an
    return loss, d_anchor.astype(np.float32), d_positive.astype(np.float32), d_negative.astype(np.float32)


def triplet_losses(
    anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray, margin: float = 0.5
) -> np.ndarray:
    """Per-triplet (un-averaged) losses, used by the semi-hard miner."""
    dist_ap = np.sum((anchor - positive) ** 2, axis=1)
    dist_an = np.sum((anchor - negative) ** 2, axis=1)
    return np.maximum(dist_ap - dist_an + margin, 0.0)
