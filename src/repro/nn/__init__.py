"""Minimal NumPy neural-network substrate.

The paper trains its spreadsheet-representation models in a deep-learning
framework; no such framework is available offline, so this package provides
the required pieces implemented directly on NumPy with manual
backpropagation:

* layers — :class:`Linear`, :class:`ReLU`, :class:`Tanh`, :class:`Conv2D`,
  :class:`AvgPool2D`, :class:`Flatten`, :class:`PerCellLinear`,
  :class:`L2Normalize`;
* :class:`Sequential` containers with parameter collection and persistence;
* optimizers — :class:`SGD` and :class:`Adam`;
* the triplet loss with its gradient and the semi-hard triplet miner
  (Section 4.5 / FaceNet-style training).
"""

from repro.nn.layers import (
    Layer,
    Linear,
    ReLU,
    Tanh,
    Flatten,
    Conv2D,
    AvgPool2D,
    PerCellLinear,
    L2Normalize,
    Dropout,
)
from repro.nn.sequential import Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.losses import triplet_loss_and_grad, pairwise_squared_distances
from repro.nn.mining import semi_hard_triplets, TripletBatch

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Tanh",
    "Flatten",
    "Conv2D",
    "AvgPool2D",
    "PerCellLinear",
    "L2Normalize",
    "Dropout",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "triplet_loss_and_grad",
    "pairwise_squared_distances",
    "semi_hard_triplets",
    "TripletBatch",
]
