"""The :class:`Sequential` container and model persistence."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.nn.layers import Layer


class Sequential(Layer):
    """Chains layers; forward and backward traverse them in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        super().__init__()
        self.layers: List[Layer] = list(layers)

    # --------------------------------------------------------------- compute

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------ parameters

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_parameters(self) -> List[Tuple[str, np.ndarray]]:
        """``(name, array)`` pairs, names unique across the container."""
        params: List[Tuple[str, np.ndarray]] = []
        for index, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                params.append((f"layer{index}.{name}", value))
        return params

    def parameter_gradients(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """``(name, parameter, gradient)`` triples for the optimizer."""
        triples: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for index, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                triples.append((f"layer{index}.{name}", value, layer.grads[name]))
        return triples

    def n_parameters(self) -> int:
        """Total number of learnable scalar parameters."""
        return int(sum(value.size for __, value in self.named_parameters()))

    # ------------------------------------------------------------ persistence

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters keyed by their unique names."""
        return {name: value.copy() for name, value in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (shapes must match)."""
        for index, layer in enumerate(self.layers):
            for name in layer.params:
                key = f"layer{index}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key!r} in state dict")
                value = np.asarray(state[key], dtype=np.float32)
                if value.shape != layer.params[name].shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{value.shape} vs {layer.params[name].shape}"
                    )
                layer.params[name] = value
            layer.zero_grad()

    def save(self, path: Union[str, Path]) -> None:
        """Persist parameters to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **self.state_dict())

    def load(self, path: Union[str, Path]) -> None:
        """Load parameters previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            self.load_state_dict({key: data[key] for key in data.files})
