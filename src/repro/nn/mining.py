"""Semi-hard triplet mining (FaceNet-style), as used in Algorithm 1.

Given positive pairs ``(A, P)`` and a pool of negatives, the miner embeds
all candidates with the *current* model and keeps, for each positive pair,
a negative whose triplet loss is strictly between 0 and the margin — i.e.
the negative is further from the anchor than the positive, but not yet by
the full margin ("semi-hard").  When no semi-hard negative exists, the
hardest negative that still has positive loss is used; pairs whose every
negative already satisfies the margin are skipped for that step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.losses import pairwise_squared_distances


@dataclass
class TripletBatch:
    """Indices of the selected triplets into the candidate arrays."""

    anchor_indices: np.ndarray
    positive_indices: np.ndarray
    negative_indices: np.ndarray

    def __len__(self) -> int:
        return len(self.anchor_indices)


def semi_hard_triplets(
    anchor_embeddings: np.ndarray,
    positive_embeddings: np.ndarray,
    negative_embeddings: np.ndarray,
    margin: float = 0.5,
    max_triplets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> TripletBatch:
    """Select one negative per (anchor, positive) pair under semi-hard rules.

    ``anchor_embeddings[i]`` and ``positive_embeddings[i]`` are a positive
    pair; negatives are drawn from ``negative_embeddings`` (any row may serve
    any anchor).  Returns index triples; pairs with no usable negative are
    omitted.
    """
    rng = rng or np.random.default_rng(0)
    n_pairs = anchor_embeddings.shape[0]
    if n_pairs == 0 or negative_embeddings.shape[0] == 0:
        empty = np.zeros(0, dtype=np.int64)
        return TripletBatch(empty, empty.copy(), empty.copy())

    dist_ap = np.sum((anchor_embeddings - positive_embeddings) ** 2, axis=1)
    dist_an = pairwise_squared_distances(anchor_embeddings, negative_embeddings)
    # loss[i, j] for pairing anchor i with negative j
    losses = dist_ap[:, None] - dist_an + margin

    anchors: List[int] = []
    positives: List[int] = []
    negatives: List[int] = []
    for pair_index in range(n_pairs):
        row = losses[pair_index]
        semi_hard = np.where((row > 0.0) & (row < margin))[0]
        if semi_hard.size:
            chosen = int(rng.choice(semi_hard))
        else:
            active = np.where(row > 0.0)[0]
            if not active.size:
                continue
            # hardest among the active (largest loss), to keep learning moving
            chosen = int(active[np.argmax(row[active])])
        anchors.append(pair_index)
        positives.append(pair_index)
        negatives.append(chosen)

    if max_triplets is not None and len(anchors) > max_triplets:
        keep = rng.choice(len(anchors), size=max_triplets, replace=False)
        anchors = [anchors[i] for i in keep]
        positives = [positives[i] for i in keep]
        negatives = [negatives[i] for i in keep]

    return TripletBatch(
        np.asarray(anchors, dtype=np.int64),
        np.asarray(positives, dtype=np.int64),
        np.asarray(negatives, dtype=np.int64),
    )
