"""Table error detection: flag formulas that disagree with similar sheets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ann import ExactIndex
from repro.formula.template import extract_template
from repro.formula.tokenizer import FormulaSyntaxError
from repro.models.encoder import SheetEncoder
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class FormulaAnomaly:
    """A formula cell whose template disagrees with its similar-sheet peers."""

    cell: CellAddress
    formula: str
    expected_template: str
    observed_template: str
    reference_sheet: str
    reference_cell: str
    severity: float


class FormulaErrorDetector:
    """Flags likely formula errors by cross-checking against similar sheets.

    For every formula cell on the audited sheet, the detector retrieves the
    most similar reference sheets (coarse model), finds the best-matching
    formula region among them (fine model), and compares formula
    *templates*.  A mismatch — e.g. ``SUM(_:_)`` on the audited sheet where
    every similar sheet uses ``SUM(_:_)+_`` or a differently-shaped range —
    is reported as an anomaly with a severity proportional to how closely
    the regions match (a near-identical region with a different template is
    a stronger signal than a loose match).
    """

    def __init__(
        self,
        encoder: SheetEncoder,
        top_k_sheets: int = 3,
        max_region_distance: float = 0.5,
    ) -> None:
        self.encoder = encoder
        self.top_k_sheets = top_k_sheets
        self.max_region_distance = max_region_distance
        self._sheets: List[Tuple[str, Sheet]] = []
        self._index: Optional[ExactIndex] = None

    # ---------------------------------------------------------------- offline

    def fit(self, reference_workbooks: Sequence[Union[Workbook, Sheet]]) -> None:
        """Index the reference sheets used as the consistency oracle."""
        self._sheets = []
        self._index = ExactIndex(self.encoder.coarse_dimension)
        for item in reference_workbooks:
            sheets = [item] if isinstance(item, Sheet) else list(item)
            source = item.name if isinstance(item, Workbook) else "<sheet>"
            for sheet in sheets:
                self._index.add(len(self._sheets), self.encoder.embed_sheet(sheet))
                self._sheets.append((source, sheet))

    @property
    def n_reference_sheets(self) -> int:
        """Number of indexed reference sheets."""
        return len(self._sheets)

    # ----------------------------------------------------------------- online

    def _template(self, formula: str) -> Optional[str]:
        try:
            return extract_template(formula).signature
        except FormulaSyntaxError:
            return None

    def audit(self, sheet: Sheet) -> List[FormulaAnomaly]:
        """Audit every formula cell of ``sheet`` and return the anomalies found."""
        if self._index is None or len(self._index) == 0:
            return []
        hits = self._index.search(self.encoder.embed_sheet(sheet), k=self.top_k_sheets)
        candidates: List[Tuple[str, Sheet, CellAddress, str, np.ndarray]] = []
        for hit in hits:
            source, reference_sheet = self._sheets[int(hit.key)]
            if reference_sheet is sheet:
                continue
            formula_cells = reference_sheet.formula_cells()
            centers = [address for address, __ in formula_cells]
            if not centers:
                continue
            embeddings = self.encoder.featurizer.featurize_regions(
                reference_sheet, centers, blank_center=True
            )
            vectors = self.encoder.fine_model.forward(embeddings)
            for (address, cell), vector in zip(formula_cells, vectors):
                candidates.append((source, reference_sheet, address, cell.formula or "", vector))
        if not candidates:
            return []

        anomalies: List[FormulaAnomaly] = []
        for address, cell in sheet.formula_cells():
            observed_template = self._template(cell.formula or "")
            if observed_template is None:
                continue
            window = self.encoder.featurizer.featurize_region(sheet, address, blank_center=True)
            target_vector = self.encoder.fine_model.forward(window[None, ...])[0]
            best: Optional[Tuple[float, Tuple[str, Sheet, CellAddress, str, np.ndarray]]] = None
            for candidate in candidates:
                distance = float(np.sum((candidate[4] - target_vector) ** 2))
                if best is None or distance < best[0]:
                    best = (distance, candidate)
            if best is None or best[0] > self.max_region_distance:
                continue
            distance, (source, reference_sheet, reference_cell, reference_formula, __) = best
            expected_template = self._template(reference_formula)
            if expected_template is None or expected_template == observed_template:
                continue
            anomalies.append(
                FormulaAnomaly(
                    cell=address,
                    formula=cell.formula or "",
                    expected_template=expected_template,
                    observed_template=observed_template,
                    reference_sheet=f"{source}/{reference_sheet.name}",
                    reference_cell=reference_cell.to_a1(),
                    severity=max(0.0, 1.0 - distance / self.max_region_distance),
                )
            )
        return sorted(anomalies, key=lambda anomaly: -anomaly.severity)
