"""Extensions built on the similar-sheet / similar-region primitives.

The paper's conclusion lists follow-on applications of its two learned
primitives beyond formula recommendation: content auto-filling and table
error detection.  This package implements both on top of the same trained
:class:`~repro.models.SheetEncoder`:

* :class:`ValueAutoFill` recommends a *value* for an empty cell by aligning
  it with the corresponding cell on the most similar region of a similar
  sheet;
* :class:`FormulaErrorDetector` flags formula cells whose formula template
  disagrees with the template used at the aligned location on similar
  sheets (a strong signal of copy/paste and range-omission mistakes).
"""

from repro.extensions.autofill import AutoFillSuggestion, ValueAutoFill
from repro.extensions.error_detection import FormulaAnomaly, FormulaErrorDetector

__all__ = [
    "ValueAutoFill",
    "AutoFillSuggestion",
    "FormulaErrorDetector",
    "FormulaAnomaly",
]
