"""Content auto-fill: suggest values for empty cells from similar sheets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ann import ExactIndex
from repro.models.encoder import SheetEncoder
from repro.sheet.addressing import CellAddress
from repro.sheet.cell import CellValue
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class AutoFillSuggestion:
    """A suggested value for an empty target cell."""

    value: CellValue
    confidence: float
    reference_sheet: str
    reference_cell: str


class ValueAutoFill:
    """Suggests cell *values* by similar-sheet / similar-region alignment.

    The offline phase indexes reference sheets at sheet level; the online
    phase retrieves the most similar sheets, aligns the target cell's region
    against the same-location region on each candidate, and returns the
    value stored at the best-aligned cell.  This is the "content
    auto-filling" application sketched in the paper's conclusion, and it
    reuses the trained coarse/fine models unchanged.
    """

    def __init__(self, encoder: SheetEncoder, top_k_sheets: int = 3, acceptance_threshold: float = 0.5) -> None:
        self.encoder = encoder
        self.top_k_sheets = top_k_sheets
        self.acceptance_threshold = acceptance_threshold
        self._sheets: List[Tuple[str, Sheet]] = []
        self._index: Optional[ExactIndex] = None

    def fit(self, reference_workbooks: Sequence[Union[Workbook, Sheet]]) -> None:
        """Index the organization's existing sheets."""
        self._sheets = []
        self._index = ExactIndex(self.encoder.coarse_dimension)
        for item in reference_workbooks:
            sheets = [item] if isinstance(item, Sheet) else list(item)
            source = item.name if isinstance(item, Workbook) else "<sheet>"
            for sheet in sheets:
                self._index.add(len(self._sheets), self.encoder.embed_sheet(sheet))
                self._sheets.append((source, sheet))

    @property
    def n_reference_sheets(self) -> int:
        """Number of indexed reference sheets."""
        return len(self._sheets)

    def suggest(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[AutoFillSuggestion]:
        """Suggest a value for ``target_cell`` (``None`` when unsure)."""
        if self._index is None or len(self._index) == 0:
            return None
        hits = self._index.search(self.encoder.embed_sheet(target_sheet), k=self.top_k_sheets)
        target_vector = self.encoder.embed_region(target_sheet, target_cell)
        best: Optional[Tuple[float, str, Sheet, CellAddress]] = None
        for hit in hits:
            source, sheet = self._sheets[int(hit.key)]
            if target_cell.row >= sheet.n_rows + 8 or target_cell.col >= sheet.n_cols + 4:
                continue
            candidate_cell = target_cell
            candidate = sheet.get(candidate_cell)
            if candidate.is_empty:
                continue
            distance = float(
                np.sum((self.encoder.embed_region(sheet, candidate_cell) - target_vector) ** 2)
            )
            if best is None or distance < best[0]:
                best = (distance, source, sheet, candidate_cell)
        if best is None or best[0] > self.acceptance_threshold:
            return None
        distance, source, sheet, cell_address = best
        return AutoFillSuggestion(
            value=sheet.get(cell_address).value,
            confidence=max(0.0, 1.0 - distance / 4.0),
            reference_sheet=f"{source}/{sheet.name}",
            reference_cell=cell_address.to_a1(),
        )
