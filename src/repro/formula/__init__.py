"""Formula substrate: parsing, templates, evaluation and classification.

This package implements the spreadsheet-formula machinery the paper relies
on: a tokenizer and recursive-descent parser producing an AST, formula
*templates* (the AST with parameter "holes", Section 3.2), template
instantiation used by prediction step S3, an evaluator with a library of
common spreadsheet functions, and the classification utilities used by the
sensitivity analyses (formula complexity and formula type, Figures 10-11).

Evaluation is backed by :class:`~repro.formula.engine.FormulaEngine`, an
incremental dependency-graph recalculation engine with Excel-style error
values (``repro.formula.errors``); :class:`FormulaEvaluator` is the thin
compatibility facade over it.
"""

from repro.formula.tokenizer import Token, TokenType, tokenize, FormulaSyntaxError
from repro.formula.ast_nodes import (
    ASTNode,
    BinaryOp,
    UnaryOp,
    FunctionCall,
    CellReference,
    RangeReference,
    NumberLiteral,
    StringLiteral,
    BooleanLiteral,
    node_count,
    walk,
)
from repro.formula.parser import parse_formula
from repro.formula.template import (
    FormulaTemplate,
    extract_template,
    instantiate_template,
    formula_references,
    shift_formula,
)
from repro.formula.errors import (
    ALL_ERROR_VALUES,
    CYCLE_ERROR,
    DIV0_ERROR,
    ErrorValue,
    NAME_ERROR,
    REF_ERROR,
    VALUE_ERROR,
    is_error_value,
)
from repro.formula.engine import FormulaEngine, RecalcReport
from repro.formula.evaluator import FormulaEvaluator, EvaluationError
from repro.formula.classify import (
    FormulaCategory,
    classify_formula,
    formula_complexity,
    complexity_bucket,
    functions_used,
)

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "FormulaSyntaxError",
    "ASTNode",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "CellReference",
    "RangeReference",
    "NumberLiteral",
    "StringLiteral",
    "BooleanLiteral",
    "node_count",
    "walk",
    "parse_formula",
    "FormulaTemplate",
    "extract_template",
    "instantiate_template",
    "formula_references",
    "shift_formula",
    "FormulaEvaluator",
    "EvaluationError",
    "FormulaEngine",
    "RecalcReport",
    "ErrorValue",
    "is_error_value",
    "ALL_ERROR_VALUES",
    "DIV0_ERROR",
    "REF_ERROR",
    "CYCLE_ERROR",
    "VALUE_ERROR",
    "NAME_ERROR",
    "FormulaCategory",
    "classify_formula",
    "formula_complexity",
    "complexity_bucket",
    "functions_used",
]
