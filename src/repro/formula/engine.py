"""Incremental dependency-graph recalculation engine.

The seed evaluator (`repro.formula.evaluator`) treated every evaluation as
a one-shot: a per-instance value cache that was never invalidated when the
sheet mutated, exception-based failures that aborted whole-sheet
recalculation, and ``recalculate()`` silently keeping stale values when a
formula failed.  :class:`FormulaEngine` replaces that substrate with the
model real spreadsheets use:

* **Dependency graph.**  Every formula cell's AST is parsed once and its
  *precedents* — the single cells and rectangular ranges it references —
  are extracted into a dependents/precedents graph.  Single-cell edges are
  indexed exactly; range edges are kept per formula and matched by
  containment, so a formula watching ``C7:C37`` is found when any cell of
  that rectangle changes.
* **Dirty-set propagation.**  :meth:`set_value` / :meth:`set_formula`
  mutate the sheet *through* the engine, marking the edited cell's
  dependents dirty.  :meth:`recalculate` expands the dirty set through the
  dependents relation and recomputes only that closure — a single-cell
  edit costs O(dirty subgraph), not O(all formulas).  Recomputation runs
  as a memoized depth-first pass, which visits the closure in topological
  (precedents-first) order and detects cycles on the recursion path.
* **Value-based errors.**  Failures evaluate to Excel-style
  :class:`~repro.formula.errors.ErrorValue` objects (``#DIV/0!``,
  ``#REF!``, ``#CYCLE!``, ``#VALUE!``, ``#NAME?``) that propagate through
  operators and function arguments and are caught by ``IFERROR``.  A bad
  cell no longer aborts recalculation: its error value is written into
  the cell, its dependents see (and propagate) the error, and every
  unaffected formula still recomputes.
* **External-mutation safety.**  The engine watermarks the sheet's
  mutation :attr:`~repro.sheet.sheet.Sheet.version`; if the sheet was
  edited behind its back (plain ``sheet.set`` calls), the next operation
  falls back to a full resync instead of serving stale values.  Edits
  made through the engine keep the watermark current, preserving the
  incremental fast path.

The public surface of the old evaluator survives as a thin facade
(:class:`~repro.formula.evaluator.FormulaEvaluator`) over this engine.
"""

from __future__ import annotations

import datetime as _dt
import numbers
from typing import Dict, FrozenSet, List, NamedTuple, Set, Tuple

from repro.formula.ast_nodes import (
    ASTNode,
    BinaryOp,
    BooleanLiteral,
    CellReference,
    FunctionCall,
    Grouping,
    NumberLiteral,
    RangeReference,
    StringLiteral,
    UnaryOp,
    collect_references,
)
from repro.formula.errors import (
    CYCLE_ERROR,
    DIV0_ERROR,
    ErrorValue,
    NAME_ERROR,
    REF_ERROR,
    VALUE_ERROR,
    first_error,
    is_error_value,
)
from repro.formula.functions import (
    BUILTIN_FUNCTIONS,
    FunctionError,
    _coerce_number,
    _flatten,
    _truthy,
)
from repro.formula.parser import parse_formula
from repro.formula.tokenizer import FormulaSyntaxError
from repro.obs.tracing import get_tracer
from repro.sheet.addressing import AddressError, CellAddress, RangeAddress
from repro.sheet.sheet import AddressLike, Sheet, _to_address


class RecalcReport(NamedTuple):
    """What one :meth:`FormulaEngine.recalculate` pass did.

    ``recalculated`` formulas committed a proper value; ``errored``
    formulas committed an :class:`~repro.formula.errors.ErrorValue`.
    Every formula in the dirty closure is accounted for in exactly one
    of the two counters — nothing is silently skipped.
    """

    recalculated: int
    errored: int

    @property
    def total(self) -> int:
        """Number of formula cells recomputed in the pass."""
        return self.recalculated + self.errored

    def __bool__(self) -> bool:
        """Truthy iff the pass recomputed anything.

        Guards callers written against the seed ``recalculate() -> int``
        contract (``if evaluator.recalculate(): ...``): a bare NamedTuple
        would be truthy even for a no-op pass.
        """
        return self.total > 0


class FormulaEngine:
    """Dependency-graph recalculation over one :class:`~repro.sheet.Sheet`.

    Construction parses every formula cell and builds the precedents/
    dependents graph with all formulas marked dirty, so the first
    :meth:`recalculate` is a full pass; subsequent engine-mediated edits
    recompute only the affected subgraph.
    """

    def __init__(self, sheet: Sheet, max_depth: int = 64) -> None:
        self._sheet = sheet
        self._max_depth = max_depth
        #: Parsed AST per formula cell (an ErrorValue when parsing failed).
        self._asts: Dict[CellAddress, object] = {}
        #: Single-cell precedent -> formula cells referencing it directly.
        self._cell_dependents: Dict[CellAddress, Set[CellAddress]] = {}
        #: Formula cell -> its single-cell precedents (for edge removal).
        self._precedent_cells: Dict[CellAddress, FrozenSet[CellAddress]] = {}
        #: Formula cell -> the ranges it watches (matched by containment).
        #: Only range-bearing formulas appear here, so the containment
        #: scan in :meth:`_dependents_of` is O(formulas with ranges), not
        #: O(all formulas).
        self._range_watchers: Dict[CellAddress, Tuple[RangeAddress, ...]] = {}
        #: Formula cells whose committed value may be stale.
        self._dirty: Set[CellAddress] = set()
        #: Memo shared by evaluate_formula/evaluate_cell across calls (the
        #: seed evaluator's cross-call cache, made safe: it is cleared
        #: whenever anything becomes dirty or values are committed).
        self._eval_memo: Dict[CellAddress, object] = {}
        self._synced_version = -1
        self._full_resync()

    # ------------------------------------------------------------------ state

    @property
    def sheet(self) -> Sheet:
        """The sheet this engine recalculates."""
        return self._sheet

    @property
    def dirty_count(self) -> int:
        """Number of formula cells currently marked dirty."""
        self._sync()
        return len(self._dirty)

    def precedents_of(
        self, address: AddressLike
    ) -> Tuple[Tuple[CellAddress, ...], Tuple[RangeAddress, ...]]:
        """The (cells, ranges) a formula cell references directly."""
        self._sync()
        addr = _to_address(address)
        return (
            tuple(sorted(self._precedent_cells.get(addr, frozenset()))),
            self._range_watchers.get(addr, ()),
        )

    def dependents_of(self, address: AddressLike) -> FrozenSet[CellAddress]:
        """The formula cells that directly reference ``address``."""
        self._sync()
        return frozenset(self._dependents_of(_to_address(address)))

    # ------------------------------------------------------------------ edits

    def set_value(self, address: AddressLike, value=None) -> None:
        """Write a plain value (clearing any formula) and mark dependents dirty."""
        self._sync()
        addr = _to_address(address)
        old = self._sheet.get(addr)
        if old.has_formula:
            self._unregister(addr)
            self._dirty.discard(addr)
        style = old.style if addr in self._sheet else None
        self._sheet.set(addr, value, style=style)
        self._synced_version = self._sheet.version
        self._eval_memo.clear()
        self._mark_dirty(self._dependents_of(addr))

    def set_formula(self, address: AddressLike, formula: str) -> None:
        """Write a formula, rewire its graph edges and mark the subgraph dirty."""
        self._sync()
        addr = _to_address(address)
        old = self._sheet.get(addr)
        if old.has_formula:
            self._unregister(addr)
        text = formula if str(formula).startswith("=") else f"={formula}"
        style = old.style if addr in self._sheet else None
        self._sheet.set(addr, None, formula=text, style=style)
        self._synced_version = self._sheet.version
        self._eval_memo.clear()
        self._register(addr)
        self._mark_dirty((addr,))

    def _mark_dirty(self, seeds) -> None:
        """Add ``seeds`` and their transitive dependents to the dirty set.

        The dirty set is kept *closed* under the dependents relation at
        edit time, so every read path — :meth:`recalculate`, but also
        :meth:`evaluate_cell` / :meth:`evaluate_formula` between an edit
        and the next recalculation — sees exactly the same notion of
        staleness and never serves a committed-but-outdated value.
        """
        frontier = [address for address in seeds if address not in self._dirty]
        while frontier:
            address = frontier.pop()
            if address in self._dirty:
                continue
            self._dirty.add(address)
            frontier.extend(
                dependent
                for dependent in self._dependents_of(address)
                if dependent not in self._dirty
            )

    # ------------------------------------------------------------------ recalc

    def recalculate(self) -> RecalcReport:
        """Recompute the dirty closure and commit values into the sheet.

        The closure of the dirty set under the dependents relation is
        evaluated precedents-first (memoized DFS = topological order) and
        every member's value — proper or error — is written to its cell.
        Clean formulas outside the closure are not recomputed.
        """
        self._sync()
        if not self._dirty:
            return RecalcReport(0, 0)
        with get_tracer().span(
            "engine.recalculate", dirty=len(self._dirty)
        ) as span:
            # The dirty set is maintained closed under the dependents relation
            # (see _mark_dirty), so it *is* the recomputation closure; while
            # the pass runs, reads of not-yet-committed members go through the
            # memo, never the cell.
            memo: Dict[CellAddress, object] = {}
            recalculated = errored = 0
            for address in sorted(self._dirty):
                value = self._cell_value(address, frozenset(), 0, memo)
                cell = self._sheet.get(address)
                if not cell.has_formula:
                    continue
                cell.value = value
                if is_error_value(value):
                    errored += 1
                else:
                    recalculated += 1
            self._dirty = set()
            self._eval_memo.clear()
            span.set_attribute("recalculated", recalculated)
            span.set_attribute("errored", errored)
            return RecalcReport(recalculated, errored)

    # -------------------------------------------------------------- evaluation

    def evaluate_formula(self, formula: str) -> object:
        """Evaluate a formula string against the sheet (no values committed).

        Dirty precedent formulas are computed on the fly into a per-call
        memo; committed values are read for clean ones.  Failures return
        :class:`~repro.formula.errors.ErrorValue` objects.  Syntax errors
        in ``formula`` itself raise
        :class:`~repro.formula.tokenizer.FormulaSyntaxError`, matching
        the parser's contract for caller-supplied text.
        """
        self._sync()
        ast = parse_formula(formula)
        return self._evaluate_node(ast, frozenset(), 0, self._eval_memo)

    def evaluate_cell(self, address: AddressLike) -> object:
        """Evaluate the cell at ``address`` (its formula, or its stored value)."""
        self._sync()
        return self._cell_value(_to_address(address), frozenset(), 0, self._eval_memo)

    # ------------------------------------------------------------------- graph

    def _sync(self) -> None:
        if self._synced_version != self._sheet.version:
            self._full_resync()

    def _full_resync(self) -> None:
        """Rebuild the graph from scratch; everything becomes dirty."""
        self._asts.clear()
        self._cell_dependents.clear()
        self._precedent_cells.clear()
        self._range_watchers.clear()
        self._eval_memo.clear()
        self._dirty = set()
        for address, __ in self._sheet.formula_cells():
            self._register(address)
            self._dirty.add(address)
        self._synced_version = self._sheet.version

    def _register(self, address: CellAddress) -> None:
        ast = self._parse(self._sheet.get(address).formula or "")
        self._asts[address] = ast
        if isinstance(ast, ErrorValue):
            self._precedent_cells[address] = frozenset()
            return
        cells: Set[CellAddress] = set()
        ranges: List[RangeAddress] = []
        for reference in collect_references(ast):
            if isinstance(reference, CellReference):
                cells.add(reference.address)
            else:
                ranges.append(reference.range)
        self._precedent_cells[address] = frozenset(cells)
        if ranges:
            self._range_watchers[address] = tuple(ranges)
        for precedent in cells:
            self._cell_dependents.setdefault(precedent, set()).add(address)

    def _unregister(self, address: CellAddress) -> None:
        self._asts.pop(address, None)
        for precedent in self._precedent_cells.pop(address, frozenset()):
            dependents = self._cell_dependents.get(precedent)
            if dependents is not None:
                dependents.discard(address)
                if not dependents:
                    del self._cell_dependents[precedent]
        self._range_watchers.pop(address, None)

    def _dependents_of(self, address: CellAddress) -> Set[CellAddress]:
        dependents = set(self._cell_dependents.get(address, ()))
        for formula_address, ranges in self._range_watchers.items():
            for cell_range in ranges:
                if cell_range.contains(address):
                    dependents.add(formula_address)
                    break
        return dependents

    @staticmethod
    def _parse(formula: str):
        try:
            return parse_formula(formula)
        except AddressError:
            return REF_ERROR
        except FormulaSyntaxError:
            return NAME_ERROR

    # -------------------------------------------------------------- internals

    def _cell_value(
        self,
        address: CellAddress,
        visiting: FrozenSet[CellAddress],
        depth: int,
        memo: Dict[CellAddress, object],
    ) -> object:
        cell = self._sheet.get(address)
        if not cell.has_formula:
            return cell.value
        if address in memo:
            return memo[address]
        if address not in self._dirty:
            # Committed by a previous recalculation (or carried by the
            # sheet itself); the dirty protocol guarantees freshness.
            return cell.value
        if address in visiting:
            return CYCLE_ERROR
        if depth >= self._max_depth:
            return REF_ERROR
        ast = self._asts.get(address)
        if ast is None:  # formula cell unknown to the graph: parse transiently
            ast = self._parse(cell.formula or "")
        if isinstance(ast, ErrorValue):
            value: object = ast
        else:
            value = self._evaluate_node(ast, visiting | {address}, depth + 1, memo)
        memo[address] = value
        return value

    def _evaluate_node(
        self,
        node: ASTNode,
        visiting: FrozenSet[CellAddress],
        depth: int,
        memo: Dict[CellAddress, object],
    ) -> object:
        if isinstance(node, (NumberLiteral, StringLiteral, BooleanLiteral)):
            return node.value
        if isinstance(node, Grouping):
            return self._evaluate_node(node.inner, visiting, depth, memo)
        if isinstance(node, CellReference):
            return self._cell_value(node.address, visiting, depth, memo)
        if isinstance(node, RangeReference):
            cell_range = node.range
            if cell_range.n_cols == 1 or cell_range.n_rows == 1:
                return [
                    self._cell_value(addr, visiting, depth, memo)
                    for addr in cell_range.cells()
                ]
            # Two-dimensional ranges evaluate to a list of rows so lookup
            # functions (VLOOKUP / INDEX / MATCH) see the table structure.
            return [
                [
                    self._cell_value(CellAddress(row, col), visiting, depth, memo)
                    for col in range(cell_range.start.col, cell_range.end.col + 1)
                ]
                for row in range(cell_range.start.row, cell_range.end.row + 1)
            ]
        if isinstance(node, UnaryOp):
            operand = self._evaluate_node(node.operand, visiting, depth, memo)
            if is_error_value(operand):
                return operand
            number = self._as_number(operand)
            if is_error_value(number):
                return number
            if node.op == "-":
                return -number
            if node.op == "+":
                return number
            if node.op == "%":
                return number / 100.0
            return NAME_ERROR
        if isinstance(node, BinaryOp):
            return self._evaluate_binary(node, visiting, depth, memo)
        if isinstance(node, FunctionCall):
            return self._evaluate_call(node, visiting, depth, memo)
        return VALUE_ERROR

    def _evaluate_binary(
        self,
        node: BinaryOp,
        visiting: FrozenSet[CellAddress],
        depth: int,
        memo: Dict[CellAddress, object],
    ) -> object:
        left = self._evaluate_node(node.left, visiting, depth, memo)
        if is_error_value(left):
            return left
        right = self._evaluate_node(node.right, visiting, depth, memo)
        if is_error_value(right):
            return right
        op = node.op
        if op == "&":
            return self._as_text(left) + self._as_text(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, left, right)
        left_number = self._as_number(left)
        if is_error_value(left_number):
            return left_number
        right_number = self._as_number(right)
        if is_error_value(right_number):
            return right_number
        if op == "+":
            return left_number + right_number
        if op == "-":
            return left_number - right_number
        if op == "*":
            return left_number * right_number
        if op == "/":
            if right_number == 0:
                return DIV0_ERROR
            return left_number / right_number
        if op == "^":
            try:
                result = left_number ** right_number
            except ZeroDivisionError:
                return DIV0_ERROR
            except (OverflowError, ValueError):
                return VALUE_ERROR
            if isinstance(result, complex):
                return VALUE_ERROR
            return result
        return NAME_ERROR

    def _evaluate_call(
        self,
        node: FunctionCall,
        visiting: FrozenSet[CellAddress],
        depth: int,
        memo: Dict[CellAddress, object],
    ) -> object:
        name = node.name
        if name == "IF":
            # Lazy branches: only the taken arm evaluates, so an error in
            # the untaken arm (e.g. a guarded division) cannot leak out.
            if not 1 <= len(node.args) <= 3:
                return VALUE_ERROR
            condition = self._evaluate_node(node.args[0], visiting, depth, memo)
            if is_error_value(condition):
                return condition
            if _truthy(condition):
                if len(node.args) >= 2:
                    return self._evaluate_node(node.args[1], visiting, depth, memo)
                return True
            if len(node.args) == 3:
                return self._evaluate_node(node.args[2], visiting, depth, memo)
            return False
        if name == "IFERROR":
            if not 1 <= len(node.args) <= 2:
                return VALUE_ERROR
            value = self._evaluate_node(node.args[0], visiting, depth, memo)
            if not is_error_value(value):
                return value
            if len(node.args) == 2:
                return self._evaluate_node(node.args[1], visiting, depth, memo)
            return ""
        function = BUILTIN_FUNCTIONS.get(name)
        if function is None:
            return NAME_ERROR
        args = [self._evaluate_node(arg, visiting, depth, memo) for arg in node.args]
        error = first_error(_flatten(args))
        if error is not None:
            return error
        try:
            return function(*args)
        except FunctionError as exc:
            return ErrorValue(getattr(exc, "error_code", str(VALUE_ERROR)))
        except ZeroDivisionError:
            return DIV0_ERROR
        except (TypeError, ValueError):
            return VALUE_ERROR

    # ------------------------------------------------------------- conversions

    @staticmethod
    def _as_number(value) -> object:
        """Coerce a scalar to float, or return ``#VALUE!``."""
        try:
            return _coerce_number(value)
        except FunctionError:
            return VALUE_ERROR

    @staticmethod
    def _as_text(value) -> str:
        """Spreadsheet text rendering: booleans as ``TRUE``/``FALSE``."""
        if value is None:
            return ""
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    @staticmethod
    def _compare_key(value) -> Tuple[int, object]:
        """Excel's cross-type ordering: numbers < text < booleans.

        Within a rank, numbers compare numerically (dates by ordinal,
        matching their serial-number nature) and text case-insensitively.
        """
        if isinstance(value, bool):
            return (2, 1.0 if value else 0.0)
        if isinstance(value, (_dt.date, _dt.datetime)):
            return (0, float(value.toordinal()))
        if isinstance(value, numbers.Number):
            return (0, float(value))
        return (1, str(value).casefold())

    @classmethod
    def _compare(cls, op: str, left, right) -> object:
        if isinstance(left, list) or isinstance(right, list):
            return VALUE_ERROR
        # A blank operand adapts to the other side's type (blank = 0,
        # blank = "", blank = FALSE), as in real spreadsheets.
        if left is None and right is None:
            left = right = 0.0
        elif left is None:
            left = "" if isinstance(right, str) else (
                False if isinstance(right, bool) else 0.0
            )
        elif right is None:
            right = "" if isinstance(left, str) else (
                False if isinstance(left, bool) else 0.0
            )
        left_key = cls._compare_key(left)
        right_key = cls._compare_key(right)
        if op == "=":
            return left_key == right_key
        if op == "<>":
            return left_key != right_key
        if op == "<":
            return left_key < right_key
        if op == "<=":
            return left_key <= right_key
        if op == ">":
            return left_key > right_key
        return left_key >= right_key
