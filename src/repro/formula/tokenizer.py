"""Tokenizer for spreadsheet formulas.

Supports the subset of the Excel formula language needed by the
reproduction: cell and range references, numbers, strings, booleans,
function calls, arithmetic / comparison / concatenation operators, percent
and unary minus, and parenthesized expressions.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List


class FormulaSyntaxError(ValueError):
    """Raised when a formula cannot be tokenized or parsed."""


class TokenType(enum.Enum):
    """Lexical token categories."""

    NUMBER = "number"
    STRING = "string"
    BOOLEAN = "boolean"
    CELL = "cell"
    RANGE = "range"
    IDENT = "ident"
    OPERATOR = "operator"
    COMPARE = "compare"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    PERCENT = "percent"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source text and position."""

    type: TokenType
    text: str
    position: int


_TOKEN_SPEC = [
    (TokenType.RANGE, re.compile(r"\$?[A-Za-z]{1,3}\$?[0-9]+:\$?[A-Za-z]{1,3}\$?[0-9]+")),
    (TokenType.CELL, re.compile(r"\$?[A-Za-z]{1,3}\$?[0-9]+(?![0-9A-Za-z_(])")),
    (TokenType.NUMBER, re.compile(r"(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")),
    (TokenType.STRING, re.compile(r'"(?:[^"]|"")*"')),
    (TokenType.IDENT, re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")),
    (TokenType.COMPARE, re.compile(r"(<=|>=|<>|=|<|>)")),
    (TokenType.OPERATOR, re.compile(r"[-+*/^&]")),
    (TokenType.LPAREN, re.compile(r"\(")),
    (TokenType.RPAREN, re.compile(r"\)")),
    (TokenType.COMMA, re.compile(r"[,;]")),
    (TokenType.PERCENT, re.compile(r"%")),
]

_BOOLEANS = {"TRUE", "FALSE"}


def tokenize(formula: str) -> List[Token]:
    """Tokenize a formula string (with or without the leading ``=``).

    Raises :class:`FormulaSyntaxError` on any unrecognized character.
    """
    text = formula.strip()
    if text.startswith("="):
        text = text[1:]
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        if text[position].isspace():
            position += 1
            continue
        for token_type, pattern in _TOKEN_SPEC:
            match = pattern.match(text, position)
            if not match:
                continue
            lexeme = match.group(0)
            if token_type is TokenType.IDENT and lexeme.upper() in _BOOLEANS:
                token_type = TokenType.BOOLEAN
            tokens.append(Token(token_type, lexeme, position))
            position = match.end()
            break
        else:
            raise FormulaSyntaxError(
                f"unexpected character {text[position]!r} at position {position} in {formula!r}"
            )
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
