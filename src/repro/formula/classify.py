"""Formula classification: complexity and type buckets.

The paper's sensitivity analyses group test formulas by complexity (the
number of nodes in the parsed AST, Figure 10) and by type — "conditional",
"math", "string", "date" and "other" (Figure 11).  This module reproduces
those bucketizations.
"""

from __future__ import annotations

import enum
from typing import List, Set, Union

from repro.formula.ast_nodes import ASTNode, BinaryOp, FunctionCall, node_count, walk
from repro.formula.parser import parse_formula

_CONDITIONAL_FUNCTIONS = {
    "IF",
    "IFS",
    "IFERROR",
    "COUNTIF",
    "COUNTIFS",
    "SUMIF",
    "SUMIFS",
    "AVERAGEIF",
    "AVERAGEIFS",
    "AND",
    "OR",
    "NOT",
}
_MATH_FUNCTIONS = {
    "SUM",
    "AVERAGE",
    "AVG",
    "COUNT",
    "COUNTA",
    "COUNTBLANK",
    "MAX",
    "MIN",
    "MEDIAN",
    "PRODUCT",
    "STDEV",
    "VAR",
    "ROUND",
    "ROUNDUP",
    "ROUNDDOWN",
    "ABS",
    "SQRT",
    "POWER",
    "MOD",
    "INT",
}
_STRING_FUNCTIONS = {
    "CONCATENATE",
    "CONCAT",
    "LEFT",
    "RIGHT",
    "MID",
    "LEN",
    "UPPER",
    "LOWER",
    "TRIM",
    "TEXT",
    "SUBSTITUTE",
}
_DATE_FUNCTIONS = {"YEAR", "MONTH", "DAY", "DATE", "TODAY", "NOW", "EOMONTH", "DATEDIF"}

#: Complexity bucket boundaries used in Figure 10 (by AST node count).
COMPLEXITY_BUCKETS = ["l<3", "l=3", "3<l<7", "7<=l<20", "20<=l"]

#: Row-count bucket boundaries used in Figure 9.
ROW_BUCKETS = ["r<40", "40<=r<60", "60<=r<100", "100<=r<250", "250<=r"]


class FormulaCategory(enum.Enum):
    """The formula-type buckets used in Figure 11."""

    CONDITIONAL = "conditional"
    MATH = "math"
    STRING = "string"
    DATE = "date"
    OTHER = "other"


def functions_used(formula: Union[str, ASTNode]) -> List[str]:
    """Names of all functions appearing in the formula, in pre-order."""
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    return [node.name for node in walk(ast) if isinstance(node, FunctionCall)]


def formula_complexity(formula: Union[str, ASTNode]) -> int:
    """Formula complexity: number of nodes in its parsed AST."""
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    return node_count(ast)


def complexity_bucket(formula: Union[str, ASTNode]) -> str:
    """The Figure 10 bucket label for a formula's complexity."""
    length = formula_complexity(formula)
    if length < 3:
        return COMPLEXITY_BUCKETS[0]
    if length == 3:
        return COMPLEXITY_BUCKETS[1]
    if length < 7:
        return COMPLEXITY_BUCKETS[2]
    if length < 20:
        return COMPLEXITY_BUCKETS[3]
    return COMPLEXITY_BUCKETS[4]


def row_bucket(n_rows: int) -> str:
    """The Figure 9 bucket label for a target sheet's row count."""
    if n_rows < 40:
        return ROW_BUCKETS[0]
    if n_rows < 60:
        return ROW_BUCKETS[1]
    if n_rows < 100:
        return ROW_BUCKETS[2]
    if n_rows < 250:
        return ROW_BUCKETS[3]
    return ROW_BUCKETS[4]


def classify_formula(formula: Union[str, ASTNode]) -> FormulaCategory:
    """Classify a formula into the Figure 11 type buckets.

    Priority follows the paper's description: any IF/criteria logic makes a
    formula "conditional"; otherwise string functions, then date functions,
    then math functions / arithmetic; anything else is "other".
    """
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    names: Set[str] = set(functions_used(ast))
    has_comparison = any(
        isinstance(node, BinaryOp) and node.op in ("=", "<>", "<", "<=", ">", ">=")
        for node in walk(ast)
    )
    if names & _CONDITIONAL_FUNCTIONS or has_comparison:
        return FormulaCategory.CONDITIONAL
    if names & _STRING_FUNCTIONS or any(
        isinstance(node, BinaryOp) and node.op == "&" for node in walk(ast)
    ):
        return FormulaCategory.STRING
    if names & _DATE_FUNCTIONS:
        return FormulaCategory.DATE
    has_arithmetic = any(
        isinstance(node, BinaryOp) and node.op in ("+", "-", "*", "/", "^")
        for node in walk(ast)
    )
    if names & _MATH_FUNCTIONS or has_arithmetic:
        return FormulaCategory.MATH
    return FormulaCategory.OTHER
