"""AST node classes for parsed spreadsheet formulas.

Every node renders back to canonical formula text via ``to_formula`` and
supports structural traversal through :func:`walk`.  The node count of an
AST is the paper's definition of formula complexity (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.sheet.addressing import CellAddress, RangeAddress


class ASTNode:
    """Base class for all formula AST nodes."""

    def children(self) -> Sequence["ASTNode"]:
        """Direct child nodes (empty for leaves)."""
        return ()

    def to_formula(self) -> str:
        """Render this subtree back to formula text (without leading ``=``)."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_formula()


@dataclass(frozen=True)
class NumberLiteral(ASTNode):
    """A numeric constant."""

    value: float

    def to_formula(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class StringLiteral(ASTNode):
    """A quoted string constant."""

    value: str

    def to_formula(self) -> str:
        escaped = self.value.replace('"', '""')
        return f'"{escaped}"'


@dataclass(frozen=True)
class BooleanLiteral(ASTNode):
    """A TRUE/FALSE constant."""

    value: bool

    def to_formula(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class CellReference(ASTNode):
    """A reference to a single cell, e.g. ``C41``."""

    address: CellAddress

    def to_formula(self) -> str:
        return self.address.to_a1()


@dataclass(frozen=True)
class RangeReference(ASTNode):
    """A reference to a rectangular range, e.g. ``C7:C37``."""

    range: RangeAddress

    def to_formula(self) -> str:
        return self.range.to_a1()


@dataclass(frozen=True)
class UnaryOp(ASTNode):
    """A unary operator applied to an operand (``-A1``, ``A1%``)."""

    op: str
    operand: ASTNode

    def children(self) -> Sequence[ASTNode]:
        return (self.operand,)

    def to_formula(self) -> str:
        if self.op == "%":
            return f"{self.operand.to_formula()}%"
        return f"{self.op}{self.operand.to_formula()}"


@dataclass(frozen=True)
class BinaryOp(ASTNode):
    """A binary operator expression (``A1+B1``, ``A1>=10``, ``A1&" kg"``)."""

    op: str
    left: ASTNode
    right: ASTNode

    def children(self) -> Sequence[ASTNode]:
        return (self.left, self.right)

    def to_formula(self) -> str:
        return f"{self.left.to_formula()}{self.op}{self.right.to_formula()}"


@dataclass(frozen=True)
class Grouping(ASTNode):
    """A parenthesized sub-expression, preserved for faithful round-tripping."""

    inner: ASTNode

    def children(self) -> Sequence[ASTNode]:
        return (self.inner,)

    def to_formula(self) -> str:
        return f"({self.inner.to_formula()})"


@dataclass(frozen=True)
class FunctionCall(ASTNode):
    """A spreadsheet function call such as ``COUNTIF(C7:C37,C41)``."""

    name: str
    args: tuple

    def __init__(self, name: str, args: Sequence[ASTNode]):
        object.__setattr__(self, "name", name.upper())
        object.__setattr__(self, "args", tuple(args))

    def children(self) -> Sequence[ASTNode]:
        return self.args

    def to_formula(self) -> str:
        rendered = ",".join(arg.to_formula() for arg in self.args)
        return f"{self.name}({rendered})"


def walk(node: ASTNode) -> Iterator[ASTNode]:
    """Yield ``node`` and every descendant in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def node_count(node: ASTNode) -> int:
    """Number of AST nodes in the subtree rooted at ``node``."""
    return sum(1 for __ in walk(node))


def collect_references(node: ASTNode) -> List[ASTNode]:
    """All cell and range reference nodes in left-to-right (pre-order) order."""
    return [n for n in walk(node) if isinstance(n, (CellReference, RangeReference))]
