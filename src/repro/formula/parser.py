"""Recursive-descent parser for spreadsheet formulas.

Grammar (lowest to highest precedence)::

    expression  := comparison
    comparison  := concat ( ("=" | "<>" | "<" | "<=" | ">" | ">=") concat )*
    concat      := additive ( "&" additive )*
    additive    := term ( ("+" | "-") term )*
    term        := power ( ("*" | "/") power )*
    power       := unary ( "^" unary )*
    unary       := ("-" | "+") unary | postfix
    postfix     := primary ( "%" )*
    primary     := NUMBER | STRING | BOOLEAN | CELL | RANGE
                 | IDENT "(" [expression ("," expression)*] ")"
                 | "(" expression ")"
"""

from __future__ import annotations

from typing import List

from repro.formula.ast_nodes import (
    ASTNode,
    BinaryOp,
    BooleanLiteral,
    CellReference,
    FunctionCall,
    Grouping,
    NumberLiteral,
    RangeReference,
    StringLiteral,
    UnaryOp,
)
from repro.formula.tokenizer import FormulaSyntaxError, Token, TokenType, tokenize
from repro.sheet.addressing import parse_cell_address, parse_range_address


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    # -------------------------------------------------------------- utilities

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _match(self, token_type: TokenType, *texts: str) -> bool:
        token = self._peek()
        if token.type is not token_type:
            return False
        if texts and token.text not in texts:
            return False
        return True

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise FormulaSyntaxError(
                f"expected {token_type.value} but found {token.text!r} "
                f"at position {token.position} in {self._source!r}"
            )
        return self._advance()

    # ---------------------------------------------------------------- grammar

    def parse(self) -> ASTNode:
        node = self._expression()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise FormulaSyntaxError(
                f"unexpected trailing token {token.text!r} in {self._source!r}"
            )
        return node

    def _expression(self) -> ASTNode:
        return self._comparison()

    def _comparison(self) -> ASTNode:
        node = self._concat()
        while self._match(TokenType.COMPARE):
            op = self._advance().text
            right = self._concat()
            node = BinaryOp(op, node, right)
        return node

    def _concat(self) -> ASTNode:
        node = self._additive()
        while self._match(TokenType.OPERATOR, "&"):
            self._advance()
            right = self._additive()
            node = BinaryOp("&", node, right)
        return node

    def _additive(self) -> ASTNode:
        node = self._term()
        while self._match(TokenType.OPERATOR, "+", "-"):
            op = self._advance().text
            right = self._term()
            node = BinaryOp(op, node, right)
        return node

    def _term(self) -> ASTNode:
        node = self._power()
        while self._match(TokenType.OPERATOR, "*", "/"):
            op = self._advance().text
            right = self._power()
            node = BinaryOp(op, node, right)
        return node

    def _power(self) -> ASTNode:
        node = self._unary()
        while self._match(TokenType.OPERATOR, "^"):
            self._advance()
            right = self._unary()
            node = BinaryOp("^", node, right)
        return node

    def _unary(self) -> ASTNode:
        if self._match(TokenType.OPERATOR, "-", "+"):
            op = self._advance().text
            operand = self._unary()
            return UnaryOp(op, operand)
        return self._postfix()

    def _postfix(self) -> ASTNode:
        node = self._primary()
        while self._match(TokenType.PERCENT):
            self._advance()
            node = UnaryOp("%", node)
        return node

    def _primary(self) -> ASTNode:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            inner = token.text[1:-1].replace('""', '"')
            return StringLiteral(inner)
        if token.type is TokenType.BOOLEAN:
            self._advance()
            return BooleanLiteral(token.text.upper() == "TRUE")
        if token.type is TokenType.RANGE:
            self._advance()
            return RangeReference(parse_range_address(token.text.replace("$", "")))
        if token.type is TokenType.CELL:
            self._advance()
            return CellReference(parse_cell_address(token.text.replace("$", "")))
        if token.type is TokenType.IDENT:
            return self._function_call()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenType.RPAREN)
            return Grouping(inner)
        raise FormulaSyntaxError(
            f"unexpected token {token.text!r} at position {token.position} in {self._source!r}"
        )

    def _function_call(self) -> ASTNode:
        name_token = self._expect(TokenType.IDENT)
        self._expect(TokenType.LPAREN)
        args: List[ASTNode] = []
        if not self._match(TokenType.RPAREN):
            args.append(self._expression())
            while self._match(TokenType.COMMA):
                self._advance()
                args.append(self._expression())
        self._expect(TokenType.RPAREN)
        return FunctionCall(name_token.text, args)


def parse_formula(formula: str) -> ASTNode:
    """Parse a formula string (with or without leading ``=``) into an AST.

    Raises :class:`FormulaSyntaxError` if the formula is malformed.
    """
    tokens = tokenize(formula)
    return _Parser(tokens, formula).parse()
