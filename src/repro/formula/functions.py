"""Built-in spreadsheet function library for the formula evaluator.

Implements the common Excel / Google Sheets functions needed to evaluate
the formulas produced by the synthetic corpus generator and by real-world
style workloads: aggregation (SUM, AVERAGE, COUNT, ...), conditional
aggregation (SUMIF, COUNTIF, AVERAGEIF, SUMIFS, COUNTIFS), logic (IF, AND,
OR, NOT, IFERROR), lookup (VLOOKUP, HLOOKUP, INDEX, MATCH), math (ROUND,
ABS, ...), text (CONCATENATE, LEFT, RIGHT, MID, LEN, UPPER, LOWER, TRIM,
TEXT) and date helpers (YEAR, MONTH, DAY, DATE).

Each function receives already-evaluated arguments.  Range arguments arrive
as (possibly nested) Python lists of cell values; scalar arguments arrive as
plain values.
"""

from __future__ import annotations

import datetime as _dt
import math
import numbers
import re
from typing import Callable, Dict, Iterable, List, Sequence


class FunctionError(ValueError):
    """Raised when a built-in function is applied to invalid arguments.

    ``error_code`` names the Excel-style error value the failure maps to
    when evaluation is value-based (see ``repro.formula.errors``); the
    default ``#VALUE!`` covers type/argument misuse, while empty-set
    aggregations and zero divisors carry ``#DIV/0!`` like real
    spreadsheets.
    """

    def __init__(self, message: str, error_code: str = "#VALUE!") -> None:
        super().__init__(message)
        self.error_code = error_code


# --------------------------------------------------------------------- helpers


def _flatten(value) -> List:
    """Flatten nested lists (range values) into a flat list of scalars."""
    if isinstance(value, list):
        out: List = []
        for item in value:
            out.extend(_flatten(item))
        return out
    return [value]


def _numeric_values(args: Iterable) -> List[float]:
    """All numeric values across the (flattened) arguments, ignoring text/blank."""
    numbers_out: List[float] = []
    for value in _flatten(list(args)):
        if isinstance(value, bool):
            continue
        if isinstance(value, numbers.Number):
            numbers_out.append(float(value))
    return numbers_out


def _coerce_number(value) -> float:
    """Coerce a scalar to float (blank -> 0), raising on non-numeric text."""
    if value is None or value == "":
        return 0.0
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, numbers.Number):
        return float(value)
    try:
        return float(str(value))
    except ValueError as exc:
        raise FunctionError(f"expected a number, got {value!r}") from exc


_CRITERIA_RE = re.compile(r"^(<=|>=|<>|=|<|>)(.*)$")


def criterion_matcher(criterion) -> Callable[[object], bool]:
    """Build a predicate from a SUMIF/COUNTIF criterion.

    Criteria may be plain values (equality), or strings with a comparison
    prefix such as ``">=10"`` or ``"<>done"``.  Text comparison is
    case-insensitive, matching spreadsheet semantics.
    """
    if isinstance(criterion, str):
        match = _CRITERIA_RE.match(criterion.strip())
        if match and match.group(1) != "=" or (match and match.group(2) != ""):
            op, operand_text = match.groups()
            try:
                operand: object = float(operand_text)
                numeric = True
            except ValueError:
                operand = operand_text.lower()
                numeric = False

            def compare(value: object) -> bool:
                if numeric:
                    if isinstance(value, bool) or not isinstance(value, numbers.Number):
                        try:
                            value = float(str(value))
                        except (TypeError, ValueError):
                            return op == "<>"
                    left: object = float(value)
                else:
                    left = str(value).lower() if value is not None else ""
                if op == "=":
                    return left == operand
                if op == "<>":
                    return left != operand
                if op == "<":
                    return left < operand  # type: ignore[operator]
                if op == "<=":
                    return left <= operand  # type: ignore[operator]
                if op == ">":
                    return left > operand  # type: ignore[operator]
                return left >= operand  # type: ignore[operator]

            return compare
        criterion_text = criterion.lower()
        return lambda value: str(value).lower() == criterion_text if value is not None else False
    if isinstance(criterion, numbers.Number) and not isinstance(criterion, bool):
        target = float(criterion)

        def equals_number(value: object) -> bool:
            if isinstance(value, bool) or not isinstance(value, numbers.Number):
                return False
            return float(value) == target

        return equals_number
    return lambda value: value == criterion


# ---------------------------------------------------------------- aggregation


def fn_sum(*args) -> float:
    return float(sum(_numeric_values(args)))


def fn_average(*args) -> float:
    values = _numeric_values(args)
    if not values:
        raise FunctionError("AVERAGE of no numeric values", error_code="#DIV/0!")
    return float(sum(values) / len(values))


def fn_count(*args) -> float:
    return float(len(_numeric_values(args)))


def fn_counta(*args) -> float:
    return float(sum(1 for value in _flatten(list(args)) if value not in (None, "")))


def fn_countblank(*args) -> float:
    return float(sum(1 for value in _flatten(list(args)) if value in (None, "")))


def fn_max(*args) -> float:
    values = _numeric_values(args)
    return float(max(values)) if values else 0.0


def fn_min(*args) -> float:
    values = _numeric_values(args)
    return float(min(values)) if values else 0.0


def fn_median(*args) -> float:
    values = sorted(_numeric_values(args))
    if not values:
        raise FunctionError("MEDIAN of no numeric values", error_code="#DIV/0!")
    middle = len(values) // 2
    if len(values) % 2:
        return values[middle]
    return (values[middle - 1] + values[middle]) / 2.0


def fn_product(*args) -> float:
    result = 1.0
    for value in _numeric_values(args):
        result *= value
    return result


def fn_stdev(*args) -> float:
    values = _numeric_values(args)
    if len(values) < 2:
        raise FunctionError(
            "STDEV requires at least two numeric values", error_code="#DIV/0!"
        )
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance)


def fn_var(*args) -> float:
    values = _numeric_values(args)
    if len(values) < 2:
        raise FunctionError(
            "VAR requires at least two numeric values", error_code="#DIV/0!"
        )
    mean = sum(values) / len(values)
    return sum((value - mean) ** 2 for value in values) / (len(values) - 1)


# ---------------------------------------------------- conditional aggregation


def fn_countif(values, criterion) -> float:
    matcher = criterion_matcher(criterion)
    return float(sum(1 for value in _flatten(values) if value not in (None, "") and matcher(value)))


def fn_sumif(values, criterion, sum_values=None) -> float:
    matcher = criterion_matcher(criterion)
    test_values = _flatten(values)
    out_values = _flatten(sum_values) if sum_values is not None else test_values
    total = 0.0
    for test, out in zip(test_values, out_values):
        if test in (None, ""):
            continue
        if matcher(test) and isinstance(out, numbers.Number) and not isinstance(out, bool):
            total += float(out)
    return total


def fn_averageif(values, criterion, avg_values=None) -> float:
    matcher = criterion_matcher(criterion)
    test_values = _flatten(values)
    out_values = _flatten(avg_values) if avg_values is not None else test_values
    selected = [
        float(out)
        for test, out in zip(test_values, out_values)
        if test not in (None, "")
        and matcher(test)
        and isinstance(out, numbers.Number)
        and not isinstance(out, bool)
    ]
    if not selected:
        raise FunctionError("AVERAGEIF matched no numeric values", error_code="#DIV/0!")
    return sum(selected) / len(selected)


def _ifs_pairs(args: Sequence) -> List:
    if len(args) % 2 != 0:
        raise FunctionError("criteria arguments must come in (range, criterion) pairs")
    return [(args[i], args[i + 1]) for i in range(0, len(args), 2)]


def fn_countifs(*args) -> float:
    pairs = _ifs_pairs(args)
    if not pairs:
        return 0.0
    flattened = [( _flatten(values), criterion_matcher(criterion)) for values, criterion in pairs]
    length = len(flattened[0][0])
    count = 0
    for index in range(length):
        if all(index < len(values) and matcher(values[index]) for values, matcher in flattened):
            count += 1
    return float(count)


def fn_sumifs(sum_values, *args) -> float:
    out_values = _flatten(sum_values)
    pairs = _ifs_pairs(args)
    flattened = [(_flatten(values), criterion_matcher(criterion)) for values, criterion in pairs]
    total = 0.0
    for index, out in enumerate(out_values):
        if not isinstance(out, numbers.Number) or isinstance(out, bool):
            continue
        if all(index < len(values) and matcher(values[index]) for values, matcher in flattened):
            total += float(out)
    return total


# ----------------------------------------------------------------------- logic


def fn_if(condition, when_true=True, when_false=False):
    return when_true if _truthy(condition) else when_false


def _truthy(value) -> bool:
    if isinstance(value, str):
        return value.strip().lower() not in ("", "false", "0")
    return bool(value)


def fn_and(*args) -> bool:
    return all(_truthy(value) for value in _flatten(list(args)))


def fn_or(*args) -> bool:
    return any(_truthy(value) for value in _flatten(list(args)))


def fn_not(value) -> bool:
    return not _truthy(value)


def fn_isblank(value) -> bool:
    return value in (None, "")


def fn_isnumber(value) -> bool:
    return isinstance(value, numbers.Number) and not isinstance(value, bool)


# ---------------------------------------------------------------------- lookup


def _as_table(values) -> List[List]:
    """Normalize a range argument to a list of rows."""
    if not isinstance(values, list):
        return [[values]]
    if values and not isinstance(values[0], list):
        return [[value] for value in values]
    return values


def fn_vlookup(lookup_value, table, col_index, range_lookup=False):
    rows = _as_table(table)
    col = int(_coerce_number(col_index)) - 1
    if col < 0:
        raise FunctionError("VLOOKUP column index must be >= 1")
    for row in rows:
        if not row:
            continue
        if _loose_equal(row[0], lookup_value):
            if col >= len(row):
                raise FunctionError("VLOOKUP column index out of range")
            return row[col]
    if _truthy(range_lookup):
        best = None
        for row in rows:
            if row and _comparable(row[0], lookup_value) and row[0] <= lookup_value:
                best = row
        if best is not None:
            return best[col] if col < len(best) else None
    raise FunctionError(f"VLOOKUP value {lookup_value!r} not found")


def fn_hlookup(lookup_value, table, row_index, range_lookup=False):
    rows = _as_table(table)
    transposed = [list(column) for column in zip(*rows)] if rows else []
    return fn_vlookup(lookup_value, transposed, row_index, range_lookup)


def fn_index(table, row_index, col_index=1):
    rows = _as_table(table)
    row = int(_coerce_number(row_index)) - 1
    col = int(_coerce_number(col_index)) - 1
    if row < 0 or row >= len(rows) or col < 0 or col >= len(rows[row]):
        raise FunctionError("INDEX out of range")
    return rows[row][col]


def fn_match(lookup_value, values, match_type=0):
    flat = _flatten(values)
    for position, value in enumerate(flat, start=1):
        if _loose_equal(value, lookup_value):
            return float(position)
    raise FunctionError(f"MATCH value {lookup_value!r} not found")


def _loose_equal(left, right) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, numbers.Number) and isinstance(right, numbers.Number):
        return float(left) == float(right)
    return left == right


def _comparable(left, right) -> bool:
    return isinstance(left, numbers.Number) and isinstance(right, numbers.Number)


# ------------------------------------------------------------------------ math


def fn_round(value, digits=0) -> float:
    return round(_coerce_number(value), int(_coerce_number(digits)))


def fn_roundup(value, digits=0) -> float:
    factor = 10 ** int(_coerce_number(digits))
    return math.ceil(_coerce_number(value) * factor) / factor


def fn_rounddown(value, digits=0) -> float:
    factor = 10 ** int(_coerce_number(digits))
    return math.floor(_coerce_number(value) * factor) / factor


def fn_abs(value) -> float:
    return abs(_coerce_number(value))


def fn_sqrt(value) -> float:
    number = _coerce_number(value)
    if number < 0:
        raise FunctionError("SQRT of a negative number")
    return math.sqrt(number)


def fn_power(base, exponent) -> float:
    return _coerce_number(base) ** _coerce_number(exponent)


def fn_mod(value, divisor) -> float:
    divisor_value = _coerce_number(divisor)
    if divisor_value == 0:
        raise FunctionError("MOD by zero", error_code="#DIV/0!")
    return math.fmod(_coerce_number(value), divisor_value)


def fn_int(value) -> float:
    return float(math.floor(_coerce_number(value)))


# ------------------------------------------------------------------------ text


def fn_concatenate(*args) -> str:
    return "".join("" if value is None else str(value) for value in _flatten(list(args)))


def fn_left(text, count=1) -> str:
    return str(text or "")[: int(_coerce_number(count))]


def fn_right(text, count=1) -> str:
    count = int(_coerce_number(count))
    source = str(text or "")
    return source[-count:] if count else ""


def fn_mid(text, start, count) -> str:
    start_index = int(_coerce_number(start)) - 1
    return str(text or "")[start_index : start_index + int(_coerce_number(count))]


def fn_len(text) -> float:
    return float(len(str(text or "")))


def fn_upper(text) -> str:
    return str(text or "").upper()


def fn_lower(text) -> str:
    return str(text or "").lower()


def fn_trim(text) -> str:
    return " ".join(str(text or "").split())


def fn_text(value, format_text="") -> str:
    number = _coerce_number(value)
    fmt = str(format_text)
    if fmt in ("0", "#"):
        return str(int(round(number)))
    if fmt.startswith("0.") and set(fmt[2:]) <= {"0"}:
        return f"{number:.{len(fmt) - 2}f}"
    if fmt == "0%":
        return f"{int(round(number * 100))}%"
    return str(value)


def fn_substitute(text, old, new) -> str:
    return str(text or "").replace(str(old), str(new))


# ------------------------------------------------------------------------ date


def _as_date(value) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return _dt.date.fromisoformat(value.replace("/", "-"))
    raise FunctionError(f"expected a date, got {value!r}")


def fn_year(value) -> float:
    return float(_as_date(value).year)


def fn_month(value) -> float:
    return float(_as_date(value).month)


def fn_day(value) -> float:
    return float(_as_date(value).day)


def fn_date(year, month, day) -> _dt.date:
    return _dt.date(int(_coerce_number(year)), int(_coerce_number(month)), int(_coerce_number(day)))


def fn_today() -> _dt.date:
    return _dt.date(2024, 1, 1)  # deterministic "today" for reproducible evaluation


# -------------------------------------------------------------------- registry

BUILTIN_FUNCTIONS: Dict[str, Callable] = {
    "SUM": fn_sum,
    "AVERAGE": fn_average,
    "AVG": fn_average,
    "COUNT": fn_count,
    "COUNTA": fn_counta,
    "COUNTBLANK": fn_countblank,
    "MAX": fn_max,
    "MIN": fn_min,
    "MEDIAN": fn_median,
    "PRODUCT": fn_product,
    "STDEV": fn_stdev,
    "VAR": fn_var,
    "COUNTIF": fn_countif,
    "SUMIF": fn_sumif,
    "AVERAGEIF": fn_averageif,
    "COUNTIFS": fn_countifs,
    "SUMIFS": fn_sumifs,
    "IF": fn_if,
    "AND": fn_and,
    "OR": fn_or,
    "NOT": fn_not,
    "ISBLANK": fn_isblank,
    "ISNUMBER": fn_isnumber,
    "IFERROR": None,  # handled lazily by the evaluator
    "VLOOKUP": fn_vlookup,
    "HLOOKUP": fn_hlookup,
    "INDEX": fn_index,
    "MATCH": fn_match,
    "ROUND": fn_round,
    "ROUNDUP": fn_roundup,
    "ROUNDDOWN": fn_rounddown,
    "ABS": fn_abs,
    "SQRT": fn_sqrt,
    "POWER": fn_power,
    "MOD": fn_mod,
    "INT": fn_int,
    "CONCATENATE": fn_concatenate,
    "CONCAT": fn_concatenate,
    "LEFT": fn_left,
    "RIGHT": fn_right,
    "MID": fn_mid,
    "LEN": fn_len,
    "UPPER": fn_upper,
    "LOWER": fn_lower,
    "TRIM": fn_trim,
    "TEXT": fn_text,
    "SUBSTITUTE": fn_substitute,
    "YEAR": fn_year,
    "MONTH": fn_month,
    "DAY": fn_day,
    "DATE": fn_date,
    "TODAY": fn_today,
}
