"""Formula evaluator over a :class:`~repro.sheet.Sheet`.

Evaluation is not required for the prediction algorithm itself, but it is a
core substrate of the reproduction: the synthetic corpus generator uses it
to fill in cached formula values, the examples use it to show recommended
formulas computing real results, and tests use it to check that predicted
formulas are semantically sensible, not just textually equal.

:class:`FormulaEvaluator` is a thin compatibility facade over the
incremental :class:`~repro.formula.engine.FormulaEngine`: the engine
tracks the sheet's mutation version and a dependency graph, so repeated
evaluations against an edited sheet always see current values (the seed
evaluator's never-invalidated cache is gone), and ``recalculate()``
reports errors as Excel-style error values written into the cells instead
of silently keeping stale ones.  The facade keeps the historical
exception-based contract for *direct* evaluation calls: a top-level
error value raises :class:`EvaluationError`.
"""

from __future__ import annotations

from repro.formula.engine import FormulaEngine, RecalcReport
from repro.formula.errors import is_error_value
from repro.sheet.sheet import Sheet


class EvaluationError(ValueError):
    """Raised when a formula cannot be evaluated (bad refs, cycles, etc.)."""


class FormulaEvaluator:
    """Evaluates formulas against a sheet, following cell references.

    Referenced cells that themselves contain formulas are evaluated
    recursively (with cycle detection) by the backing
    :class:`~repro.formula.engine.FormulaEngine`.  Unlike the seed
    implementation, results are never served stale: the engine
    re-synchronizes against the sheet's mutation version, so evaluating,
    editing the sheet, and evaluating again returns post-edit values.
    """

    def __init__(self, sheet: Sheet, max_depth: int = 64) -> None:
        self._engine = FormulaEngine(sheet, max_depth=max_depth)

    @property
    def engine(self) -> FormulaEngine:
        """The backing recalculation engine (for incremental editing)."""
        return self._engine

    # ------------------------------------------------------------------ public

    def evaluate_formula(self, formula: str) -> object:
        """Evaluate a formula string in the context of the sheet.

        Raises :class:`EvaluationError` if the result is an error value
        (division by zero, unknown function, circular reference, ...).
        """
        return self._raise_on_error(self._engine.evaluate_formula(formula), formula)

    def evaluate_cell(self, address) -> object:
        """Evaluate the cell at ``address`` (its formula, or its stored value)."""
        return self._raise_on_error(
            self._engine.evaluate_cell(address), str(address)
        )

    def recalculate(self) -> RecalcReport:
        """Evaluate every stale formula cell, writing values back to the sheet.

        Returns a :class:`~repro.formula.engine.RecalcReport` counting the
        formulas that committed proper values (``recalculated``) and those
        that committed error values (``errored``).  Failed formulas no
        longer keep their previous cached value: the error value is
        written into the cell and propagates to dependent formulas.
        """
        return self._engine.recalculate()

    # ---------------------------------------------------------------- internal

    @staticmethod
    def _raise_on_error(value: object, context: str) -> object:
        if is_error_value(value):
            raise EvaluationError(f"formula {context!r} evaluated to {value}")
        return value
