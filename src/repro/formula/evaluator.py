"""Formula evaluator over a :class:`~repro.sheet.Sheet`.

Evaluation is not required for the prediction algorithm itself, but it is a
core substrate of the reproduction: the synthetic corpus generator uses it to
fill in cached formula values, the examples use it to show recommended
formulas computing real results, and tests use it to check that predicted
formulas are semantically sensible, not just textually equal.
"""

from __future__ import annotations

import numbers
from typing import Dict, Optional, Set

from repro.formula.ast_nodes import (
    ASTNode,
    BinaryOp,
    BooleanLiteral,
    CellReference,
    FunctionCall,
    Grouping,
    NumberLiteral,
    RangeReference,
    StringLiteral,
    UnaryOp,
)
from repro.formula.functions import BUILTIN_FUNCTIONS, FunctionError, _coerce_number
from repro.formula.parser import parse_formula
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet


class EvaluationError(ValueError):
    """Raised when a formula cannot be evaluated (bad refs, cycles, etc.)."""


class FormulaEvaluator:
    """Evaluates formulas against a sheet, following cell references.

    Referenced cells that themselves contain formulas are evaluated
    recursively (with cycle detection).  Results are cached per evaluator
    instance.
    """

    def __init__(self, sheet: Sheet, max_depth: int = 64) -> None:
        self._sheet = sheet
        self._max_depth = max_depth
        self._cache: Dict[CellAddress, object] = {}

    # ------------------------------------------------------------------ public

    def evaluate_formula(self, formula: str) -> object:
        """Evaluate a formula string in the context of the sheet."""
        ast = parse_formula(formula)
        return self._evaluate_node(ast, visiting=set(), depth=0)

    def evaluate_cell(self, address) -> object:
        """Evaluate the cell at ``address`` (its formula, or its stored value)."""
        addr = address if isinstance(address, CellAddress) else CellAddress.from_a1(str(address))
        return self._cell_value(addr, visiting=set(), depth=0)

    def recalculate(self) -> int:
        """Evaluate every formula cell, writing cached values back to the sheet.

        Returns the number of formula cells successfully recalculated.
        Formulas that fail to evaluate keep their previous cached value.
        """
        updated = 0
        for addr, cell in self._sheet.formula_cells():
            try:
                value = self.evaluate_formula(cell.formula or "")
            except (EvaluationError, FunctionError):
                continue
            cell.value = value
            updated += 1
        return updated

    # ----------------------------------------------------------------- internal

    def _cell_value(self, address: CellAddress, visiting: Set[CellAddress], depth: int) -> object:
        if address in self._cache:
            return self._cache[address]
        if address in visiting:
            raise EvaluationError(f"circular reference involving {address.to_a1()}")
        cell = self._sheet.get(address)
        if cell.has_formula:
            if depth >= self._max_depth:
                raise EvaluationError("maximum evaluation depth exceeded")
            visiting = visiting | {address}
            ast = parse_formula(cell.formula or "")
            value = self._evaluate_node(ast, visiting=visiting, depth=depth + 1)
        else:
            value = cell.value
        self._cache[address] = value
        return value

    def _evaluate_node(self, node: ASTNode, visiting: Set[CellAddress], depth: int) -> object:
        if isinstance(node, NumberLiteral):
            return node.value
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, BooleanLiteral):
            return node.value
        if isinstance(node, Grouping):
            return self._evaluate_node(node.inner, visiting, depth)
        if isinstance(node, CellReference):
            return self._cell_value(node.address, visiting, depth)
        if isinstance(node, RangeReference):
            cell_range = node.range
            if cell_range.n_cols == 1 or cell_range.n_rows == 1:
                return [
                    self._cell_value(addr, visiting, depth) for addr in cell_range.cells()
                ]
            # Two-dimensional ranges evaluate to a list of rows so lookup
            # functions (VLOOKUP / INDEX / MATCH) see the table structure.
            return [
                [
                    self._cell_value(CellAddress(row, col), visiting, depth)
                    for col in range(cell_range.start.col, cell_range.end.col + 1)
                ]
                for row in range(cell_range.start.row, cell_range.end.row + 1)
            ]
        if isinstance(node, UnaryOp):
            operand = self._evaluate_node(node.operand, visiting, depth)
            if node.op == "-":
                return -_coerce_number(operand)
            if node.op == "+":
                return _coerce_number(operand)
            if node.op == "%":
                return _coerce_number(operand) / 100.0
            raise EvaluationError(f"unknown unary operator {node.op!r}")
        if isinstance(node, BinaryOp):
            return self._evaluate_binary(node, visiting, depth)
        if isinstance(node, FunctionCall):
            return self._evaluate_call(node, visiting, depth)
        raise EvaluationError(f"cannot evaluate node {node!r}")

    def _evaluate_binary(self, node: BinaryOp, visiting: Set[CellAddress], depth: int) -> object:
        left = self._evaluate_node(node.left, visiting, depth)
        right = self._evaluate_node(node.right, visiting, depth)
        op = node.op
        if op == "&":
            return self._as_text(left) + self._as_text(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, left, right)
        left_number = _coerce_number(left)
        right_number = _coerce_number(right)
        if op == "+":
            return left_number + right_number
        if op == "-":
            return left_number - right_number
        if op == "*":
            return left_number * right_number
        if op == "/":
            if right_number == 0:
                raise EvaluationError("division by zero")
            return left_number / right_number
        if op == "^":
            return left_number ** right_number
        raise EvaluationError(f"unknown operator {op!r}")

    def _evaluate_call(self, node: FunctionCall, visiting: Set[CellAddress], depth: int) -> object:
        name = node.name
        if name == "IFERROR":
            if not 1 <= len(node.args) <= 2:
                raise EvaluationError("IFERROR takes one or two arguments")
            try:
                return self._evaluate_node(node.args[0], visiting, depth)
            except (EvaluationError, FunctionError, ZeroDivisionError):
                if len(node.args) == 2:
                    return self._evaluate_node(node.args[1], visiting, depth)
                return ""
        function = BUILTIN_FUNCTIONS.get(name)
        if function is None:
            raise EvaluationError(f"unknown function {name!r}")
        args = [self._evaluate_node(arg, visiting, depth) for arg in node.args]
        try:
            return function(*args)
        except FunctionError:
            raise
        except (TypeError, ValueError, ZeroDivisionError) as exc:
            raise EvaluationError(f"error evaluating {name}: {exc}") from exc

    @staticmethod
    def _as_text(value) -> str:
        if value is None:
            return ""
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    @staticmethod
    def _compare(op: str, left, right) -> bool:
        if isinstance(left, str) or isinstance(right, str):
            left_cmp: object = str(left).lower() if left is not None else ""
            right_cmp: object = str(right).lower() if right is not None else ""
        else:
            left_cmp = _coerce_number(left)
            right_cmp = _coerce_number(right)
        if op == "=":
            return left_cmp == right_cmp
        if op == "<>":
            return left_cmp != right_cmp
        if op == "<":
            return left_cmp < right_cmp  # type: ignore[operator]
        if op == "<=":
            return left_cmp <= right_cmp  # type: ignore[operator]
        if op == ">":
            return left_cmp > right_cmp  # type: ignore[operator]
        return left_cmp >= right_cmp  # type: ignore[operator]
