"""Excel-style error values: the value-based failure lattice of the engine.

The recalculation engine (``repro.formula.engine``) represents evaluation
failures as *values* that live in cells and flow through operators, the
way real spreadsheets do, instead of raising exceptions that abort a
whole-sheet recalculation.  The lattice is small and flat:

==============  ====================================================
``#DIV/0!``     division by zero (also AVERAGE/STDEV/MOD-style
                aggregations over empty numeric sets)
``#REF!``       a reference that cannot be resolved (unparseable
                address text, evaluation deeper than ``max_depth``)
``#CYCLE!``     the cell participates in (or depends on) a circular
                reference chain
``#VALUE!``     an operand or argument of the wrong type
``#NAME?``      an unknown function name or unparseable formula text
==============  ====================================================

:class:`ErrorValue` subclasses :class:`str` deliberately: an error value
*is* its display text, so it serializes through ``Cell.to_dict``, renders
in ``display_text`` and is classified :attr:`~repro.sheet.cell.CellType.ERROR`
by the existing ``#...!``/``#...?`` pattern in ``infer_cell_type`` without
any special-casing.  The flip side is that error checks must come *first*
wherever strings are handled — ``is_error_value`` before any text coercion
— which is exactly how the engine's operator and function dispatch is
written.
"""

from __future__ import annotations

from typing import Tuple


class ErrorValue(str):
    """An Excel-style error value such as ``#DIV/0!``.

    A ``str`` subclass so the error displays, serializes and pattern-
    matches as its code; identity as an *error* is carried by the type,
    checked via :func:`is_error_value`.
    """

    __slots__ = ()

    @property
    def code(self) -> str:
        """The error code text (the string itself)."""
        return str(self)

    def __repr__(self) -> str:
        return f"ErrorValue({str(self)!r})"


#: Division by zero, including empty-set aggregations (AVERAGE, STDEV, MOD).
DIV0_ERROR = ErrorValue("#DIV/0!")
#: A reference that cannot be resolved (bad address text, depth overflow).
REF_ERROR = ErrorValue("#REF!")
#: A circular reference chain.
CYCLE_ERROR = ErrorValue("#CYCLE!")
#: A wrongly-typed operand or function argument.
VALUE_ERROR = ErrorValue("#VALUE!")
#: An unknown function name or unparseable formula.
NAME_ERROR = ErrorValue("#NAME?")

#: Every member of the lattice, in documentation order.
ALL_ERROR_VALUES: Tuple[ErrorValue, ...] = (
    DIV0_ERROR,
    REF_ERROR,
    CYCLE_ERROR,
    VALUE_ERROR,
    NAME_ERROR,
)


def is_error_value(value: object) -> bool:
    """Whether ``value`` is an Excel-style error value."""
    return isinstance(value, ErrorValue)


def first_error(values) -> ErrorValue | None:
    """The first :class:`ErrorValue` in an iterable of scalars, or ``None``.

    Used by the engine to propagate errors through function arguments and
    range contents: spreadsheet semantics are that an error anywhere in an
    input poisons the result (``IFERROR`` being the one escape hatch).
    """
    for value in values:
        if isinstance(value, ErrorValue):
            return value
    return None
