"""Formula templates: ASTs with parameter "holes".

The paper decomposes a concrete formula ``F = F̄(R)`` into a template ``F̄``
(functions + AST structure, with holes for references) and the parameter
cells/ranges ``R`` (Section 3.2).  Prediction step S3 keeps the reference
formula's template and re-grounds each parameter into the target sheet; this
module implements the extraction, rendering and re-instantiation needed for
that step, plus reference shifting used by the corpus generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.formula.ast_nodes import (
    ASTNode,
    BinaryOp,
    CellReference,
    FunctionCall,
    Grouping,
    RangeReference,
    UnaryOp,
    walk,
)
from repro.formula.parser import parse_formula
from repro.sheet.addressing import CellAddress, RangeAddress

Reference = Union[CellAddress, RangeAddress]

#: Rendering of a parameter hole, matching the paper's ``COUNTIF(_:_,_)`` style.
HOLE_CELL = "_"
HOLE_RANGE = "_:_"


@dataclass(frozen=True)
class FormulaTemplate:
    """A formula with its references abstracted into ordered holes.

    ``signature`` is the canonical textual rendering with holes, e.g.
    ``"COUNTIF(_:_,_)"``; ``slots`` records whether each hole expects a
    single cell (``"cell"``) or a range (``"range"``), in left-to-right
    order.
    """

    signature: str
    slots: tuple

    @property
    def n_parameters(self) -> int:
        """Number of parameter holes."""
        return len(self.slots)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.signature


def _render_with_holes(node: ASTNode) -> str:
    """Render an AST to text, replacing every reference with a hole."""
    if isinstance(node, CellReference):
        return HOLE_CELL
    if isinstance(node, RangeReference):
        return HOLE_RANGE
    if isinstance(node, FunctionCall):
        args = ",".join(_render_with_holes(arg) for arg in node.args)
        return f"{node.name}({args})"
    if isinstance(node, BinaryOp):
        return f"{_render_with_holes(node.left)}{node.op}{_render_with_holes(node.right)}"
    if isinstance(node, UnaryOp):
        if node.op == "%":
            return f"{_render_with_holes(node.operand)}%"
        return f"{node.op}{_render_with_holes(node.operand)}"
    if isinstance(node, Grouping):
        return f"({_render_with_holes(node.inner)})"
    return node.to_formula()


def formula_references(formula: Union[str, ASTNode]) -> List[Reference]:
    """Ordered list of cell/range references (the parameters ``R``)."""
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    references: List[Reference] = []
    for node in walk(ast):
        if isinstance(node, CellReference):
            references.append(node.address)
        elif isinstance(node, RangeReference):
            references.append(node.range)
    return references


def extract_template(formula: Union[str, ASTNode]) -> FormulaTemplate:
    """Extract the :class:`FormulaTemplate` of a concrete formula."""
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    slots: List[str] = []
    for node in walk(ast):
        if isinstance(node, CellReference):
            slots.append("cell")
        elif isinstance(node, RangeReference):
            slots.append("range")
    return FormulaTemplate(signature=_render_with_holes(ast), slots=tuple(slots))


def instantiate_template(
    formula: Union[str, ASTNode], parameters: Sequence[Reference]
) -> str:
    """Rebuild a concrete formula from a reference formula and new parameters.

    ``formula`` supplies the template structure; ``parameters`` replace its
    references in left-to-right order.  The parameter count must match the
    template's hole count.
    """
    ast = parse_formula(formula) if isinstance(formula, str) else formula
    template = extract_template(ast)
    if len(parameters) != template.n_parameters:
        raise ValueError(
            f"template {template.signature!r} expects {template.n_parameters} "
            f"parameters, got {len(parameters)}"
        )
    cursor = {"index": 0}

    def rebuild(node: ASTNode) -> str:
        if isinstance(node, (CellReference, RangeReference)):
            parameter = parameters[cursor["index"]]
            cursor["index"] += 1
            return parameter.to_a1()
        if isinstance(node, FunctionCall):
            args = ",".join(rebuild(arg) for arg in node.args)
            return f"{node.name}({args})"
        if isinstance(node, BinaryOp):
            return f"{rebuild(node.left)}{node.op}{rebuild(node.right)}"
        if isinstance(node, UnaryOp):
            if node.op == "%":
                return f"{rebuild(node.operand)}%"
            return f"{node.op}{rebuild(node.operand)}"
        if isinstance(node, Grouping):
            return f"({rebuild(node.inner)})"
        return node.to_formula()

    return "=" + rebuild(ast)


def shift_formula(formula: str, row_delta: int, col_delta: int) -> str:
    """Shift every reference in ``formula`` by the given deltas.

    This mirrors how relative references behave when a formula is copied to
    another cell, and is used by the synthetic corpus generator to create
    families of consistent formulas.
    """
    ast = parse_formula(formula)
    references = formula_references(ast)
    shifted: List[Reference] = []
    for reference in references:
        shifted.append(reference.shifted(row_delta, col_delta))
    return instantiate_template(ast, shifted)


def normalize_formula(formula: str) -> str:
    """Canonical textual form of a formula (used for exact-match scoring).

    Parsing and re-rendering removes whitespace, ``$`` anchors and letter
    case differences in function names so that semantically identical
    spellings compare equal.
    """
    ast = parse_formula(formula)
    return "=" + ast.to_formula()
