"""Auto-Formula reproduction: formula recommendation in spreadsheets.

A from-scratch Python reproduction of *"Auto-Formula: Recommend Formulas in
Spreadsheets using Contrastive Learning for Table Representations"*
(SIGMOD 2024).  See ``DESIGN.md`` (repository root) for the system
inventory and the two-stage retrieval engine, and ``EXPERIMENTS.md`` for
the reproduced tables and figures and how to run them.

Typical usage::

    from repro import (
        build_training_universe, generate_training_pairs, train_models,
        AutoFormula, AutoFormulaConfig,
    )

    universe = build_training_universe()
    pairs = generate_training_pairs(universe)
    encoder, history = train_models(pairs)

    system = AutoFormula(encoder, AutoFormulaConfig())
    system.fit(reference_workbooks)
    prediction = system.predict(target_sheet, target_cell)

Serving usage (multi-tenant workspaces with mutable corpora)::

    from repro import FormulaService, RecommendationRequest

    service = FormulaService(encoder)
    workspace = service.create_workspace("acme", workbooks=reference_workbooks)
    workspace.add_workbook(new_workbook)          # incremental, no refit
    response = workspace.recommend(RecommendationRequest(target_sheet, "D41"))
"""

from repro.sheet import Cell, CellAddress, CellStyle, RangeAddress, Sheet, Workbook
from repro.formula import (
    ErrorValue,
    FormulaEngine,
    FormulaEvaluator,
    RecalcReport,
    extract_template,
    instantiate_template,
    is_error_value,
    parse_formula,
)
from repro.weaksup import generate_training_pairs
from repro.models import ModelConfig, SheetEncoder, TrainingConfig, train_models
from repro.core import AutoFormula, AutoFormulaConfig, FormulaPredictor, Prediction
from repro.corpus import (
    build_all_enterprise_corpora,
    build_enterprise_corpus,
    build_training_universe,
)
from repro.service import (
    AbstainReason,
    FormulaService,
    RecommendationRequest,
    RecommendationResponse,
    ShardedWorkspace,
    Workspace,
)
from repro.server import (
    FormulaClient,
    FormulaServer,
    ServerConfig,
    start_server_in_background,
)
from repro.obs import MetricsRegistry, Tracer, get_tracer

__version__ = "1.0.0"

__all__ = [
    "Cell",
    "CellAddress",
    "CellStyle",
    "RangeAddress",
    "Sheet",
    "Workbook",
    "FormulaEvaluator",
    "FormulaEngine",
    "RecalcReport",
    "ErrorValue",
    "is_error_value",
    "parse_formula",
    "extract_template",
    "instantiate_template",
    "generate_training_pairs",
    "ModelConfig",
    "TrainingConfig",
    "SheetEncoder",
    "train_models",
    "AutoFormula",
    "AutoFormulaConfig",
    "FormulaPredictor",
    "Prediction",
    "build_enterprise_corpus",
    "build_all_enterprise_corpora",
    "build_training_universe",
    "AbstainReason",
    "FormulaService",
    "RecommendationRequest",
    "RecommendationResponse",
    "ShardedWorkspace",
    "Workspace",
    "FormulaClient",
    "FormulaServer",
    "ServerConfig",
    "start_server_in_background",
    "MetricsRegistry",
    "Tracer",
    "get_tracer",
    "__version__",
]
