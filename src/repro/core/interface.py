"""The common predictor interface shared by Auto-Formula and all baselines."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class Prediction:
    """A recommended formula for a target cell.

    ``confidence`` is in [0, 1]; the evaluation harness sweeps thresholds on
    it to draw PR curves.  ``details`` carries method-specific provenance
    (reference sheet/cell, prompt variant, ...) for analysis and debugging.
    """

    formula: str
    confidence: float = 1.0
    details: Dict[str, object] = field(default_factory=dict)


class FormulaPredictor(abc.ABC):
    """A formula-recommendation method.

    Every method is used the same way by the evaluation harness: ``fit`` it
    once on the organization's reference workbooks (the offline phase), then
    call ``predict`` per target cell (the online phase).  ``predict`` may
    return ``None`` to abstain; abstentions lower recall but not precision,
    matching the paper's metric definitions.
    """

    #: Human-readable method name used in result tables.
    name: str = "predictor"

    #: Whether the fitted corpus can be mutated in place via
    #: ``add_workbooks`` / ``remove_workbook`` after ``fit``.  Methods that
    #: leave this ``False`` are refit from scratch by the service layer
    #: (``repro.service``) whenever a workspace's corpus changes; methods
    #: that set it ``True`` guarantee that incremental mutation produces
    #: predictions identical to a fresh ``fit`` on the equivalent corpus.
    supports_incremental_corpus: bool = False

    @abc.abstractmethod
    def fit(self, reference_workbooks: Sequence[Workbook]) -> None:
        """Index / learn from the organization's existing workbooks."""

    @abc.abstractmethod
    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        """Recommend a formula for ``target_cell`` on ``target_sheet``."""

    def predict_batch(
        self, target_sheet: Sheet, target_cells: Sequence[CellAddress]
    ) -> List[Optional[Prediction]]:
        """Recommend formulas for many cells of one sheet, in order.

        The default implementation simply loops :meth:`predict`; methods
        with a vectorizable online phase (Auto-Formula) override it to share
        per-sheet work — featurization, sheet-level retrieval — across the
        whole batch.  Implementations must return exactly the predictions
        sequential ``predict`` calls would.
        """
        return [self.predict(target_sheet, target_cell) for target_cell in target_cells]
