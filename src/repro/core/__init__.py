"""The Auto-Formula system: the paper's primary contribution.

:class:`AutoFormula` wires together the trained representation models, the
ANN indexes and the formula-template machinery into the three online steps
of Section 4.1 / Algorithm 2:

* **S1** — search reference sheets by coarse similar-sheet retrieval;
* **S2** — search a reference formula by fine similar-region retrieval
  among formula cells of the retrieved sheets;
* **S3** — re-ground each parameter of the reference formula into the
  target sheet by another similar-region search around its translated
  location.
"""

from repro.core.interface import FormulaPredictor, Prediction
from repro.core.config import AutoFormulaConfig
from repro.core.pipeline import AutoFormula, ScoredPrediction

__all__ = [
    "FormulaPredictor",
    "Prediction",
    "AutoFormulaConfig",
    "AutoFormula",
    "ScoredPrediction",
]
