"""The end-to-end Auto-Formula predictor (Algorithm 2)."""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ann import SearchResult, create_index
from repro.core.config import AutoFormulaConfig
from repro.core.interface import FormulaPredictor, Prediction
from repro.features.window import SheetKeyedLRU, gather_windows
from repro.formula.ast_nodes import CellReference, RangeReference
from repro.formula.parser import parse_formula
from repro.formula.template import formula_references, instantiate_template
from repro.formula.tokenizer import FormulaSyntaxError
from repro.models.encoder import SheetEncoder
from repro.nn.layers import Dropout, Flatten, L2Normalize, Linear, ReLU, Tanh
from repro.obs import get_tracer
from repro.sheet.addressing import CellAddress, RangeAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook

#: Layers that act independently on every cell of a window, so they commute
#: with window extraction (see ``AutoFormula._fine_fast_path``).
_PER_CELL_LAYERS = (Linear, ReLU, Tanh, Dropout)

_UNSET = object()


def _reference_parameter_cells(
    references: Sequence[Union[CellAddress, RangeAddress]]
) -> List[CellAddress]:
    """Unique cells referenced as parameters, in first-occurrence order
    (range parameters contribute their start and end cells)."""
    cells: List[CellAddress] = []
    seen: set = set()
    for reference in references:
        ends = (
            (reference.start, reference.end)
            if isinstance(reference, RangeAddress)
            else (reference,)
        )
        for cell in ends:
            key = (cell.row, cell.col)
            if key not in seen:
                seen.add(key)
                cells.append(cell)
    return cells


def _dedupe_coords(coords: np.ndarray) -> np.ndarray:
    """Drop duplicate (row, col) rows, keeping first-occurrence order."""
    flat = coords[:, 0] * (int(coords[:, 1].max()) + 1) + coords[:, 1]
    return coords[np.sort(np.unique(flat, return_index=True)[1])]


@dataclass
class _ReferenceFormula:
    """A formula cell on an indexed reference sheet.

    ``sheet_position`` is the owning sheet's *stable id* (its slot in
    ``AutoFormula._reference_sheets``, which is never renumbered — removed
    sheets leave ``None`` tombstones).  The formula-region embedding itself
    lives in the second-stage vector index, at the physical position
    recorded in the owning sheet's entry of
    ``AutoFormula._formula_positions``.
    """

    sheet_position: int
    address: CellAddress
    formula: str


@dataclass
class _ReferenceSheet:
    """One indexed reference sheet and its formula cells."""

    workbook_name: str
    sheet: Sheet
    formulas: List[_ReferenceFormula]


@dataclass(frozen=True)
class ScoredPrediction:
    """One target cell's best S2 hit, with the keys needed to merge
    candidate predictions *across* predictors deterministically.

    Returned by :meth:`AutoFormula.predict_batch_scored`.  ``prediction``
    is ``None`` when the hit failed the acceptance threshold or S3
    re-grounding (the same cases in which :meth:`AutoFormula.predict`
    abstains).  ``sheet_rank`` is the index of the owning reference sheet
    in the ``sheet_ids`` sequence the caller passed — the caller's own
    candidate ordering — and ``formula_index`` is the formula's position
    within that sheet, so ``(distance, sheet_rank, formula_index)``
    reproduces the single-index pool tie-break when bests from several
    shards are compared.
    """

    prediction: Optional[Prediction]
    distance: float
    sheet_rank: int
    formula_index: int


class _ContentKeyedVectorLRU:
    """Bounded, thread-safe ``(content key, version) -> vector`` cache.

    The wire layer's :class:`~repro.server.schemas.SheetInterner` stamps
    decoded sheets with their content hash; this cache lets two *distinct*
    sheet objects with identical content (e.g. the same payload arriving
    after the interner evicted its entry) share one query embedding.
    Vectors are stored read-only.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self._mutex = threading.Lock()

    def get(self, key: Tuple[str, int]) -> Optional[np.ndarray]:
        with self._mutex:
            vector = self._entries.get(key)
            if vector is not None:
                self._entries.move_to_end(key)
            return vector

    def put(self, key: Tuple[str, int], vector: np.ndarray) -> None:
        with self._mutex:
            self._entries[key] = vector
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()


class AutoFormula(FormulaPredictor):
    """Formula recommendation by similar-sheet / similar-region retrieval.

    The online phase is a vectorized two-stage retrieval engine: S1 finds
    ``top_k_sheets`` similar sheets in the sheet-level index, S2 scores the
    target region against *all* formula regions of those sheets with a
    single matrix product over a second-stage index, and S3 re-grounds the
    winning formula's parameters.  :meth:`predict_batch` runs S1 once and
    featurizes/encodes every target region of a sheet in one forward pass.

    The indexed corpus is mutable after :meth:`fit`: :meth:`add_workbooks`
    appends new reference sheets without touching the existing ones, and
    :meth:`remove_workbook` tombstones a workbook's sheets out of both
    vector indexes (see :meth:`repro.ann.VectorIndex.remove_batch`).
    Predictions stay bit-identical to a fresh ``fit`` on the equivalent
    corpus (adds in order; removed-then-re-added workbooks at the end),
    with one deliberate exception: under ``"ivf"`` index kinds, adding to
    an *already-queried* predictor keeps the trained quantizer and assigns
    the new vectors incrementally (recall-tested, retrained on 2x growth)
    rather than paying a k-means retrain per add — exact/LSH kinds, adds
    before the first query, and every removal remain exactly
    refit-equivalent.
    """

    name = "Auto-Formula"
    supports_incremental_corpus = True

    def __init__(
        self,
        encoder: SheetEncoder,
        config: Optional[AutoFormulaConfig] = None,
    ) -> None:
        self.encoder = encoder
        self.config = config or AutoFormulaConfig()
        #: Reference sheets by stable sheet id; removed sheets become None.
        self._reference_sheets: List[Optional[_ReferenceSheet]] = []
        self._sheet_index = None
        self._formula_index = None
        #: Per reference sheet (by stable id): physical positions of its
        #: formulas in the formula index (None once the sheet is removed).
        self._formula_positions: List[Optional[np.ndarray]] = []
        #: Per reference sheet (by stable id): its physical position in the
        #: sheet index (None once the sheet is removed).
        self._sheet_positions: List[Optional[int]] = []
        #: Physical store sizes of both indexes (tombstones included); kept
        #: here so newly added vectors get their positions without peeking
        #: at index internals, and rewritten on compaction remaps.
        self._sheet_store_size = 0
        self._formula_store_size = 0
        #: Bounded LRU of per-cell fine-embedding caches for target sheets.
        self._target_cache = SheetKeyedLRU(self.config.max_cached_target_sheets)
        #: Region embeddings of reference parameter cells, keyed by
        #: (sheet id, row, col).  Reference sheets are pinned by
        #: ``_reference_sheets`` for the lifetime of a fit, so the ids stay
        #: valid; the cache is cleared (and re-bounded) on every ``fit``.
        self._reference_region_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        #: Bounded LRU of model-reduced per-sheet tensors (the fine model's
        #: per-cell prefix applied to a sheet's padded feature tensor once,
        #: instead of once per overlapping window).
        self._reduced_cache = SheetKeyedLRU(self.config.max_cached_target_sheets)
        self._reduced_padding: Optional[np.ndarray] = None
        self._fine_fast = _UNSET
        #: Cross-request S1 query-embedding reuse (off when
        #: ``config.reuse_query_embeddings`` is false): an identity-keyed
        #: LRU holding ``(sheet version, vector)`` plus a content-hash-keyed
        #: LRU for distinct sheet objects carrying the wire layer's
        #: ``content_key``.  Both are version-checked, so an edited sheet
        #: always re-encodes.
        self._query_vector_cache = SheetKeyedLRU(
            max(self.config.max_cached_target_sheets, 8)
        )
        self._query_vector_by_content = _ContentKeyedVectorLRU(
            4 * max(self.config.max_cached_target_sheets, 8)
        )

    # --------------------------------------------------------------- encoding

    def _sheet_vector(self, sheet: Sheet) -> np.ndarray:
        """Sheet-level embedding (coarse model, unless fine-only ablation).

        Query-side only — reference sheets are embedded in bulk by
        ``_index_sheets``.  With ``reuse_query_embeddings`` on, the vector
        is cached by sheet identity + mutation version (and by the wire
        layer's content hash when the sheet carries one), so repeated
        requests for the same sheet within and across batches encode once.
        """
        if not self.config.reuse_query_embeddings:
            return self._encode_sheet_vector(sheet)
        version = sheet.version
        cached = self._query_vector_cache.get(sheet)
        if cached is not None and cached[0] == version:
            return cached[1]
        content_key = getattr(sheet, "content_key", None)
        if content_key is not None:
            vector = self._query_vector_by_content.get((content_key, version))
            if vector is not None:
                self._query_vector_cache.put(sheet, (version, vector))
                return vector
        vector = self._encode_sheet_vector(sheet)
        vector.flags.writeable = False
        self._query_vector_cache.put(sheet, (version, vector))
        if content_key is not None:
            self._query_vector_by_content.put((content_key, version), vector)
        return vector

    def _encode_sheet_vector(self, sheet: Sheet) -> np.ndarray:
        window = self.encoder.featurizer.featurize_sheet(sheet)[None, ...]
        if self.config.granularity == "fine_only":
            return self.encoder.fine_model.forward(window)[0]
        return self.encoder.coarse_model.forward(window)[0]

    def _region_vectors(
        self, sheet: Sheet, centers: Sequence[CellAddress], blank_center: bool = False
    ) -> np.ndarray:
        """Region-level embeddings (fine model, unless coarse-only ablation).

        ``blank_center`` masks the center cell of every window; the S2
        formula-region comparison uses this so that an already-filled
        reference cell and a still-empty target cell embed comparably.
        """
        if not centers:
            dim = (
                self.encoder.coarse_dimension
                if self.config.granularity == "coarse_only"
                else self.encoder.fine_dimension
            )
            return np.zeros((0, dim), dtype=np.float32)
        if self.config.granularity != "coarse_only":
            vectors = self._fine_region_vectors_fast(sheet, list(centers), blank_center)
            if vectors is not None:
                return vectors
        windows = self.encoder.featurizer.featurize_regions(
            sheet, list(centers), blank_center=blank_center
        )
        if self.config.granularity == "coarse_only":
            return self.encoder.coarse_model.forward(windows)
        return self.encoder.fine_model.forward(windows)

    # ----------------------------------------------------- fine-model fast path

    def _fine_fast_path(self):
        """``(per-cell prefix layers, normalizer)`` when the fine model is
        per-cell all the way to its ``Flatten`` + ``L2Normalize`` tail.

        Such a model commutes with window extraction: applying the prefix to
        a sheet's padded feature tensor once and gathering windows in the
        reduced space gives the same embeddings as reducing every
        (heavily overlapping) window separately, at a fraction of the cost.
        Returns ``None`` for architectures with spatial layers (conv /
        pooling), which fall back to the general per-window path.
        """
        if self._fine_fast is _UNSET:
            result = None
            layers = getattr(self.encoder.fine_model, "layers", None)
            if layers:
                for index, layer in enumerate(layers):
                    if isinstance(layer, Flatten):
                        prefix, tail = layers[:index], layers[index + 1 :]
                        if (
                            all(isinstance(item, _PER_CELL_LAYERS) for item in prefix)
                            and len(tail) == 1
                            and isinstance(tail[0], L2Normalize)
                        ):
                            result = (prefix, tail[0])
                        break
                    if not isinstance(layer, _PER_CELL_LAYERS):
                        break
            self._fine_fast = result
        return self._fine_fast

    def _reduced_padding_features(self) -> np.ndarray:
        if self._reduced_padding is None:
            prefix, __ = self._fine_fast_path()
            vector = self.encoder.featurizer.padding_features()[None, :]
            for layer in prefix:
                vector = layer.forward(vector, training=False)
            self._reduced_padding = vector[0]
        return self._reduced_padding

    def _reduced_sheet_tensor(self, sheet: Sheet) -> Optional[np.ndarray]:
        """The fine prefix applied to the sheet's padded tensor, memoized."""
        tensor = self.encoder.featurizer.padded_sheet_tensor(sheet)
        if tensor is None:  # sheet exceeds the densification budget
            return None
        reduced = self._reduced_cache.get(sheet)
        if reduced is not None:
            return reduced
        prefix, __ = self._fine_fast_path()
        height, width, dim = tensor.shape
        block = tensor.reshape(-1, dim)
        for layer in prefix:
            block = layer.forward(block, training=False)
        reduced = block.reshape(height, width, -1)
        self._reduced_cache.put(sheet, reduced)
        return reduced

    def _fine_region_vectors_fast(
        self, sheet: Sheet, centers: List[CellAddress], blank_center: bool
    ) -> Optional[np.ndarray]:
        """Fine region embeddings via the reduced per-sheet tensor, or
        ``None`` when the fast path does not apply."""
        if self._fine_fast_path() is None:
            return None
        reduced = self._reduced_sheet_tensor(sheet)
        if reduced is None:
            return None
        rows = self.encoder.featurizer.config.window_rows
        cols = self.encoder.featurizer.config.window_cols
        padding = self._reduced_padding_features()
        windows = gather_windows(
            reduced, centers, sheet.n_rows, sheet.n_cols, rows, cols, padding
        )
        if blank_center:
            windows[:, rows // 2, cols // 2] = padding
        __, normalizer = self._fine_fast_path()
        return normalizer.forward(windows.reshape(len(centers), -1), training=False)

    def _target_region_vectors(self, sheet: Sheet, centers: Sequence[CellAddress]) -> np.ndarray:
        """Region embeddings on a target sheet, memoized per cell in the LRU."""
        cache: Optional[Dict[Tuple[int, int], np.ndarray]] = self._target_cache.get(sheet)
        if cache is None:
            cache = {}
            self._target_cache.put(sheet, cache)
        missing = [center for center in centers if (center.row, center.col) not in cache]
        if missing:
            vectors = self._region_vectors(sheet, missing)
            for center, vector in zip(missing, vectors):
                cache[(center.row, center.col)] = vector
        return np.stack([cache[(center.row, center.col)] for center in centers])

    def _reference_region_vector(self, sheet: Sheet, center: CellAddress) -> np.ndarray:
        """Region embedding of one reference parameter cell, memoized."""
        key = (id(sheet), center.row, center.col)
        vector = self._reference_region_cache.get(key)
        if vector is None:
            vector = self._region_vectors(sheet, [center])[0]
            self._reference_region_cache[key] = vector
        return vector

    def _warm_reference_cache(self, sheet: Sheet, centers: Sequence[CellAddress]) -> None:
        """Embed any uncached reference parameter regions in one forward pass."""
        missing = [
            center
            for center in centers
            if (id(sheet), center.row, center.col) not in self._reference_region_cache
        ]
        if not missing:
            return
        vectors = self._region_vectors(sheet, missing)
        for center, vector in zip(missing, vectors):
            self._reference_region_cache[(id(sheet), center.row, center.col)] = vector

    def _warm_target_cache(self, sheet: Sheet, centers: Sequence[CellAddress]) -> None:
        """Embed any uncached target candidate regions in one forward pass."""
        if centers:
            self._target_region_vectors(sheet, centers)

    # ---------------------------------------------------------------- offline

    @staticmethod
    def _parameter_cells(formulas: Sequence[_ReferenceFormula]) -> List[CellAddress]:
        """Unique cells referenced as parameters by any of ``formulas``."""
        references: List[Union[CellAddress, RangeAddress]] = []
        for formula in formulas:
            try:
                ast = parse_formula(formula.formula)
            except FormulaSyntaxError:
                continue
            references.extend(formula_references(ast))
        return _reference_parameter_cells(references)

    @staticmethod
    def _flatten(
        reference_workbooks: Sequence[Union[Workbook, Sheet]]
    ) -> List[Tuple[str, Sheet]]:
        """(workbook name, sheet) pairs in corpus order."""
        sheets: List[Tuple[str, Sheet]] = []
        for item in reference_workbooks:
            if isinstance(item, Sheet):
                sheets.append(("<sheet>", item))
            else:
                sheets.extend((item.name, sheet) for sheet in item)
        return sheets

    def fit(self, reference_workbooks: Sequence[Union[Workbook, Sheet]]) -> None:
        """Offline phase: embed and index every reference sheet and formula."""
        self._reference_sheets = []
        self._target_cache.clear()
        self._reference_region_cache.clear()
        self._reduced_cache.clear()
        self._query_vector_cache.clear()
        self._query_vector_by_content.clear()
        # The encoder's models (weights or whole objects) may have changed
        # since the last fit; drop everything derived from them.
        self._reduced_padding = None
        self._fine_fast = _UNSET

        sheet_dimension = (
            self.encoder.fine_dimension
            if self.config.granularity == "fine_only"
            else self.encoder.coarse_dimension
        )
        region_dimension = (
            self.encoder.coarse_dimension
            if self.config.granularity == "coarse_only"
            else self.encoder.fine_dimension
        )
        index_kwargs = dict(
            scoring_mode=self.config.scoring_mode,
            storage_dtype=self.config.storage_dtype,
            tier1_overfetch=self.config.tier1_overfetch,
        )
        self._sheet_index = create_index(
            self.config.sheet_index_kind, sheet_dimension, **index_kwargs
        )
        self._formula_index = create_index(
            self.config.formula_index_kind, region_dimension, **index_kwargs
        )
        self._formula_positions = []
        self._sheet_positions = []
        self._sheet_store_size = 0
        self._formula_store_size = 0
        self._index_sheets(self._flatten(reference_workbooks))

    def _index_sheets(self, sheets: Sequence[Tuple[str, Sheet]]) -> None:
        """Embed and index new reference sheets, appended after existing ones."""
        if not sheets:
            return
        base_id = len(self._reference_sheets)
        sheet_windows: List[np.ndarray] = []
        for offset, (workbook_name, sheet) in enumerate(sheets):
            sheet_id = base_id + offset
            formula_cells = sheet.formula_cells()
            centers = [address for address, __ in formula_cells]
            embeddings = self._region_vectors(sheet, centers, blank_center=True)
            formulas = [
                _ReferenceFormula(sheet_id, address, cell.formula or "")
                for address, cell in formula_cells
            ]
            # Pre-embed every formula's parameter regions while this sheet's
            # feature tensor is hot, so online S3 re-grounding never has to
            # re-featurize a reference sheet.
            self._warm_reference_cache(sheet, self._parameter_cells(formulas))
            self._reference_sheets.append(
                _ReferenceSheet(workbook_name=workbook_name, sheet=sheet, formulas=formulas)
            )
            self._formula_index.add_batch(
                [(sheet_id, local) for local in range(len(formulas))], embeddings
            )
            self._formula_positions.append(
                np.arange(
                    self._formula_store_size,
                    self._formula_store_size + len(formulas),
                    dtype=np.int64,
                )
            )
            self._formula_store_size += len(formulas)
            sheet_windows.append(self.encoder.featurizer.featurize_sheet(sheet))

        windows = np.stack(sheet_windows)
        model = (
            self.encoder.fine_model
            if self.config.granularity == "fine_only"
            else self.encoder.coarse_model
        )
        self._sheet_index.add_batch(
            list(range(base_id, base_id + len(sheets))), model.forward(windows)
        )
        self._sheet_positions.extend(
            range(self._sheet_store_size, self._sheet_store_size + len(sheets))
        )
        self._sheet_store_size += len(sheets)

    # ------------------------------------------------------- corpus mutation

    def add_workbooks(self, workbooks: Sequence[Union[Workbook, Sheet]]) -> int:
        """Index additional workbooks without refitting the existing corpus.

        Returns the number of sheets added.  Equivalent to a fresh
        :meth:`fit` on the old corpus followed by the new workbooks, with
        bit-identical predictions — except for the IVF stale-quantizer
        case spelled out in the class docstring.
        """
        if self._sheet_index is None:
            self.fit(list(workbooks))
            return self.n_reference_sheets
        pairs = self._flatten(workbooks)
        self._index_sheets(pairs)
        return len(pairs)

    def add_workbook(self, workbook: Union[Workbook, Sheet]) -> int:
        """Index one additional workbook (see :meth:`add_workbooks`)."""
        return self.add_workbooks([workbook])

    def remove_workbook(self, workbook_name: str) -> int:
        """Remove every indexed sheet of ``workbook_name`` in place.

        Sheets are tombstoned out of the sheet and formula indexes (no
        refit); when an index compacts, the returned remap is applied to the
        physical-position bookkeeping.  Returns the number of sheets removed
        and raises ``KeyError`` if the workbook is not indexed.
        """
        removed_ids = [
            sheet_id
            for sheet_id, reference in enumerate(self._reference_sheets)
            if reference is not None and reference.workbook_name == workbook_name
        ]
        if not removed_ids:
            raise KeyError(f"workbook {workbook_name!r} is not indexed")

        # Purge cached reference-region embeddings of the removed sheets:
        # the cache is keyed by id(sheet), and dropping the sheet objects
        # below would allow id reuse to serve stale vectors.
        dead_sheet_object_ids = {
            id(self._reference_sheets[sheet_id].sheet) for sheet_id in removed_ids
        }
        self._reference_region_cache = {
            key: vector
            for key, vector in self._reference_region_cache.items()
            if key[0] not in dead_sheet_object_ids
        }

        dead_formula_positions = [
            self._formula_positions[sheet_id]
            for sheet_id in removed_ids
            if self._formula_positions[sheet_id].size
        ]
        if dead_formula_positions:
            remap = self._formula_index.remove_batch(np.concatenate(dead_formula_positions))
            if remap is not None:
                self._formula_positions = [
                    remap[positions] if positions is not None else None
                    for positions in self._formula_positions
                ]
                self._formula_store_size = len(self._formula_index)

        sheet_remap = self._sheet_index.remove_batch(
            [self._sheet_positions[sheet_id] for sheet_id in removed_ids]
        )
        if sheet_remap is not None:
            self._sheet_positions = [
                int(sheet_remap[position]) if position is not None else None
                for position in self._sheet_positions
            ]
            self._sheet_store_size = len(self._sheet_index)

        for sheet_id in removed_ids:
            self._reference_sheets[sheet_id] = None
            self._formula_positions[sheet_id] = None
            self._sheet_positions[sheet_id] = None
        return len(removed_ids)

    @property
    def n_reference_sheets(self) -> int:
        """Number of indexed (live) reference sheets."""
        return sum(1 for reference in self._reference_sheets if reference is not None)

    @property
    def n_reference_formulas(self) -> int:
        """Number of indexed (live) reference formulas."""
        return sum(
            len(reference.formulas)
            for reference in self._reference_sheets
            if reference is not None
        )

    @property
    def sheet_id_watermark(self) -> int:
        """Stable sheet ids assigned so far (tombstones included).

        Stable ids are never renumbered, so the sheets of the next
        ``add_workbooks`` call get ids ``watermark, watermark + 1, ...`` in
        corpus order — which is how a sharding coordinator maps its global
        sheet bookkeeping onto each shard's ids without peeking inside.
        """
        return len(self._reference_sheets)

    # ------------------------------------------------------------- persistence

    def snapshot_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Export the fitted state as ``(manifest fragment, raw arrays)``.

        The manifest fragment is JSON-ready bookkeeping (reference-sheet
        registry with tombstones, index kinds for load-time validation);
        the arrays are the two indexes' contiguous stores plus the
        physical-position maps, kept as raw blocks so a snapshot loader
        can memory-map them.  Embedding caches are deliberately *not*
        exported: both a fresh fit and a restored predictor compute
        query-time embeddings with identical batch shapes, so the caches
        are pure warm-up state.
        """
        state: Dict[str, object] = {
            "predictor": type(self).__name__,
            "granularity": self.config.granularity,
            "sheet_index_kind": self.config.sheet_index_kind,
            "formula_index_kind": self.config.formula_index_kind,
            # Informational: the scan-store layout this snapshot's arrays
            # were written with.  Restore does NOT require a match — the
            # exact float32 store is authoritative and quantized codes are
            # a pure function of it, so a predictor configured differently
            # simply re-derives (or ignores) the scan store.
            "scoring_mode": self.config.scoring_mode,
            "storage_dtype": self.config.storage_dtype,
            "fitted": self._sheet_index is not None,
            "sheet_store_size": int(self._sheet_store_size),
            "formula_store_size": int(self._formula_store_size),
            "reference_sheets": [
                None
                if reference is None
                else {
                    "workbook": reference.workbook_name,
                    "sheet": reference.sheet.name,
                    "formulas": [
                        [formula.address.to_a1(), formula.formula]
                        for formula in reference.formulas
                    ],
                }
                for reference in self._reference_sheets
            ],
        }
        arrays: Dict[str, np.ndarray] = {}
        if self._sheet_index is not None:
            for name, block in self._sheet_index.store_state().items():
                arrays[f"sheet_{name}"] = block
            arrays["sheet_keys"] = np.asarray(self._sheet_index._keys, dtype=np.int64)
            for name, block in self._formula_index.store_state().items():
                arrays[f"formula_{name}"] = block
            formula_keys = self._formula_index._keys
            arrays["formula_keys"] = (
                np.asarray(formula_keys, dtype=np.int64)
                if formula_keys
                else np.empty((0, 2), dtype=np.int64)
            )
            arrays["sheet_positions"] = np.asarray(
                [-1 if position is None else position for position in self._sheet_positions],
                dtype=np.int64,
            )
            live_position_blocks = [
                positions
                for positions in self._formula_positions
                if positions is not None
            ]
            arrays["formula_positions_flat"] = (
                np.concatenate(live_position_blocks).astype(np.int64)
                if live_position_blocks
                else np.empty(0, dtype=np.int64)
            )
            offsets = [0]
            for positions in self._formula_positions:
                offsets.append(offsets[-1] + (0 if positions is None else len(positions)))
            arrays["formula_positions_offsets"] = np.asarray(offsets, dtype=np.int64)
        return state, arrays

    def restore_snapshot_state(
        self,
        state: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        resolve_sheet: Callable[[str, str], Sheet],
    ) -> None:
        """Adopt a :meth:`snapshot_state` export onto this (fresh) predictor.

        ``resolve_sheet`` maps ``(workbook name, sheet name)`` to the live
        :class:`Sheet` object of the restored corpus, so reference-sheet
        entries point at the same objects the owning workspace serves and
        edits.  The configured index kinds must match the snapshot's: the
        stored vectors are index-kind-agnostic, but silently re-homing an
        IVF store under an LSH config would not reproduce the snapshotting
        predictor's answers.  Raises ``ValueError`` on any mismatch.
        """
        for field, mine in (
            ("granularity", self.config.granularity),
            ("sheet_index_kind", self.config.sheet_index_kind),
            ("formula_index_kind", self.config.formula_index_kind),
        ):
            theirs = state.get(field)
            if theirs != mine:
                raise ValueError(
                    f"snapshot was taken with {field}={theirs!r}, this predictor "
                    f"is configured with {mine!r}"
                )
        self.fit([])  # reset indexes, caches and bookkeeping to a blank fit
        references: List[Optional[_ReferenceSheet]] = []
        for sheet_id, entry in enumerate(state.get("reference_sheets", [])):
            if entry is None:
                references.append(None)
                continue
            sheet = resolve_sheet(str(entry["workbook"]), str(entry["sheet"]))
            references.append(
                _ReferenceSheet(
                    workbook_name=str(entry["workbook"]),
                    sheet=sheet,
                    formulas=[
                        _ReferenceFormula(sheet_id, CellAddress.from_a1(a1), formula)
                        for a1, formula in entry["formulas"]
                    ],
                )
            )
        self._reference_sheets = references
        if not state.get("fitted", False):
            self._sheet_index = None
            self._formula_index = None
            return
        self._sheet_index.restore_store(
            [int(key) for key in arrays["sheet_keys"]],
            arrays["sheet_matrix"],
            arrays["sheet_sq_norms"],
            arrays["sheet_alive"],
            codes=arrays.get("sheet_codes"),
            scales=arrays.get("sheet_scales"),
            recon_errors=arrays.get("sheet_recon_errors"),
        )
        self._formula_index.restore_store(
            [(int(sheet_id), int(local)) for sheet_id, local in arrays["formula_keys"]],
            arrays["formula_matrix"],
            arrays["formula_sq_norms"],
            arrays["formula_alive"],
            codes=arrays.get("formula_codes"),
            scales=arrays.get("formula_scales"),
            recon_errors=arrays.get("formula_recon_errors"),
        )
        self._sheet_positions = [
            None if position < 0 else int(position)
            for position in arrays["sheet_positions"]
        ]
        flat = np.asarray(arrays["formula_positions_flat"], dtype=np.int64)
        offsets = arrays["formula_positions_offsets"]
        self._formula_positions = [
            None
            if reference is None
            else flat[int(offsets[sheet_id]) : int(offsets[sheet_id + 1])].copy()
            for sheet_id, reference in enumerate(references)
        ]
        self._sheet_store_size = int(state["sheet_store_size"])
        self._formula_store_size = int(state["formula_store_size"])

    def memory_stats(self) -> Dict[str, object]:
        """Resident-byte accounting of both vector indexes (JSON-ready).

        See :meth:`repro.ann.VectorIndex.memory_stats`; ``total_bytes``
        sums both indexes so serving layers can aggregate across shards.
        """
        sheet = self._sheet_index.memory_stats() if self._sheet_index is not None else None
        formula = (
            self._formula_index.memory_stats() if self._formula_index is not None else None
        )
        total = 0
        for stats in (sheet, formula):
            if stats is not None:
                total += int(stats["bytes"]["total"])  # type: ignore[index]
        return {"sheet_index": sheet, "formula_index": formula, "total_bytes": total}

    @property
    def sheet_index(self):
        """The S1 sheet-level vector index (``None`` before ``fit``)."""
        return self._sheet_index

    @property
    def formula_index(self):
        """The S2 formula-region vector index (``None`` before ``fit``)."""
        return self._formula_index

    # ----------------------------------------------------------------- online

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        """Run S1 -> S2 -> S3 and return a prediction (or ``None`` to abstain)."""
        return self.predict_batch(target_sheet, [target_cell])[0]

    def predict_batch(
        self, target_sheet: Sheet, target_cells: Sequence[CellAddress]
    ) -> List[Optional[Prediction]]:
        """Predict every target cell of one sheet, sharing the per-sheet work.

        S1 runs once, all target regions are featurized and encoded in one
        forward pass, and S2 scores the whole batch against the candidate
        formula pool with a single matrix product.
        """
        cells = list(target_cells)
        if not cells:
            return []
        # S1: similar-sheet search over the coarse index (once per sheet).
        hits = self.sheet_hits(target_sheet)
        if not hits:
            return [None] * len(cells)
        # S2 + S3 over the hit sheets' formula pools, in hit order so
        # distance ties resolve toward the most similar sheet.
        scored = self.predict_batch_scored(
            target_sheet, cells, [int(hit.key) for hit in hits]
        )
        return [item.prediction if item is not None else None for item in scored]

    def sheet_query_vector(self, target_sheet: Sheet) -> np.ndarray:
        """The S1 query-side embedding of a target sheet.

        Exposed so a sharding coordinator can embed the query *once* and
        pass it to every shard's :meth:`sheet_hits` instead of paying the
        full-sheet featurization per shard.  Depends only on the shared
        encoder, so every shard would compute the identical vector.
        """
        return self._sheet_vector(target_sheet)

    def region_query_vectors(
        self, target_sheet: Sheet, target_cells: Sequence[CellAddress]
    ) -> np.ndarray:
        """The S2 query-side embeddings of the target cells (center-blanked).

        The coordinator-side counterpart of :meth:`sheet_query_vector` for
        :meth:`predict_batch_scored`'s ``target_vectors`` argument.
        """
        return self._region_vectors(target_sheet, list(target_cells), blank_center=True)

    def sheet_hits(
        self,
        target_sheet: Sheet,
        k: Optional[int] = None,
        query_vector: Optional[np.ndarray] = None,
    ) -> List[SearchResult]:
        """S1 as a standalone stage: the (up to) ``k`` most similar indexed
        reference sheets, most similar first.

        Hit keys are *stable sheet ids* usable with
        :meth:`predict_batch_scored`.  ``k`` defaults to the configured
        ``top_k_sheets``.  A sharding coordinator runs this on every shard
        (passing the once-computed ``query_vector``) and merges the hits by
        ``(distance, global corpus order)`` before handing each shard its
        slice of the merged candidate list.
        """
        if not self._reference_sheets or self._sheet_index is None or len(self._sheet_index) == 0:
            return []
        with get_tracer().span(
            "s1.sheet_hits", k=self.config.top_k_sheets if k is None else k
        ) as span:
            if query_vector is None:
                query_vector = self._sheet_vector(target_sheet)
            hits = self._sheet_index.search(
                query_vector, k=self.config.top_k_sheets if k is None else k
            )
            span.set_attribute("n_hits", len(hits))
            return hits

    def predict_batch_scored(
        self,
        target_sheet: Sheet,
        target_cells: Sequence[CellAddress],
        sheet_ids: Sequence[int],
        target_vectors: Optional[np.ndarray] = None,
        adapt: bool = True,
    ) -> List[Optional[ScoredPrediction]]:
        """S2 (+ optionally S3) restricted to the given reference sheets.

        ``sheet_ids`` are stable sheet ids (e.g. from :meth:`sheet_hits`),
        in candidate-priority order: the S2 pool is the concatenation of
        their formula regions in that order, so distance ties break toward
        earlier sheets exactly as in :meth:`predict_batch`.  Returns one
        :class:`ScoredPrediction` per target cell (``None`` when the pool
        is empty), carrying the best hit's distance and pool coordinates so
        bests from disjoint sheet subsets can be merged deterministically.

        ``target_vectors`` optionally carries the query-side region
        embeddings (see :meth:`region_query_vectors`) so a coordinator
        fanning one batch across shards encodes the targets once.  With
        ``adapt=False`` the expensive S3 re-grounding is skipped and every
        returned ``prediction`` is ``None``: a coordinator first merges the
        per-shard bests, then runs :meth:`adapt_batch` only on each cell's
        *winning* shard instead of adapting a losing candidate per shard.
        Raises ``KeyError`` if a sheet id refers to a removed sheet.
        """
        cells = list(target_cells)
        if not cells:
            return []
        if target_vectors is not None and len(target_vectors) != len(cells):
            raise ValueError(
                f"{len(target_vectors)} target vectors for {len(cells)} cells"
            )
        rank_of: Dict[int, int] = {}
        pools: List[np.ndarray] = []
        for rank, sheet_id in enumerate(sheet_ids):
            sheet_id = int(sheet_id)
            positions = self._formula_positions[sheet_id]
            if positions is None:
                raise KeyError(f"reference sheet {sheet_id} has been removed")
            rank_of[sheet_id] = rank
            pools.append(positions)
        pool = (
            np.concatenate(pools) if pools else np.empty(0, dtype=np.int64)
        )
        if pool.size == 0:
            return [None] * len(cells)

        # S2: one matmul scoring all target regions against the pool.
        with get_tracer().span(
            "s2.score", n_cells=len(cells), pool_size=int(pool.size), adapt=adapt
        ) as span:
            if target_vectors is None:
                target_vectors = self._region_vectors(target_sheet, cells, blank_center=True)
            hit_lists = self._formula_index.search_batch(target_vectors, k=1, positions=pool)

            results: List[Optional[ScoredPrediction]] = []
            n_adapted = 0
            for target_cell, hits in zip(cells, hit_lists):
                if not hits:
                    results.append(None)
                    continue
                distance = hits[0].distance
                sheet_position, local = hits[0].key
                sheet_rank = rank_of[int(sheet_position)]
                if not adapt or distance > self.config.acceptance_threshold:
                    results.append(ScoredPrediction(None, distance, sheet_rank, int(local)))
                    continue
                prediction = self._adapt_hit(
                    target_sheet, target_cell, int(sheet_position), int(local), distance
                )
                n_adapted += 1
                results.append(ScoredPrediction(prediction, distance, sheet_rank, int(local)))
            span.set_attribute("n_adapted", n_adapted)
            return results

    def adapt_batch(
        self,
        target_sheet: Sheet,
        items: Sequence[Tuple[CellAddress, int, int, float]],
    ) -> List[Optional[Prediction]]:
        """S3 re-grounding for already-chosen S2 winners.

        Each item is ``(target cell, stable sheet id, formula index, S2
        distance)`` — what a sharding coordinator knows about a cell's
        winning hit after merging :meth:`predict_batch_scored` results.
        Returns the finished predictions (``None`` where re-grounding
        fails), identical to what the un-split pipeline would produce.
        The caller is responsible for the acceptance-threshold check.
        """
        with get_tracer().span("s3.adapt", n_items=len(items)):
            return [
                self._adapt_hit(target_sheet, cell, int(sheet_id), int(local), distance)
                for cell, sheet_id, local, distance in items
            ]

    def _adapt_hit(
        self,
        target_sheet: Sheet,
        target_cell: CellAddress,
        sheet_position: int,
        local: int,
        distance: float,
    ) -> Optional[Prediction]:
        """S3 for one winning (sheet, formula) hit, packaged as a Prediction."""
        reference = self._reference_sheets[sheet_position]
        reference_formula = reference.formulas[local]
        confidence = max(0.0, 1.0 - distance / 4.0)
        predicted = self._adapt_formula(
            reference.sheet, reference_formula, target_sheet, target_cell
        )
        if predicted is None:
            return None
        return Prediction(
            formula=predicted,
            confidence=confidence,
            details={
                "reference_workbook": reference.workbook_name,
                "reference_sheet": reference.sheet.name,
                "reference_cell": reference_formula.address.to_a1(),
                "reference_formula": reference_formula.formula,
                "s2_distance": distance,
            },
        )

    # --------------------------------------------------------------------- S3

    def _candidate_grid(
        self, target_sheet: Sheet, center_row: int, center_col: int
    ) -> Optional[np.ndarray]:
        """(n, 2) row/col array of the +/- neighborhood around an anchor."""
        rows = self.config.neighborhood_rows
        cols = self.config.neighborhood_cols
        max_row = max(target_sheet.n_rows - 1, 0)
        max_col = max(target_sheet.n_cols - 1, 0)
        row_lo, row_hi = max(center_row - rows, 0), min(center_row + rows, max_row)
        col_lo, col_hi = max(center_col - cols, 0), min(center_col + cols, max_col)
        if row_lo > row_hi or col_lo > col_hi:
            return None
        grid_rows, grid_cols = np.meshgrid(
            np.arange(row_lo, row_hi + 1), np.arange(col_lo, col_hi + 1), indexing="ij"
        )
        return np.stack([grid_rows.ravel(), grid_cols.ravel()], axis=1)

    def _map_cell(
        self,
        reference_sheet: Sheet,
        reference_cell: CellAddress,
        reference_formula_cell: CellAddress,
        target_sheet: Sheet,
        target_cell: CellAddress,
    ) -> CellAddress:
        """Map one reference parameter cell into the target sheet.

        The primary anchor translates the parameter by the displacement
        between the reference formula cell and the target cell (Algorithm 2
        lines 24-25).  A secondary anchor keeps the parameter's absolute
        location, which recovers parameters tied to the *top* of a table
        (range starts just under a header) when the two sheets differ in row
        count by more than the search neighborhood.  Among all neighborhood
        candidates of both anchors, the cell whose fine-grained region is
        most similar to the region around the reference parameter wins; a
        small locality penalty breaks embedding ties in favour of the
        nearest anchor.
        """
        row_delta = target_cell.row - reference_formula_cell.row
        col_delta = target_cell.col - reference_formula_cell.col
        anchors = [
            (reference_cell.row + row_delta, reference_cell.col + col_delta),
            (reference_cell.row, reference_cell.col),
        ]
        grids = [
            grid
            for anchor_row, anchor_col in anchors
            if (grid := self._candidate_grid(target_sheet, anchor_row, anchor_col)) is not None
        ]
        if not grids:
            return CellAddress(max(anchors[0][0], 0), max(anchors[0][1], 0))
        # De-duplicate while keeping first-occurrence order (primary-anchor
        # candidates first), so ties keep breaking the same way the original
        # sequential scan did.
        coords = _dedupe_coords(np.concatenate(grids, axis=0))
        candidates = [CellAddress(int(row), int(col)) for row, col in coords]

        reference_vector = self._reference_region_vector(reference_sheet, reference_cell)
        candidate_vectors = self._target_region_vectors(target_sheet, candidates)
        distances = np.sum((candidate_vectors - reference_vector) ** 2, axis=1)
        penalties = np.minimum.reduce(
            [
                np.abs(coords[:, 0] - anchor_row) + np.abs(coords[:, 1] - anchor_col)
                for anchor_row, anchor_col in anchors
            ]
        ).astype(np.float32)
        scores = distances + self.config.locality_penalty * penalties
        return candidates[int(np.argmin(scores))]

    def _prepare_adaptation(
        self,
        references: Sequence[Union[CellAddress, RangeAddress]],
        reference_sheet: Sheet,
        reference_formula: _ReferenceFormula,
        target_sheet: Sheet,
        target_cell: CellAddress,
    ) -> None:
        """Warm both region caches for every parameter in two forward passes.

        ``_map_cell`` then runs on cache hits only: without this, each
        parameter (and each end of each range) would trigger its own fine
        forward pass over its reference region and its ~(2d+1)^2 candidate
        neighborhood, most of which overlap between parameters.
        """
        unique_params = _reference_parameter_cells(references)
        if not unique_params:
            return
        self._warm_reference_cache(reference_sheet, unique_params)

        row_delta = target_cell.row - reference_formula.address.row
        col_delta = target_cell.col - reference_formula.address.col
        grids = []
        for cell in unique_params:
            for anchor_row, anchor_col in (
                (cell.row + row_delta, cell.col + col_delta),
                (cell.row, cell.col),
            ):
                grid = self._candidate_grid(target_sheet, anchor_row, anchor_col)
                if grid is not None:
                    grids.append(grid)
        if not grids:
            return
        coords = _dedupe_coords(np.concatenate(grids, axis=0))
        self._warm_target_cache(
            target_sheet, [CellAddress(int(row), int(col)) for row, col in coords]
        )

    def _adapt_formula(
        self,
        reference_sheet: Sheet,
        reference_formula: _ReferenceFormula,
        target_sheet: Sheet,
        target_cell: CellAddress,
    ) -> Optional[str]:
        """Instantiate the reference template with re-grounded parameters."""
        try:
            ast = parse_formula(reference_formula.formula)
        except FormulaSyntaxError:
            return None
        references = formula_references(ast)
        self._prepare_adaptation(references, reference_sheet, reference_formula, target_sheet, target_cell)
        mapped: List[Union[CellAddress, RangeAddress]] = []
        for reference in references:
            if isinstance(reference, RangeAddress):
                start = self._map_cell(
                    reference_sheet,
                    reference.start,
                    reference_formula.address,
                    target_sheet,
                    target_cell,
                )
                end = self._map_cell(
                    reference_sheet,
                    reference.end,
                    reference_formula.address,
                    target_sheet,
                    target_cell,
                )
                mapped.append(RangeAddress(start, end))
            else:
                mapped.append(
                    self._map_cell(
                        reference_sheet,
                        reference,
                        reference_formula.address,
                        target_sheet,
                        target_cell,
                    )
                )
        try:
            return instantiate_template(ast, mapped)
        except ValueError:
            return None
