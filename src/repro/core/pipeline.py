"""The end-to-end Auto-Formula predictor (Algorithm 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ann import create_index
from repro.core.config import AutoFormulaConfig
from repro.core.interface import FormulaPredictor, Prediction
from repro.formula.ast_nodes import CellReference, RangeReference
from repro.formula.parser import parse_formula
from repro.formula.template import formula_references, instantiate_template
from repro.formula.tokenizer import FormulaSyntaxError
from repro.models.encoder import SheetEncoder
from repro.sheet.addressing import CellAddress, RangeAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook


@dataclass
class _ReferenceFormula:
    """A formula cell on an indexed reference sheet."""

    sheet_position: int
    address: CellAddress
    formula: str
    embedding: np.ndarray


@dataclass
class _ReferenceSheet:
    """One indexed reference sheet with its formula-region embeddings."""

    workbook_name: str
    sheet: Sheet
    formulas: List[_ReferenceFormula]


class AutoFormula(FormulaPredictor):
    """Formula recommendation by similar-sheet / similar-region retrieval."""

    name = "Auto-Formula"

    def __init__(
        self,
        encoder: SheetEncoder,
        config: Optional[AutoFormulaConfig] = None,
    ) -> None:
        self.encoder = encoder
        self.config = config or AutoFormulaConfig()
        self._reference_sheets: List[_ReferenceSheet] = []
        self._sheet_index = None
        #: Fine-embedding cache for target sheets, keyed by (sheet id, row, col).
        self._target_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._target_cache_sheets: Dict[int, Sheet] = {}

    # --------------------------------------------------------------- encoding

    def _sheet_vector(self, sheet: Sheet) -> np.ndarray:
        """Sheet-level embedding (coarse model, unless fine-only ablation)."""
        window = self.encoder.featurizer.featurize_sheet(sheet)[None, ...]
        if self.config.granularity == "fine_only":
            return self.encoder.fine_model.forward(window)[0]
        return self.encoder.coarse_model.forward(window)[0]

    def _region_vectors(
        self, sheet: Sheet, centers: Sequence[CellAddress], blank_center: bool = False
    ) -> np.ndarray:
        """Region-level embeddings (fine model, unless coarse-only ablation).

        ``blank_center`` masks the center cell of every window; the S2
        formula-region comparison uses this so that an already-filled
        reference cell and a still-empty target cell embed comparably.
        """
        if not centers:
            dim = (
                self.encoder.coarse_dimension
                if self.config.granularity == "coarse_only"
                else self.encoder.fine_dimension
            )
            return np.zeros((0, dim), dtype=np.float32)
        windows = self.encoder.featurizer.featurize_regions(
            sheet, list(centers), blank_center=blank_center
        )
        if self.config.granularity == "coarse_only":
            return self.encoder.coarse_model.forward(windows)
        return self.encoder.fine_model.forward(windows)

    def _target_region_vectors(self, sheet: Sheet, centers: Sequence[CellAddress]) -> np.ndarray:
        """Region embeddings on a target sheet, memoized per cell."""
        missing = [
            center
            for center in centers
            if (id(sheet), center.row, center.col) not in self._target_cache
        ]
        if missing:
            vectors = self._region_vectors(sheet, missing)
            for center, vector in zip(missing, vectors):
                self._target_cache[(id(sheet), center.row, center.col)] = vector
            self._target_cache_sheets[id(sheet)] = sheet
        return np.stack(
            [self._target_cache[(id(sheet), center.row, center.col)] for center in centers]
        )

    # ---------------------------------------------------------------- offline

    def fit(self, reference_workbooks: Sequence[Union[Workbook, Sheet]]) -> None:
        """Offline phase: embed and index every reference sheet and formula."""
        self._reference_sheets = []
        self._target_cache.clear()
        self._target_cache_sheets.clear()

        sheets: List[Tuple[str, Sheet]] = []
        for item in reference_workbooks:
            if isinstance(item, Sheet):
                sheets.append(("<sheet>", item))
            else:
                sheets.extend((item.name, sheet) for sheet in item)

        dimension = (
            self.encoder.fine_dimension
            if self.config.granularity == "fine_only"
            else self.encoder.coarse_dimension
        )
        self._sheet_index = create_index(self.config.sheet_index_kind, dimension)

        for position, (workbook_name, sheet) in enumerate(sheets):
            formula_cells = sheet.formula_cells()
            centers = [address for address, __ in formula_cells]
            embeddings = self._region_vectors(sheet, centers, blank_center=True)
            formulas = [
                _ReferenceFormula(position, address, cell.formula or "", embeddings[index])
                for index, (address, cell) in enumerate(formula_cells)
            ]
            self._reference_sheets.append(
                _ReferenceSheet(workbook_name=workbook_name, sheet=sheet, formulas=formulas)
            )
            self._sheet_index.add(position, self._sheet_vector(sheet))

    @property
    def n_reference_sheets(self) -> int:
        """Number of indexed reference sheets."""
        return len(self._reference_sheets)

    @property
    def n_reference_formulas(self) -> int:
        """Number of indexed reference formulas."""
        return sum(len(reference.formulas) for reference in self._reference_sheets)

    # ----------------------------------------------------------------- online

    def predict(self, target_sheet: Sheet, target_cell: CellAddress) -> Optional[Prediction]:
        """Run S1 -> S2 -> S3 and return a prediction (or ``None`` to abstain)."""
        if not self._reference_sheets or self._sheet_index is None or len(self._sheet_index) == 0:
            return None

        # S1: similar-sheet search over the coarse index.
        sheet_hits = self._sheet_index.search(
            self._sheet_vector(target_sheet), k=self.config.top_k_sheets
        )
        candidate_sheets = [self._reference_sheets[int(hit.key)] for hit in sheet_hits]

        # S2: similar-region search among the candidate sheets' formula cells.
        target_vector = self._region_vectors(target_sheet, [target_cell], blank_center=True)[0]
        best: Optional[Tuple[float, _ReferenceSheet, _ReferenceFormula]] = None
        for reference in candidate_sheets:
            for formula in reference.formulas:
                distance = float(np.sum((formula.embedding - target_vector) ** 2))
                if best is None or distance < best[0]:
                    best = (distance, reference, formula)
        if best is None:
            return None
        distance, reference, reference_formula = best
        if distance > self.config.acceptance_threshold:
            return None
        confidence = max(0.0, 1.0 - distance / 4.0)

        # S3: re-ground each parameter of the reference formula.
        predicted = self._adapt_formula(
            reference.sheet, reference_formula, target_sheet, target_cell
        )
        if predicted is None:
            return None
        return Prediction(
            formula=predicted,
            confidence=confidence,
            details={
                "reference_workbook": reference.workbook_name,
                "reference_sheet": reference.sheet.name,
                "reference_cell": reference_formula.address.to_a1(),
                "reference_formula": reference_formula.formula,
                "s2_distance": distance,
            },
        )

    # --------------------------------------------------------------------- S3

    def _candidate_addresses(
        self, target_sheet: Sheet, center_row: int, center_col: int
    ) -> List[CellAddress]:
        """The +/- neighborhood around a translated parameter location."""
        rows = self.config.neighborhood_rows
        cols = self.config.neighborhood_cols
        max_row = max(target_sheet.n_rows - 1, 0)
        max_col = max(target_sheet.n_cols - 1, 0)
        candidates: List[CellAddress] = []
        for row in range(center_row - rows, center_row + rows + 1):
            if row < 0 or row > max_row:
                continue
            for col in range(center_col - cols, center_col + cols + 1):
                if col < 0 or col > max_col:
                    continue
                candidates.append(CellAddress(row, col))
        return candidates

    def _map_cell(
        self,
        reference_sheet: Sheet,
        reference_cell: CellAddress,
        reference_formula_cell: CellAddress,
        target_sheet: Sheet,
        target_cell: CellAddress,
    ) -> CellAddress:
        """Map one reference parameter cell into the target sheet.

        The primary anchor translates the parameter by the displacement
        between the reference formula cell and the target cell (Algorithm 2
        lines 24-25).  A secondary anchor keeps the parameter's absolute
        location, which recovers parameters tied to the *top* of a table
        (range starts just under a header) when the two sheets differ in row
        count by more than the search neighborhood.  Among all neighborhood
        candidates of both anchors, the cell whose fine-grained region is
        most similar to the region around the reference parameter wins; a
        small locality penalty breaks embedding ties in favour of the
        nearest anchor.
        """
        row_delta = target_cell.row - reference_formula_cell.row
        col_delta = target_cell.col - reference_formula_cell.col
        anchors = [
            (reference_cell.row + row_delta, reference_cell.col + col_delta),
            (reference_cell.row, reference_cell.col),
        ]
        candidates: List[CellAddress] = []
        seen = set()
        for anchor_row, anchor_col in anchors:
            for candidate in self._candidate_addresses(target_sheet, anchor_row, anchor_col):
                key = (candidate.row, candidate.col)
                if key not in seen:
                    seen.add(key)
                    candidates.append(candidate)
        if not candidates:
            return CellAddress(max(anchors[0][0], 0), max(anchors[0][1], 0))
        reference_vector = self._region_vectors(reference_sheet, [reference_cell])[0]
        candidate_vectors = self._target_region_vectors(target_sheet, candidates)
        distances = np.sum((candidate_vectors - reference_vector) ** 2, axis=1)
        penalties = np.array(
            [
                min(
                    abs(candidate.row - anchor_row) + abs(candidate.col - anchor_col)
                    for anchor_row, anchor_col in anchors
                )
                for candidate in candidates
            ],
            dtype=np.float32,
        )
        scores = distances + self.config.locality_penalty * penalties
        return candidates[int(np.argmin(scores))]

    def _adapt_formula(
        self,
        reference_sheet: Sheet,
        reference_formula: _ReferenceFormula,
        target_sheet: Sheet,
        target_cell: CellAddress,
    ) -> Optional[str]:
        """Instantiate the reference template with re-grounded parameters."""
        try:
            ast = parse_formula(reference_formula.formula)
        except FormulaSyntaxError:
            return None
        references = formula_references(ast)
        mapped: List[Union[CellAddress, RangeAddress]] = []
        for reference in references:
            if isinstance(reference, RangeAddress):
                start = self._map_cell(
                    reference_sheet,
                    reference.start,
                    reference_formula.address,
                    target_sheet,
                    target_cell,
                )
                end = self._map_cell(
                    reference_sheet,
                    reference.end,
                    reference_formula.address,
                    target_sheet,
                    target_cell,
                )
                mapped.append(RangeAddress(start, end))
            else:
                mapped.append(
                    self._map_cell(
                        reference_sheet,
                        reference,
                        reference_formula.address,
                        target_sheet,
                        target_cell,
                    )
                )
        try:
            return instantiate_template(ast, mapped)
        except ValueError:
            return None
