"""Configuration of the online Auto-Formula pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ann import KNOWN_INDEX_KINDS
from repro.ann.base import VALID_SCORING_MODES, VALID_STORAGE_DTYPES


@dataclass
class AutoFormulaConfig:
    """Knobs of Algorithm 2.

    ``top_k_sheets`` is the number of candidate reference sheets retrieved
    in S1; ``neighborhood_rows`` / ``neighborhood_cols`` bound the +/- search
    window around a translated parameter location in S3 (the paper's single
    ``d``, split per axis because spreadsheet layouts shift much more along
    rows than columns); ``acceptance_threshold`` is the maximum S2 squared
    embedding distance at which the system still emits a prediction
    (abstaining otherwise keeps precision high at the cost of recall).
    """

    top_k_sheets: int = 3
    neighborhood_rows: int = 8
    neighborhood_cols: int = 2
    acceptance_threshold: float = 0.35
    #: Per-cell score penalty that breaks embedding ties toward the anchor
    #: locations during parameter re-grounding (S3).
    locality_penalty: float = 0.01
    #: ANN index used for sheet-level retrieval: "exact", "lsh" or "ivf".
    sheet_index_kind: str = "exact"
    #: Index holding the reference formula-region embeddings searched in S2.
    #: Exact by default: the S1 stage already narrows the pool to the
    #: formulas of ``top_k_sheets`` sheets, so S2 is one vectorized scoring
    #: pass over that pool.
    formula_index_kind: str = "exact"
    #: Number of target sheets whose fine-embedding caches are retained
    #: between ``predict`` calls (least-recently-used sheets are evicted
    #: first, deterministically).
    max_cached_target_sheets: int = 8
    #: Which model drives which search: "both" (paper), "coarse_only" or
    #: "fine_only" (the Figure 14 ablation).
    granularity: str = "both"
    #: Index scoring architecture: "deterministic" scores every candidate
    #: with the fixed-order einsum (the historical path); "two_tier" scans
    #: with BLAS over the storage backend and exactly re-ranks a guaranteed
    #: top slice — final rankings stay bit-identical either way.
    scoring_mode: str = "deterministic"
    #: Tier-1 scan store dtype: "float32", "float16", or symmetric "int8"
    #: with per-vector scales.  Non-float32 requires ``scoring_mode ==
    #: "two_tier"`` (the deterministic path never reads quantized codes).
    storage_dtype: str = "float32"
    #: Tier-2 re-ranks at most ``ceil(k * tier1_overfetch)`` candidates per
    #: query row before falling back to one-tier scoring for that row.
    tier1_overfetch: float = 4.0
    #: Reuse query-side sheet embeddings across requests: vectors are keyed
    #: by sheet identity + mutation version (and by the wire-layer content
    #: hash when present), so coalesced batches and repeated requests for
    #: the same sheet encode once.  Bit-identical either way — the cache
    #: returns the exact vector the encoder would produce.
    reuse_query_embeddings: bool = True
    #: Collapse duplicate (sheet, cell) requests inside one ``serve_batch``
    #: call: the prediction is computed once and fanned out to every
    #: requester.  Bit-identical either way — predictions are deterministic
    #: per (sheet, cell).
    collapse_duplicate_cells: bool = True

    def __post_init__(self) -> None:
        if self.top_k_sheets <= 0:
            raise ValueError("top_k_sheets must be positive")
        if self.neighborhood_rows <= 0 or self.neighborhood_cols <= 0:
            raise ValueError(
                "neighborhood_rows and neighborhood_cols must be positive, got "
                f"({self.neighborhood_rows}, {self.neighborhood_cols})"
            )
        if self.granularity not in ("both", "coarse_only", "fine_only"):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if not 0.0 < self.acceptance_threshold <= 4.0:
            raise ValueError("acceptance_threshold must be in (0, 4]")
        if self.max_cached_target_sheets <= 0:
            raise ValueError("max_cached_target_sheets must be positive")
        for label, kind in (
            ("sheet_index_kind", self.sheet_index_kind),
            ("formula_index_kind", self.formula_index_kind),
        ):
            if kind.strip().lower() not in KNOWN_INDEX_KINDS:
                raise ValueError(
                    f"unknown {label} {kind!r}; expected one of {sorted(KNOWN_INDEX_KINDS)}"
                )
        if self.scoring_mode not in VALID_SCORING_MODES:
            raise ValueError(
                f"unknown scoring_mode {self.scoring_mode!r}; "
                f"expected one of {VALID_SCORING_MODES}"
            )
        if self.storage_dtype not in VALID_STORAGE_DTYPES:
            raise ValueError(
                f"unknown storage_dtype {self.storage_dtype!r}; "
                f"expected one of {VALID_STORAGE_DTYPES}"
            )
        if self.storage_dtype != "float32" and self.scoring_mode != "two_tier":
            raise ValueError(
                f"storage_dtype={self.storage_dtype!r} requires scoring_mode='two_tier'"
            )
        if not self.tier1_overfetch >= 1.0:
            raise ValueError("tier1_overfetch must be >= 1.0")
