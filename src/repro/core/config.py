"""Configuration of the online Auto-Formula pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ann import KNOWN_INDEX_KINDS


@dataclass
class AutoFormulaConfig:
    """Knobs of Algorithm 2.

    ``top_k_sheets`` is the number of candidate reference sheets retrieved
    in S1; ``neighborhood_rows`` / ``neighborhood_cols`` bound the +/- search
    window around a translated parameter location in S3 (the paper's single
    ``d``, split per axis because spreadsheet layouts shift much more along
    rows than columns); ``acceptance_threshold`` is the maximum S2 squared
    embedding distance at which the system still emits a prediction
    (abstaining otherwise keeps precision high at the cost of recall).
    """

    top_k_sheets: int = 3
    neighborhood_rows: int = 8
    neighborhood_cols: int = 2
    acceptance_threshold: float = 0.35
    #: Per-cell score penalty that breaks embedding ties toward the anchor
    #: locations during parameter re-grounding (S3).
    locality_penalty: float = 0.01
    #: ANN index used for sheet-level retrieval: "exact", "lsh" or "ivf".
    sheet_index_kind: str = "exact"
    #: Index holding the reference formula-region embeddings searched in S2.
    #: Exact by default: the S1 stage already narrows the pool to the
    #: formulas of ``top_k_sheets`` sheets, so S2 is one vectorized scoring
    #: pass over that pool.
    formula_index_kind: str = "exact"
    #: Number of target sheets whose fine-embedding caches are retained
    #: between ``predict`` calls (least-recently-used sheets are evicted
    #: first, deterministically).
    max_cached_target_sheets: int = 8
    #: Which model drives which search: "both" (paper), "coarse_only" or
    #: "fine_only" (the Figure 14 ablation).
    granularity: str = "both"

    def __post_init__(self) -> None:
        if self.top_k_sheets <= 0:
            raise ValueError("top_k_sheets must be positive")
        if self.neighborhood_rows <= 0 or self.neighborhood_cols <= 0:
            raise ValueError(
                "neighborhood_rows and neighborhood_cols must be positive, got "
                f"({self.neighborhood_rows}, {self.neighborhood_cols})"
            )
        if self.granularity not in ("both", "coarse_only", "fine_only"):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if not 0.0 < self.acceptance_threshold <= 4.0:
            raise ValueError("acceptance_threshold must be in (0, 4]")
        if self.max_cached_target_sheets <= 0:
            raise ValueError("max_cached_target_sheets must be positive")
        for label, kind in (
            ("sheet_index_kind", self.sheet_index_kind),
            ("formula_index_kind", self.formula_index_kind),
        ):
            if kind.strip().lower() not in KNOWN_INDEX_KINDS:
                raise ValueError(
                    f"unknown {label} {kind!r}; expected one of {sorted(KNOWN_INDEX_KINDS)}"
                )
