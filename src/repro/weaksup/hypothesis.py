"""The sheet-name hypothesis test for similar-workbook detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sheet.workbook import Workbook
from repro.weaksup.name_statistics import SheetNameStatistics


@dataclass(frozen=True)
class HypothesisResult:
    """Outcome of testing whether two workbooks are similar.

    ``similar`` is True when the null hypothesis ("the name match is a
    coincidence") is rejected, i.e. ``p_value <= alpha``.
    """

    similar: bool
    p_value: float
    names_match: bool


class HypothesisTest:
    """Tests pairs of workbooks for similarity via their sheet-name sequences.

    Two workbooks are candidates only if they contain the same number of
    sheets and the sheet names match 1-to-1 in order; the match is accepted
    as non-coincidental when the product of per-name probabilities is at
    most ``alpha`` (default 0.05, the paper's significance threshold).
    """

    def __init__(self, statistics: SheetNameStatistics, alpha: float = 0.05) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self._statistics = statistics
        self.alpha = alpha

    @property
    def statistics(self) -> SheetNameStatistics:
        """The underlying name-frequency model."""
        return self._statistics

    def names_match(self, left: Workbook, right: Workbook) -> bool:
        """Whether the two workbooks' sheet-name sequences match exactly."""
        left_names = [name.strip().lower() for name in left.sheet_names]
        right_names = [name.strip().lower() for name in right.sheet_names]
        return bool(left_names) and left_names == right_names

    def shares_any_name(self, left: Workbook, right: Workbook) -> bool:
        """Whether the two workbooks share even one sheet name.

        Used for the stricter negative-sampling rule: negatives are only
        drawn from workbook pairs with zero overlapping names.
        """
        left_names = {name.strip().lower() for name in left.sheet_names}
        right_names = {name.strip().lower() for name in right.sheet_names}
        return bool(left_names & right_names)

    def test(self, left: Workbook, right: Workbook) -> HypothesisResult:
        """Run the hypothesis test on a pair of workbooks."""
        if not self.names_match(left, right):
            return HypothesisResult(similar=False, p_value=1.0, names_match=False)
        p_value = self._statistics.sequence_probability(left.sheet_names)
        return HypothesisResult(
            similar=p_value <= self.alpha, p_value=p_value, names_match=True
        )

    def p_value(self, left: Workbook, right: Workbook) -> Optional[float]:
        """The p-value for a matching pair, or ``None`` if names differ."""
        result = self.test(left, right)
        return result.p_value if result.names_match else None
