"""Training-data augmentation by row/column deletion (Section 4.3).

Positive pairs stay positive when a small fraction of rows/columns is
removed from one side: two sheets generated from the same template remain
"similar" even after users insert or delete a few rows.  Sheet-level
augmentation removes arbitrary rows/columns; region-level augmentation only
trims bottom rows and right-most columns so headers and entity columns stay
intact, following the paper's recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sheet.sheet import Sheet


@dataclass
class AugmentationConfig:
    """Controls the augmentation policy.

    ``max_removal_fraction`` is the upper bound of the per-sheet random
    removal probability ``p`` (the paper randomizes ``p`` in 0-10 %);
    ``region_fraction`` is the share of region pairs that get augmented
    (the paper augments a 20 % subset for regions).
    """

    enabled: bool = True
    augment_sheets: bool = True
    augment_regions: bool = True
    max_removal_fraction: float = 0.10
    region_fraction: float = 0.20


def augment_sheet(sheet: Sheet, rng: np.random.Generator, max_fraction: float = 0.10) -> Sheet:
    """Randomly delete rows and columns anywhere in the sheet.

    Each row/column is dropped independently with probability ``p``, where
    ``p`` itself is drawn uniformly from ``[0, max_fraction]``.
    """
    probability = float(rng.uniform(0.0, max_fraction))
    augmented = sheet.copy()
    if probability <= 0.0 or augmented.n_rows <= 2 or augmented.n_cols <= 1:
        return augmented

    rows_to_drop = [row for row in range(augmented.n_rows) if rng.random() < probability]
    for row in reversed(rows_to_drop):
        if augmented.n_rows > 2:
            augmented.delete_rows(row)
    cols_to_drop = [col for col in range(augmented.n_cols) if rng.random() < probability]
    for col in reversed(cols_to_drop):
        if augmented.n_cols > 1:
            augmented.delete_cols(col)
    return augmented


def augment_region_sheet(
    sheet: Sheet,
    rng: np.random.Generator,
    max_fraction: float = 0.10,
    protect_rows: Optional[int] = None,
    protect_cols: Optional[int] = None,
) -> Sheet:
    """Delete only bottom-most rows and right-most columns.

    ``protect_rows`` / ``protect_cols`` bound how far up/left the deletion
    may reach (defaults keep at least the top half of the sheet intact), so
    table structure such as headers survives, per Section 4.3.
    """
    probability = float(rng.uniform(0.0, max_fraction))
    augmented = sheet.copy()
    if probability <= 0.0 or augmented.n_rows <= 2 or augmented.n_cols <= 1:
        return augmented

    protected_rows = protect_rows if protect_rows is not None else max(1, augmented.n_rows // 2)
    protected_cols = protect_cols if protect_cols is not None else max(1, augmented.n_cols // 2)

    max_row_removals = max(0, augmented.n_rows - protected_rows)
    n_row_removals = int(rng.binomial(max_row_removals, probability)) if max_row_removals else 0
    if n_row_removals:
        augmented.delete_rows(augmented.n_rows - n_row_removals, n_row_removals)

    max_col_removals = max(0, augmented.n_cols - protected_cols)
    n_col_removals = int(rng.binomial(max_col_removals, probability)) if max_col_removals else 0
    if n_col_removals:
        augmented.delete_cols(augmented.n_cols - n_col_removals, n_col_removals)
    return augmented
