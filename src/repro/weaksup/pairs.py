"""Positive/negative pair generation for sheets and regions."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.formula.template import normalize_formula
from repro.formula.tokenizer import FormulaSyntaxError
from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet
from repro.sheet.workbook import Workbook
from repro.weaksup.hypothesis import HypothesisTest
from repro.weaksup.name_statistics import SheetNameStatistics


@dataclass(frozen=True)
class SheetPair:
    """A labelled pair of sheets (positive = similar, negative = dissimilar)."""

    left: Sheet
    right: Sheet
    positive: bool


@dataclass(frozen=True)
class RegionPair:
    """A labelled pair of regions, each identified by (sheet, center cell)."""

    left_sheet: Sheet
    left_center: CellAddress
    right_sheet: Sheet
    right_center: CellAddress
    positive: bool


@dataclass
class TrainingPairs:
    """All weak-supervision output consumed by the triplet trainer."""

    positive_sheet_pairs: List[SheetPair] = field(default_factory=list)
    negative_sheet_pairs: List[SheetPair] = field(default_factory=list)
    positive_region_pairs: List[RegionPair] = field(default_factory=list)
    negative_region_pairs: List[RegionPair] = field(default_factory=list)

    def summary(self) -> dict:
        """Counts of each pair kind (for logging / reports)."""
        return {
            "positive_sheet_pairs": len(self.positive_sheet_pairs),
            "negative_sheet_pairs": len(self.negative_sheet_pairs),
            "positive_region_pairs": len(self.positive_region_pairs),
            "negative_region_pairs": len(self.negative_region_pairs),
        }


def _safe_normalize(formula: Optional[str]) -> Optional[str]:
    if not formula:
        return None
    try:
        return normalize_formula(formula)
    except FormulaSyntaxError:
        return None


def _positive_region_pairs(left: Sheet, right: Sheet) -> List[RegionPair]:
    """Identical formulas at identical locations on a similar-sheet pair."""
    pairs: List[RegionPair] = []
    right_formulas = {addr: _safe_normalize(cell.formula) for addr, cell in right.formula_cells()}
    for addr, cell in left.formula_cells():
        left_formula = _safe_normalize(cell.formula)
        if left_formula is None:
            continue
        right_formula = right_formulas.get(addr)
        if right_formula is not None and right_formula == left_formula:
            pairs.append(RegionPair(left, addr, right, addr, positive=True))
    return pairs


def _negative_region_pair(
    left: Sheet, right: Sheet, positive: RegionPair
) -> Optional[RegionPair]:
    """Shift the right-hand location downward until a *different* formula is hit."""
    anchor_formula = _safe_normalize(left.get(positive.left_center).formula)
    ordered = sorted(right.formula_cells(), key=lambda item: (item[0].row, item[0].col))
    for addr, cell in ordered:
        if addr.row <= positive.right_center.row and addr == positive.right_center:
            continue
        if addr.row < positive.right_center.row:
            continue
        candidate = _safe_normalize(cell.formula)
        if candidate is not None and candidate != anchor_formula:
            return RegionPair(left, positive.left_center, right, addr, positive=False)
    # fall back: any different formula anywhere on the right sheet
    for addr, cell in ordered:
        candidate = _safe_normalize(cell.formula)
        if candidate is not None and candidate != anchor_formula:
            return RegionPair(left, positive.left_center, right, addr, positive=False)
    return None


def generate_training_pairs(
    workbooks: Sequence[Workbook],
    alpha: float = 0.05,
    max_workbook_pairs: int = 2000,
    max_negative_sheet_pairs: int = 500,
    statistics: Optional[SheetNameStatistics] = None,
    seed: int = 0,
) -> TrainingPairs:
    """Run the full weak-supervision procedure over a workbook universe.

    Positive sheet pairs come from workbook pairs passing the hypothesis
    test; negative sheet pairs from random workbook pairs sharing no sheet
    name.  Region pairs are derived from the positive sheet pairs as
    described in Section 4.2.
    """
    rng = np.random.default_rng(seed)
    stats = statistics or SheetNameStatistics.from_workbooks(workbooks)
    test = HypothesisTest(stats, alpha=alpha)
    pairs = TrainingPairs()

    workbook_list = list(workbooks)
    candidate_pairs = list(itertools.combinations(range(len(workbook_list)), 2))
    if len(candidate_pairs) > max_workbook_pairs:
        chosen = rng.choice(len(candidate_pairs), size=max_workbook_pairs, replace=False)
        candidate_pairs = [candidate_pairs[int(i)] for i in chosen]

    for left_index, right_index in candidate_pairs:
        left_workbook = workbook_list[left_index]
        right_workbook = workbook_list[right_index]
        result = test.test(left_workbook, right_workbook)
        if result.similar:
            for left_sheet, right_sheet in zip(left_workbook.sheets, right_workbook.sheets):
                pairs.positive_sheet_pairs.append(
                    SheetPair(left_sheet, right_sheet, positive=True)
                )
                positives = _positive_region_pairs(left_sheet, right_sheet)
                pairs.positive_region_pairs.extend(positives)
                for positive in positives:
                    negative = _negative_region_pair(left_sheet, right_sheet, positive)
                    if negative is not None:
                        pairs.negative_region_pairs.append(negative)
        elif not test.shares_any_name(left_workbook, right_workbook):
            if len(pairs.negative_sheet_pairs) < max_negative_sheet_pairs:
                left_sheet = left_workbook.sheets[int(rng.integers(len(left_workbook.sheets)))]
                right_sheet = right_workbook.sheets[int(rng.integers(len(right_workbook.sheets)))]
                pairs.negative_sheet_pairs.append(
                    SheetPair(left_sheet, right_sheet, positive=False)
                )

    return pairs
