"""Weakly-supervised training-data generation (Section 4.2-4.3).

Positive and negative examples of *similar sheets* and *similar regions*
are harvested automatically from a corpus of workbooks:

* the sheet-name **hypothesis test** marks two workbooks' sheets as similar
  when their sheet-name sequences match exactly and the probability of that
  match under a null model of independent name draws is below ``alpha``;
* **positive region pairs** come from identical formulas at identical
  locations on similar sheets; **negative region pairs** shift one side to a
  different formula;
* **data augmentation** perturbs positive pairs by deleting a small random
  fraction of rows/columns, so the models generalize across sheets of
  different sizes.
"""

from repro.weaksup.name_statistics import SheetNameStatistics
from repro.weaksup.hypothesis import HypothesisTest, HypothesisResult
from repro.weaksup.pairs import (
    SheetPair,
    RegionPair,
    TrainingPairs,
    generate_training_pairs,
)
from repro.weaksup.augmentation import AugmentationConfig, augment_sheet, augment_region_sheet

__all__ = [
    "SheetNameStatistics",
    "HypothesisTest",
    "HypothesisResult",
    "SheetPair",
    "RegionPair",
    "TrainingPairs",
    "generate_training_pairs",
    "AugmentationConfig",
    "augment_sheet",
    "augment_region_sheet",
]
