"""Sheet-name frequency statistics over a workbook universe."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.sheet.workbook import Workbook


class SheetNameStatistics:
    """Empirical probabilities of sheet names across a corpus.

    ``probability(name)`` is the chance that a sheet drawn uniformly at
    random from the universe carries that name (Section 4.2).  Unseen names
    get a smoothed probability of ``1 / (total + 1)`` so the hypothesis test
    treats them as very rare rather than impossible.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total_sheets = 0

    @classmethod
    def from_workbooks(cls, workbooks: Iterable[Workbook]) -> "SheetNameStatistics":
        """Build statistics by counting every sheet in ``workbooks``."""
        stats = cls()
        for workbook in workbooks:
            stats.add_workbook(workbook)
        return stats

    def add_workbook(self, workbook: Workbook) -> None:
        """Incorporate one workbook's sheet names."""
        for name in workbook.sheet_names:
            self._counts[self._normalize(name)] += 1
            self._total_sheets += 1

    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower()

    @property
    def total_sheets(self) -> int:
        """Total number of sheets counted."""
        return self._total_sheets

    def frequency(self, name: str) -> int:
        """Raw occurrence count of ``name``."""
        return self._counts.get(self._normalize(name), 0)

    def probability(self, name: str) -> float:
        """Probability of drawing a sheet with this name from the universe."""
        if self._total_sheets == 0:
            return 1.0
        count = self._counts.get(self._normalize(name), 0)
        if count == 0:
            return 1.0 / (self._total_sheets + 1)
        return count / self._total_sheets

    def sequence_probability(self, names: Sequence[str]) -> float:
        """Probability of an exact match of a whole sheet-name sequence.

        The independence assumption of the paper's null model: the
        probability is the product of per-name probabilities.
        """
        probability = 1.0
        for name in names:
            probability *= self.probability(name)
        return probability

    def most_common(self, n: int = 10):
        """The ``n`` most frequent names with their counts (for reports)."""
        return self._counts.most_common(n)
