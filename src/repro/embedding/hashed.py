"""Hashed semantic embedder: the Sentence-BERT stand-in.

The embedder hashes word unigrams and character trigrams into a fixed-size
vector (signed feature hashing), then L2-normalizes.  Strings that share
words or substrings therefore land close together in cosine space — e.g.
``"Total Sales"`` and ``"Total Revenue"`` overlap through "total", while
``"2020-01-01"`` and ``"2020-01-02"`` overlap through most of their
character trigrams.  That neighbourhood structure is the only property the
downstream representation models rely on.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

import numpy as np

from repro.embedding.base import TextEmbedder


def _stable_hash(token: str) -> int:
    """A deterministic 64-bit hash (Python's builtin ``hash`` is salted)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashedSemanticEmbedder(TextEmbedder):
    """Signed feature-hashing over word unigrams and character trigrams."""

    name = "sentence-bert"

    def __init__(self, dimension: int = 384, char_ngram: int = 3) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self._dimension = dimension
        self._char_ngram = char_ngram

    @property
    def dimension(self) -> int:
        return self._dimension

    # ------------------------------------------------------------------ tokens

    def _word_tokens(self, text: str) -> List[str]:
        cleaned = "".join(char.lower() if char.isalnum() else " " for char in text)
        return [token for token in cleaned.split() if token]

    def _char_tokens(self, text: str) -> List[str]:
        normalized = text.lower().strip()
        n = self._char_ngram
        if len(normalized) < n:
            return [normalized] if normalized else []
        return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]

    def _hash_into(self, vector: np.ndarray, tokens: Iterable[str], weight: float) -> None:
        for token in tokens:
            token_hash = _stable_hash(token)
            index = token_hash % self._dimension
            sign = 1.0 if (token_hash >> 32) & 1 else -1.0
            vector[index] += sign * weight

    # ------------------------------------------------------------------- embed

    def embed(self, text: str) -> np.ndarray:
        vector = np.zeros(self._dimension, dtype=np.float32)
        if not text:
            return vector
        self._hash_into(vector, self._word_tokens(text), weight=1.0)
        self._hash_into(vector, self._char_tokens(text), weight=0.5)
        norm = float(np.linalg.norm(vector))
        if norm > 0.0:
            vector /= norm
        return vector
