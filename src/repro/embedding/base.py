"""The :class:`TextEmbedder` interface."""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np


class TextEmbedder(abc.ABC):
    """Maps text strings to fixed-dimension dense vectors.

    Implementations must be deterministic: the same string always maps to
    the same vector, which keeps corpora, indexes and experiments
    reproducible.
    """

    #: Human-readable name, used in experiment reports.
    name: str = "embedder"

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Output vector dimensionality."""

    @abc.abstractmethod
    def embed(self, text: str) -> np.ndarray:
        """Embed a single string into a ``(dimension,)`` float32 vector."""

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed a sequence of strings into an ``(n, dimension)`` matrix."""
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float32)
        rows: List[np.ndarray] = [self.embed(text) for text in texts]
        return np.stack(rows).astype(np.float32)

    @staticmethod
    def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
        """Cosine similarity between two vectors (0 if either is all-zero)."""
        left_norm = float(np.linalg.norm(left))
        right_norm = float(np.linalg.norm(right))
        if left_norm == 0.0 or right_norm == 0.0:
            return 0.0
        return float(np.dot(left, right) / (left_norm * right_norm))
