"""Text embedding substrate.

The paper embeds each cell's textual content with a pre-trained model
(Sentence-BERT, with GloVe as a cheaper alternative).  Pre-trained weights
are not available offline, so this package provides deterministic,
dependency-free embedders with the property the downstream model actually
relies on: textually/semantically similar strings receive nearby vectors.

* :class:`HashedSemanticEmbedder` — character n-gram + word feature hashing,
  384 dimensions by default (the Sentence-BERT stand-in).
* :class:`WordAveragingEmbedder` — word-level hashing only, 50 dimensions by
  default and noticeably cheaper (the GloVe stand-in).
* :class:`CachingEmbedder` — memoizes any embedder, since corpora repeat the
  same strings many times.
"""

from repro.embedding.base import TextEmbedder
from repro.embedding.hashed import HashedSemanticEmbedder
from repro.embedding.word_average import WordAveragingEmbedder
from repro.embedding.caching import CachingEmbedder

__all__ = [
    "TextEmbedder",
    "HashedSemanticEmbedder",
    "WordAveragingEmbedder",
    "CachingEmbedder",
    "create_embedder",
]


def create_embedder(name: str, dimension: int | None = None) -> TextEmbedder:
    """Factory used by configuration code.

    ``name`` is ``"sbert"`` (or ``"sentence-bert"``) for the hashed semantic
    embedder, ``"glove"`` for the word-averaging embedder.
    """
    key = name.strip().lower()
    if key in ("sbert", "sentence-bert", "sentence_bert", "hashed"):
        return HashedSemanticEmbedder(dimension or 384)
    if key in ("glove", "word-average", "word_average"):
        return WordAveragingEmbedder(dimension or 50)
    raise ValueError(f"unknown embedder {name!r}")
