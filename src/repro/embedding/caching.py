"""A memoizing wrapper around any :class:`TextEmbedder`.

Spreadsheet corpora repeat the same cell texts (headers, labels, common
values) many times; caching the per-string embedding is the single largest
speedup in offline preprocessing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.embedding.base import TextEmbedder


class CachingEmbedder(TextEmbedder):
    """LRU-caches the results of a wrapped embedder.

    The cache is guarded by a mutex so one embedder can serve concurrent
    featurization threads (the inner embedding itself is computed outside
    the lock; a raced miss at worst embeds the same string twice, and both
    threads then agree on the deterministic result).
    """

    def __init__(self, inner: TextEmbedder, max_entries: int = 200_000) -> None:
        self._inner = inner
        self._max_entries = max_entries
        self._cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._mutex = threading.Lock()
        self.name = inner.name

    @property
    def dimension(self) -> int:
        return self._inner.dimension

    @property
    def cache_size(self) -> int:
        """Number of cached strings."""
        return len(self._cache)

    def embed(self, text: str) -> np.ndarray:
        with self._mutex:
            cached = self._cache.get(text)
            if cached is not None:
                self._cache.move_to_end(text)
                return cached
        # Own a private copy and freeze it: every future hit returns this
        # same array, so a caller mutating it in place would otherwise
        # silently corrupt all subsequent lookups of ``text``.
        vector = np.array(self._inner.embed(text), dtype=np.float32)
        vector.setflags(write=False)
        with self._mutex:
            existing = self._cache.get(text)
            if existing is not None:
                return existing
            self._cache[text] = vector
            if len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)
        return vector
