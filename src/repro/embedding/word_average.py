"""Word-averaging embedder: the GloVe stand-in.

Each word maps to a deterministic pseudo-random unit vector (seeded by the
word's hash), and a string embeds as the mean of its word vectors.  This is
the classical "average of word vectors" recipe used with GloVe, minus the
pretrained co-occurrence statistics.  It is lower-dimensional and cheaper
than :class:`~repro.embedding.hashed.HashedSemanticEmbedder`, reproducing
the paper's quality/efficiency trade-off between the two content embedders.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.embedding.base import TextEmbedder
from repro.embedding.hashed import _stable_hash


class WordAveragingEmbedder(TextEmbedder):
    """Mean of per-word deterministic pseudo-random unit vectors."""

    name = "glove"

    def __init__(self, dimension: int = 50, vocabulary_cache_size: int = 50_000) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self._dimension = dimension
        self._cache_size = vocabulary_cache_size
        self._word_vectors: Dict[str, np.ndarray] = {}

    @property
    def dimension(self) -> int:
        return self._dimension

    def _word_vector(self, word: str) -> np.ndarray:
        cached = self._word_vectors.get(word)
        if cached is not None:
            return cached
        rng = np.random.default_rng(_stable_hash(word) % (2**32))
        vector = rng.standard_normal(self._dimension).astype(np.float32)
        vector /= float(np.linalg.norm(vector)) or 1.0
        if len(self._word_vectors) < self._cache_size:
            self._word_vectors[word] = vector
        return vector

    def _tokens(self, text: str) -> List[str]:
        cleaned = "".join(char.lower() if char.isalnum() else " " for char in text)
        return [token for token in cleaned.split() if token]

    def embed(self, text: str) -> np.ndarray:
        tokens = self._tokens(text)
        if not tokens:
            return np.zeros(self._dimension, dtype=np.float32)
        vectors = [self._word_vector(token) for token in tokens]
        mean = np.mean(vectors, axis=0)
        norm = float(np.linalg.norm(mean))
        if norm > 0.0:
            mean = mean / norm
        return mean.astype(np.float32)
