"""Typed, immutable request/response objects of the serving API.

The service layer never hands back a bare :class:`~repro.core.Prediction`
(or ``None``): every request is answered by a frozen
:class:`RecommendationResponse` that carries the recommendation itself,
its provenance (which reference formula it was adapted from), the
per-request serving latency, and — when the system abstains — a typed
:class:`AbstainReason` instead of a silent ``None``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.sheet.addressing import CellAddress
from repro.sheet.sheet import Sheet


class AbstainReason(str, enum.Enum):
    """Why a request produced no recommendation."""

    #: The workspace has no indexed workbooks at all.
    EMPTY_CORPUS = "empty_corpus"
    #: The predictor found no candidate within its acceptance threshold
    #: (or could not re-ground the winning formula's parameters).
    NO_CONFIDENT_MATCH = "no_confident_match"


@dataclass(frozen=True)
class RecommendationRequest:
    """One formula recommendation to compute.

    ``cell`` accepts either a :class:`CellAddress` or an A1-style string
    (``"D41"``), which is normalized at construction.  ``request_id`` is an
    optional caller-side correlation token echoed back on the response.
    """

    sheet: Sheet
    cell: Union[CellAddress, str]
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.cell, str):
            object.__setattr__(self, "cell", CellAddress.from_a1(self.cell))


@dataclass(frozen=True)
class RecommendationResponse:
    """The outcome of serving one :class:`RecommendationRequest`.

    ``formula`` is ``None`` exactly when the system abstained, in which
    case ``abstain_reason`` says why.  ``provenance`` carries the adapted
    reference formula's origin (workbook, sheet, cell, raw formula and S2
    distance) for analysis and debugging.  ``latency_seconds`` is the
    wall-clock serving time attributed to this request; requests served
    through a batch report their amortized share of the batch.
    """

    request: RecommendationRequest
    workspace: str
    method: str
    formula: Optional[str]
    confidence: float
    abstain_reason: Optional[AbstainReason] = None
    provenance: Dict[str, object] = field(default_factory=dict)
    latency_seconds: float = 0.0

    @property
    def accepted(self) -> bool:
        """Whether the system produced a recommendation."""
        return self.formula is not None
