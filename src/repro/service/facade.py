"""The :class:`FormulaService` facade: named workspaces, one per tenant."""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.config import AutoFormulaConfig
from repro.core.interface import FormulaPredictor
from repro.core.pipeline import AutoFormula
from repro.models.encoder import SheetEncoder
from repro.persistence.snapshot import SnapshotFormatError, read_manifest
from repro.service.sharding import ShardedWorkspace
from repro.service.workspace import Workspace
from repro.sheet.workbook import Workbook

#: Anything the registry serves: plain or sharded workspaces share the
#: typed serving surface (``recommend`` / ``serve_batch`` / mutation).
AnyWorkspace = Union[Workspace, ShardedWorkspace]


class FormulaService:
    """Entry point of the serving layer: a registry of named workspaces.

    One service instance holds the trained :class:`SheetEncoder` (shared
    read-only by every workspace) and manages one :class:`Workspace` per
    organization/tenant.  Workspaces default to an :class:`AutoFormula`
    predictor built from the service's encoder and config, but any
    :class:`FormulaPredictor` (a baseline, an ablation) can be supplied
    explicitly, so the whole method zoo is servable through one API.
    """

    def __init__(
        self,
        encoder: Optional[SheetEncoder] = None,
        config: Optional[AutoFormulaConfig] = None,
    ) -> None:
        self._encoder = encoder
        self._config = config
        self._workspaces: Dict[str, AnyWorkspace] = {}

    # ---------------------------------------------------------- configuration

    @property
    def effective_config(self) -> AutoFormulaConfig:
        """The config new default predictors are built with (never ``None``)."""
        return self._config or AutoFormulaConfig()

    def configure_scoring(
        self,
        scoring_mode: Optional[str] = None,
        storage_dtype: Optional[str] = None,
        tier1_overfetch: Optional[float] = None,
    ) -> AutoFormulaConfig:
        """Override the index scoring knobs for future default predictors.

        Only the passed (non-``None``) knobs change; everything else in the
        service config is kept.  Existing workspaces are untouched — the
        knobs take effect in workspaces created or loaded afterwards.
        Returns the resulting config (validated by ``AutoFormulaConfig``).
        """
        overrides = {
            key: value
            for key, value in (
                ("scoring_mode", scoring_mode),
                ("storage_dtype", storage_dtype),
                ("tier1_overfetch", tier1_overfetch),
            )
            if value is not None
        }
        self._config = dataclasses.replace(self.effective_config, **overrides)
        return self._config

    # ------------------------------------------------------------- workspaces

    def create_workspace(
        self,
        name: str,
        predictor: Optional[FormulaPredictor] = None,
        workbooks: Sequence[Workbook] = (),
    ) -> Workspace:
        """Create (and register) a workspace, optionally pre-loading a corpus."""
        if name in self._workspaces:
            raise ValueError(f"workspace {name!r} already exists")
        if predictor is None:
            if self._encoder is None:
                raise ValueError(
                    "a predictor is required: this service was built without "
                    "an encoder, so it cannot construct the default AutoFormula"
                )
            predictor = AutoFormula(self._encoder, self._config or AutoFormulaConfig())
        workspace = Workspace(name, predictor, encoder=self._encoder)
        workspace.add_workbooks(workbooks)
        self._workspaces[name] = workspace
        return workspace

    def create_sharded_workspace(
        self,
        name: str,
        n_shards: int,
        predictor_factory: Optional[Callable[[], FormulaPredictor]] = None,
        workbooks: Sequence[Workbook] = (),
    ) -> ShardedWorkspace:
        """Create (and register) a :class:`ShardedWorkspace`.

        ``predictor_factory`` builds one predictor per shard; it defaults
        to fresh :class:`AutoFormula` instances over the service's shared
        encoder and config, so a sharded workspace answers bit-identically
        to :meth:`create_workspace` on the same corpus (see
        ``repro.service.sharding``).
        """
        if name in self._workspaces:
            raise ValueError(f"workspace {name!r} already exists")
        if predictor_factory is None:
            if self._encoder is None:
                raise ValueError(
                    "a predictor_factory is required: this service was built "
                    "without an encoder, so it cannot construct the default "
                    "AutoFormula shards"
                )
            encoder = self._encoder
            config = self._config or AutoFormulaConfig()
            predictor_factory = lambda: AutoFormula(encoder, config)  # noqa: E731
        workspace = ShardedWorkspace(name, predictor_factory, n_shards)
        workspace.add_workbooks(workbooks)
        self._workspaces[name] = workspace
        return workspace

    # ------------------------------------------------------------- durability

    def _default_predictor_factory(self) -> Callable[[], FormulaPredictor]:
        if self._encoder is None:
            raise ValueError(
                "this service was built without an encoder, so it cannot "
                "construct the default AutoFormula predictors a snapshot "
                "restore needs"
            )
        encoder = self._encoder
        config = self._config or AutoFormulaConfig()
        return lambda: AutoFormula(encoder, config)

    def save_workspace(self, name: str, directory: Union[str, Path]) -> Path:
        """Snapshot the workspace called ``name`` to ``directory``.

        Delegates to :meth:`Workspace.save` / :meth:`ShardedWorkspace.save`
        — afterwards the workspace keeps appending its mutations to the
        snapshot's log, so the snapshot stays reloadable and current.
        """
        return self._workspaces[name].save(directory)

    def load_workspace(
        self, directory: Union[str, Path], name: Optional[str] = None
    ) -> AnyWorkspace:
        """Restore (and register) a workspace from a snapshot directory.

        The manifest's ``kind`` field decides whether a plain or sharded
        workspace is rebuilt; predictors are constructed from the
        service's shared encoder and config, exactly as
        :meth:`create_workspace` / :meth:`create_sharded_workspace` would.
        ``name`` overrides the snapshot's stored workspace name.
        """
        manifest = read_manifest(directory)
        kind = manifest.get("kind")
        registered = str(name or manifest.get("name") or "restored")
        if registered in self._workspaces:
            raise ValueError(f"workspace {registered!r} already exists")
        if kind == "workspace":
            workspace: AnyWorkspace = Workspace.load(
                directory,
                self._default_predictor_factory()(),
                encoder=self._encoder,
                name=registered,
            )
        elif kind == "sharded_workspace":
            workspace = ShardedWorkspace.load(
                directory, self._default_predictor_factory(), name=registered
            )
        else:
            raise SnapshotFormatError(
                f"snapshot at {directory} holds unknown workspace kind {kind!r}"
            )
        self._workspaces[registered] = workspace
        return workspace

    def workspace(self, name: str) -> AnyWorkspace:
        """The workspace called ``name`` (raises ``KeyError`` if missing)."""
        return self._workspaces[name]

    def drop_workspace(self, name: str) -> AnyWorkspace:
        """Unregister and return the workspace called ``name``."""
        workspace = self._workspaces.pop(name)
        return workspace

    def workspace_names(self) -> List[str]:
        """Registered workspace names, in creation order."""
        return list(self._workspaces)

    def __getitem__(self, name: str) -> AnyWorkspace:
        return self.workspace(name)

    def __contains__(self, name: str) -> bool:
        return name in self._workspaces

    def __iter__(self) -> Iterator[AnyWorkspace]:
        return iter(self._workspaces.values())

    def __len__(self) -> int:
        return len(self._workspaces)
