"""Concurrency primitives of the serving layer.

The serving layer promises that concurrent ``recommend``/``serve_batch``
calls interleave safely with ``add_workbooks``/``remove_workbook``
mutations.  The promise is implemented with one reader-writer lock per
workspace (many concurrent serves *or* one exclusive mutation) plus
internal locks inside the shared caches (`repro.features.SheetKeyedLRU`,
`repro.embedding.CachingEmbedder`, the cell-feature LRU) so that several
workspaces — or the shards of one :class:`~repro.service.ShardedWorkspace`
— can drive one trained encoder from different threads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock simultaneously; a writer holds
    it exclusively.  Arriving writers block *new* readers (writer
    preference), so a steady stream of recommends cannot starve a corpus
    mutation indefinitely.  The lock is not reentrant: a thread must not
    re-acquire either side while already holding one, and lock holders must
    not call back into workspace methods that take the lock.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ----------------------------------------------------------------- readers

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._active_readers -= 1
            if self._active_readers < 0:
                self._active_readers = 0
                raise RuntimeError("release_read without a matching acquire_read")
            if self._active_readers == 0:
                self._condition.notify_all()

    # ----------------------------------------------------------------- writers

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._condition.notify_all()

    # ------------------------------------------------------- context managers

    @contextmanager
    def read_lock(self):
        """``with lock.read_lock():`` — shared (serving) access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self):
        """``with lock.write_lock():`` — exclusive (mutating) access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
